"""Fixture: the runner writes a point field the dataclass lacks."""

from .report import PointResult


def execute_point(index: int) -> PointResult:
    result = PointResult(index=index, extra="x")
    result.bogus = 1.5  # no such PointResult field
    return result
