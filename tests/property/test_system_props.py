"""Property-based system tests: directory soundness end to end.

The directory-service invariant that makes SwitchPointer correct (§3):
for any workload, if a host received a packet that traversed switch S in
S's epoch e, then S's pointer for a retained window containing e MUST
include that host (no false negatives — debugging never misses a
relevant host).  We drive random workloads through a real deployment and
check the invariant against ground truth."""

from hypothesis import given, settings, strategies as st

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_linear


@st.composite
def workload(draw):
    """(src_idx, dst_idx, send_time_ms) triples on a 2x4 dumbbell."""
    sends = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=60)),
        min_size=1, max_size=30))
    return sends


@settings(max_examples=25, deadline=None)
@given(sends=workload())
def test_pointer_never_misses_a_relevant_host(sends):
    net = build_linear(2, 4)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)
    truth = []  # (switch, epoch, dst) ground truth

    def tracked_send(src, dst):
        pkt = make_udp(src, dst, 1, 9, 300)
        original = list(pkt.hops)
        net.hosts[src].send(pkt)
        return pkt

    pkts = []
    for s, d, t_ms in sends:
        src, dst = f"h1_{s}", f"h2_{d}"
        net.sim.schedule_at(
            t_ms / 1000.0,
            lambda src=src, dst=dst: pkts.append(tracked_send(src, dst)))
    net.run()

    for pkt in pkts:
        for sw in pkt.hops:
            clock = deploy.datapaths[sw].clock
            epoch = clock.epoch_of(pkt.created_at)  # ~zero path delay
            # epoch may straddle a boundary due to in-network delay;
            # query a 1-epoch pad
            hosts = deploy.analyzer.hosts_for(
                sw, EpochRange(epoch, epoch + 1))
            assert pkt.dst in hosts, (sw, epoch, pkt.dst, hosts)


@settings(max_examples=15, deadline=None)
@given(sends=workload())
def test_decoded_records_match_ground_truth_paths(sends):
    net = build_linear(2, 4)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)
    for s, d, t_ms in sends:
        src, dst = f"h1_{s}", f"h2_{d}"
        net.sim.schedule_at(
            t_ms / 1000.0,
            lambda src=src, dst=dst: net.hosts[src].send(
                make_udp(src, dst, 1, 9, 300)))
    net.run()
    for name, agent in deploy.host_agents.items():
        for rec in agent.store:
            assert rec.flow.dst == name
            assert rec.switch_path == ["S1", "S2"]
            # decoder can never invent epochs the estimator disallows
            for sw in rec.switch_path:
                assert rec.epochs_at(sw) is not None
