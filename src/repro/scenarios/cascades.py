"""Fig 4: traffic cascades (chained cross-priority delays)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analyzer.apps import Verdict, diagnose_cascade
from ..deployment import SwitchPointerDeployment
from ..hostd.triggers import VictimAlert
from ..simnet.packet import PRIO_HIGH, PRIO_LOW, PRIO_MEDIUM, FlowKey
from ..simnet.stats import ThroughputProbe
from ..simnet.topology import Network
from ..simnet.traffic import TcpBulkTransfer, UdpCbrSource, UdpSink
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS, priority_queue


@dataclass
class CascadesResult:
    """Output of one Fig 4 run (with or without the cascade)."""

    cascaded: bool
    deployment: SwitchPointerDeployment
    network: Network
    tput_bd: ThroughputProbe
    tput_af: ThroughputProbe
    tput_ce: ThroughputProbe
    flow_bd: FlowKey
    flow_af: FlowKey
    flow_ce: FlowKey
    ce_completed_at: Optional[float]
    alerts: list[VictimAlert] = field(default_factory=list)


def build_cascades_network(*, reroute_bd: bool) -> Network:
    """Fig 1(c) topology; ``reroute_bd`` gives B a bypass to S2.

    With the bypass (the no-cascade baseline), flow B→D reaches D via
    S1b→S2 without touching the S1→S2 trunk — standing in for "B-D on a
    different path" before the failure reroutes it.
    """
    net = Network()
    s1, s2, s3 = (net.add_switch(n) for n in ("S1", "S2", "S3"))
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=priority_queue)
    net.connect(s2, s3, rate_bps=GBPS, queue_factory=priority_queue)
    placement = {"A": s1, "C": s2, "D": s2, "E": s3, "F": s3}
    if reroute_bd:
        s1b = net.add_switch("S1b")
        net.connect(s1b, s2, rate_bps=GBPS, queue_factory=priority_queue)
        placement["B"] = s1b
    else:
        placement["B"] = s1
    for name, sw in placement.items():
        host = net.add_host(name)
        net.connect(host, sw, rate_bps=GBPS,
                    queue_factory=priority_queue)
    net.compute_routes()
    return net


@register
class CascadesScenario(Scenario):
    """Fig 1(c)/Fig 4: B→D (high) delays A→F (middle) delays C→E (low).

    ``cascaded=False`` reroutes B→D off the S1→S2 trunk, so A→F drains
    on time and C→E finds an idle S2→S3 trunk (Fig 4(a)); with
    ``cascaded=True`` the chain of delays forms (Fig 4(b)).
    """

    spec = ScenarioSpec(
        name="cascades",
        summary="a high-priority flow delays a middle one, which delays "
                "a third (chain)",
        paper_ref="Fig 1(c), Fig 4; §5.3 'traffic cascades'",
        expected_diagnosis="traffic-cascade",
        knobs={
            "cascaded": Knob(True, "True forms the cascade; False "
                                   "reroutes B→D off the trunk"),
            "udp_duration": Knob(0.010, "B→D and A→F source duration (s)"),
            "ce_bytes": Knob(2_000_000, "C→E transfer size (bytes)"),
            "ce_start": Knob(0.012, "C→E start time (s)"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            "epsilon_ms": Knob(1.0, "clock-skew bound ε (ms)"),
            "delta_ms": Knob(2.0, "one-hop-delay bound Δ (ms)"),
        },
        aliases=("fig4",),
        smoke_knobs={"ce_bytes": 500_000},
    )

    def build(self) -> None:
        p = self.p
        net = build_cascades_network(reroute_bd=not p["cascaded"])
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"],
            epsilon_ms=p["epsilon_ms"], delta_ms=p["delta_ms"])
        self.network, self.deployment = net, deploy

        self.tput_bd = ThroughputProbe(window=0.001)
        self.tput_af = ThroughputProbe(window=0.001)
        self.tput_ce = ThroughputProbe(window=0.001)

        UdpSink(net.hosts["D"], 7100, on_packet=self.tput_bd.on_packet)
        UdpSink(net.hosts["F"], 7300, on_packet=self.tput_af.on_packet)

        self.src_bd = UdpCbrSource(
            net.sim, net.hosts["B"], "D", sport=7100, dport=7100,
            rate_bps=GBPS, priority=PRIO_HIGH, start=0.0,
            duration=p["udp_duration"])
        self.src_af = UdpCbrSource(
            net.sim, net.hosts["A"], "F", sport=7300, dport=7300,
            rate_bps=GBPS, priority=PRIO_MEDIUM, start=0.0,
            duration=p["udp_duration"])
        self.ce_app = TcpBulkTransfer(
            net.sim, net.hosts["C"], net.hosts["E"],
            nbytes=p["ce_bytes"], sport=100, dport=200,
            priority=PRIO_LOW, start=p["ce_start"],
            on_payload=self.tput_ce.on_packet)
        self.flow_ce = self.ce_app.sender.flow
        deploy.watch_flow(self.flow_ce, window=0.001)

    def run(self) -> None:
        self.network.run(until=0.080)

    def collect(self) -> dict:
        p = self.p
        self.payload = CascadesResult(
            cascaded=p["cascaded"], deployment=self.deployment,
            network=self.network, tput_bd=self.tput_bd,
            tput_af=self.tput_af, tput_ce=self.tput_ce,
            flow_bd=self.src_bd.flow, flow_af=self.src_af.flow,
            flow_ce=self.flow_ce,
            ce_completed_at=self.ce_app.completed_at,
            alerts=list(self.deployment.alerts()))
        done = self.payload.ce_completed_at
        return {
            "ce_completed_ms": (round(done * 1e3, 2)
                                if done is not None else None),
            "alerts": len(self.payload.alerts),
        }

    def diagnose(self) -> list[Verdict]:
        alerts = self.deployment.alerts()
        if not alerts:
            return []
        return [diagnose_cascade(self.deployment.analyzer, alerts[0])]


def run_cascades_scenario(*, cascaded: bool = True,
                          udp_duration: float = 0.010,
                          ce_bytes: int = 2_000_000,
                          ce_start: float = 0.012,
                          alpha_ms: int = 10, k: int = 3,
                          epsilon_ms: float = 1.0,
                          delta_ms: float = 2.0) -> CascadesResult:
    """Fig 4 run (functional entry point kept for examples/tests)."""
    sc = CascadesScenario(
        cascaded=cascaded, udp_duration=udp_duration, ce_bytes=ce_bytes,
        ce_start=ce_start, alpha_ms=alpha_ms, k=k,
        epsilon_ms=epsilon_ms, delta_ms=delta_ms)
    sc.build()
    sc.run()
    sc.collect()
    return sc.payload
