"""Unit tests for the OpenFlow rule-table model."""

import pytest

from repro.switchd.rules import (COMMODITY_MIN_ALPHA_MS, RuleModelError,
                                 RuleTable)


class TestRuleCounts:
    def test_one_link_rule_per_port_plus_epoch_rule(self):
        table = RuleTable(switch_name="S1", port_count=48, alpha_ms=20)
        assert len(table.link_rules) == 48
        assert table.total_rules == 49

    def test_rules_scale_linearly_with_ports(self):
        """§4.1.3: linkID rules grow linearly with port count."""
        counts = [RuleTable("S", p, 20).total_rules for p in (8, 16, 32)]
        assert counts == [9, 17, 33]

    def test_port_count_validated(self):
        with pytest.raises(RuleModelError):
            RuleTable(switch_name="S", port_count=0, alpha_ms=20)


class TestCommodityLimit:
    def test_alpha_below_floor_rejected(self):
        with pytest.raises(RuleModelError):
            RuleTable(switch_name="S", port_count=4, alpha_ms=10)

    def test_floor_value_matches_paper(self):
        assert COMMODITY_MIN_ALPHA_MS == 15.0
        RuleTable(switch_name="S", port_count=4, alpha_ms=15)  # ok

    def test_enforcement_can_be_disabled(self):
        table = RuleTable(switch_name="S", port_count=4, alpha_ms=5,
                          enforce_commodity_limit=False)
        assert table.alpha_ms == 5


class TestEpochUpdates:
    def test_advance_epoch_rewrites_rule(self):
        table = RuleTable(switch_name="S", port_count=4, alpha_ms=20)
        table.advance_epoch(7)
        assert "epoch_id=7" in table.epoch_rule.action
        assert table.epoch_updates == 1
        table.advance_epoch(8)
        assert table.epoch_updates == 2

    def test_updates_per_second(self):
        table = RuleTable(switch_name="S", port_count=4, alpha_ms=20)
        assert table.updates_per_second() == pytest.approx(50.0)
