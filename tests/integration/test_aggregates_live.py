"""Integration: aggregation queries over a live instrumented fabric."""

import pytest

from repro import SwitchPointerDeployment
from repro.hostd import aggregate
from repro.simnet import WorkloadGenerator, WorkloadSpec
from repro.simnet.topology import build_leaf_spine


@pytest.fixture(scope="module")
def fabric():
    net = build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=3,
                           rate_bps=10e9)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)
    spec = WorkloadSpec(arrival_rate_per_s=1500, duration_s=0.03,
                        mean_flow_bytes=20_000, flow_rate_bps=2e9,
                        seed=99)
    gen = WorkloadGenerator(net, spec)
    flows = gen.schedule()
    net.run(until=0.25)
    results, _ = deploy.analyzer.consult_hosts(
        net.host_names, lambda agent: agent.query.all_flows())
    return net, deploy, flows, results


class TestLiveAggregates:
    def test_traffic_matrix_covers_generated_flows(self, fabric):
        net, deploy, flows, results = fabric
        matrix = aggregate.traffic_matrix(results)
        pairs = {(f.flow.src, f.flow.dst) for f in flows}
        assert pairs <= set(matrix)
        assert all(v > 0 for v in matrix.values())

    def test_bytes_per_switch_consistent_with_fib(self, fabric):
        net, deploy, flows, results = fabric
        per_switch = aggregate.bytes_per_switch(results)
        # every leaf carries traffic; totals positive
        assert per_switch.get("leaf0", 0) > 0
        assert per_switch.get("leaf1", 0) > 0
        # conservation: switch totals never exceed hop-count x delivered
        delivered = sum(r.bytes for res in results.values()
                        for r in res.payload)
        assert sum(per_switch.values()) <= 3 * delivered

    def test_heavy_hitters_ranked(self, fabric):
        net, deploy, flows, results = fabric
        hh = aggregate.heavy_hitters_per_link(results, top=3)
        assert hh
        for link, summaries in hh.items():
            sizes = [s.bytes for s in summaries]
            assert sizes == sorted(sizes, reverse=True)

    def test_epoch_activity_totals(self, fabric):
        net, deploy, flows, results = fabric
        activity = aggregate.epoch_activity(results)
        assert activity
        total = sum(activity.values())
        delivered = sum(r.bytes for res in results.values()
                        for r in res.payload)
        assert total == delivered

    def test_contention_groups_nonempty_on_busy_trunk(self, fabric):
        net, deploy, flows, results = fabric
        groups = aggregate.contention_groups(results, "spine0")
        flows_at_spine0 = [r for res in results.values()
                           for r in res.payload
                           if "spine0" in r.switch_path]
        if flows_at_spine0:
            assert groups
            assert sum(len(g) for g in groups) == len(flows_at_spine0)


class TestCrossValidation:
    def test_matrix_agrees_with_directory(self, fabric):
        """Every (switch, destination) implied by the records must be
        present in that switch's pointer history — records and
        directory describe the same traffic."""
        net, deploy, flows, results = fabric
        deploy.flush_all_tops()
        for host, res in results.items():
            for summary in res.payload:
                for sw in summary.switch_path:
                    agent = deploy.switch_agents[sw]
                    rng = summary.epochs_at(sw)
                    slots, _ = agent.best_effort_slots(rng.lo, rng.hi)
                    hosts = deploy.directory.hosts_of(slots)
                    assert summary.flow.dst in hosts, (sw, summary.flow)
