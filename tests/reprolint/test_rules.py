"""Per-rule fixture tests: each rule fires on its violating tree and
stays silent on its clean twin.

Fixtures are committed mini project trees
(``fixtures/<rule>/{violating,clean}/src/repro/...``) linted in place
with ``run_lint(root=<fixture>, rules=(<rule>,))`` — reprolint never
imports what it checks, so the violating trees cost nothing to keep.
"""

from pathlib import Path

import pytest

from tools.reprolint import RULES, Violation, run_lint
from tools.reprolint import rules as _rules  # noqa: F401  (registers catalogue)

FIXTURES = Path(__file__).parent / "fixtures"

#: rule name -> fixture directory name
CASES = {
    "no-wall-clock": "no_wall_clock",
    "no-global-rng": "no_global_rng",
    "knob-declaration": "knob_declaration",
    "fault-protocol": "fault_protocol",
    "registry-coverage": "registry_coverage",
    "report-schema-drift": "report_schema_drift",
    "typed-defs": "typed_defs",
}


def lint_fixture(rule: str, variant: str) -> list[Violation]:
    root = FIXTURES / CASES[rule] / variant
    assert root.is_dir(), f"missing fixture tree {root}"
    return run_lint(root, rules=(rule,))


def test_every_rule_has_fixture_coverage():
    """Adding a rule without fixtures must fail loudly, not silently."""
    assert set(CASES) == set(RULES.names())


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_fires_on_violating_tree(rule):
    violations = lint_fixture(rule, "violating")
    assert violations, f"{rule} found nothing in its violating fixture"
    assert all(v.rule == rule for v in violations)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_passes_clean_tree(rule):
    violations = lint_fixture(rule, "clean")
    assert violations == [], [v.render() for v in violations]


# -- rule-specific expectations, pinned to the committed fixtures --------


def test_wall_clock_strict_zone_rejects_pragma():
    violations = lint_fixture("no-wall-clock", "violating")
    by_rel = {v.rel: v for v in violations}
    strict = by_rel["src/repro/simnet/engine.py"]
    assert "not honored" in strict.message
    plain = by_rel["src/repro/metrics.py"]
    assert "allow[wall-clock]" in plain.message
    assert len(violations) == 2


def test_global_rng_names_offending_call():
    violations = lint_fixture("no-global-rng", "violating")
    messages = [v.message for v in violations]
    assert len(violations) == 3  # seed, randint, imported randrange
    assert any("random.seed" in m for m in messages)
    assert any("random.randrange" in m for m in messages)
    assert all("run_stream" in m for m in messages)


def test_knob_declaration_names_every_offender():
    violations = lint_fixture("knob-declaration", "violating")
    blob = "\n".join(v.message for v in violations)
    # scenario-side: undeclared accesses + smoke knob
    assert "'burst_len'" in blob
    assert "'warmup'" in blob
    assert "smoke_knobs names undeclared knob 'rate'" in blob
    # sweep-side: axis, base knob, suspect knob
    assert "axis 'x' binds knob 'ghost_axis'" in blob
    assert "base_knobs names undeclared knob 'phantom'" in blob
    assert "expect_suspect_knob names undeclared knob 'missing'" in blob
    assert len(violations) == 6


def test_fault_protocol_catches_all_three_breaches():
    violations = lint_fixture("fault-protocol", "violating")
    blob = "\n".join(v.message for v in violations)
    assert "does not override heal()" in blob
    assert "describe() must take only self" in blob
    assert "saves self._saved" in blob
    # records_lost is a public measurement attribute: exempt
    assert "records_lost" not in blob
    assert len(violations) == 3


def test_registry_coverage_names_the_package_init():
    (violation,) = lint_fixture("registry-coverage", "violating")
    assert violation.rel == "src/repro/faults/orphan.py"
    assert "OrphanFault" in violation.message
    assert "__init__.py never imports it" in violation.message


def test_report_schema_drift_catches_both_directions_and_runner():
    violations = lint_fixture("report-schema-drift", "violating")
    blob = "\n".join(v.message for v in violations)
    assert "writes 'extra'" in blob  # written, not validated
    assert "requires 'seed'" in blob  # validated, never written
    assert "'bogus'" in blob  # runner writes a ghost field
    assert len(violations) == 3


def test_typed_defs_reports_params_and_returns():
    violations = lint_fixture("typed-defs", "violating")
    blob = "\n".join(v.message for v in violations)
    assert "scale() is missing parameter annotation(s) for value" in blob
    assert "total() is missing its return annotation" in blob
    # annotated __init__ params imply the None return; this one has none
    assert "__init__() is missing its return annotation" in blob
