"""Simulated control-plane RPC fabric with a calibrated latency model.

The paper's control plane is flask-over-HTTP; its measured latencies
(Figs 7, 8, 12) are dominated by **on-demand connection initiation**:
"the analyzer creates one thread per server to initiate connection when
a query should be executed.  This on-demand thread creation delays the
execution of query at servers" (§6.2).  That serialized per-server setup
is why both PathDump's and SwitchPointer's response times grow linearly
with the number of servers contacted — and why SwitchPointer wins by
contacting only the *relevant* servers.

:class:`LatencyModel` carries the constants, calibrated to the paper's
reported numbers:

* problem detection ≲ 1 ms (the 1 ms trigger window),
* alert + acknowledgment: 2–3 ms,
* pointer retrieval: 7–8 ms per switch,
* per-server connection initiation: ~3.3 ms (0.32 s / 96 servers),
* query execution & response: ~1 ms each plus per-record scan time.

:class:`RpcFabric` composes them the way the implementation would:
connection setups serialize on the analyzer; request/execute/response
run in parallel across servers once their connections exist.  A
``pooled`` flag models the §6.2 thread-pool optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..hostd.query import QueryResult


@dataclass(frozen=True)
class LatencyModel:
    """Constants of the control-plane cost model (seconds)."""

    connection_init_s: float = 3.3e-3   # per server, serialized (§6.2)
    pooled_dispatch_s: float = 0.15e-3  # per server with a thread pool
    alert_rtt_s: float = 2.5e-3         # host alert -> analyzer ack (§5.1)
    pointer_pull_s: float = 7.5e-3      # per switch pointer retrieval (§5.1)
    request_s: float = 0.8e-3           # query request wire time
    exec_base_s: float = 0.9e-3         # query execution, fixed part
    per_record_s: float = 4e-6          # query execution, per record scanned
    response_s: float = 0.8e-3          # response wire time


@dataclass
class Breakdown:
    """Accumulated latency by phase (the Fig 7 / Fig 12 bar segments)."""

    parts: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.parts[phase] = self.parts.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.parts.values())

    def merged(self, other: "Breakdown") -> "Breakdown":
        out = Breakdown(dict(self.parts))
        for phase, s in other.parts.items():
            out.add(phase, s)
        return out


class RpcFabric:
    """Latency-accounted RPC between analyzer, switches, and hosts.

    ``concurrency`` models batched connection initiation: the analyzer
    opens up to that many connections at once, so fan-out setup costs
    ``ceil(n / concurrency)`` serialized rounds instead of ``n``.  The
    default of 1 reproduces the paper's §6.2 one-thread-per-server
    on-demand behaviour (and its linear response-time growth) exactly;
    ``pooled`` remains the stronger thread-pool optimization with a
    flat, cheap per-server dispatch.
    """

    def __init__(self, model: Optional[LatencyModel] = None, *,
                 pooled: bool = False, concurrency: int = 1):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.model = model if model is not None else LatencyModel()
        self.pooled = pooled
        self.concurrency = concurrency
        self.calls = 0

    # -- elementary costs -----------------------------------------------------

    def alert_cost(self) -> float:
        """Host → analyzer alert plus acknowledgment."""
        self.calls += 1
        return self.model.alert_rtt_s

    def pointer_pull_cost(self, n_switches: int) -> float:
        """Retrieve pointers from ``n_switches`` (sequential pulls)."""
        if n_switches < 0:
            raise ValueError("switch count cannot be negative")
        self.calls += n_switches
        return n_switches * self.model.pointer_pull_s

    def _setup_cost(self, n_servers: int) -> float:
        if self.pooled:
            return n_servers * self.model.pooled_dispatch_s
        batches = -(-n_servers // self.concurrency)  # ceil division
        return batches * self.model.connection_init_s

    # -- fan-out query --------------------------------------------------------

    def fanout_query(self, servers: Sequence[str],
                     execute: Callable[[str], QueryResult]
                     ) -> tuple[dict[str, QueryResult], Breakdown]:
        """Run ``execute(server)`` on every server, with the §6.2 model.

        Connection initiations serialize on the analyzer in batches of
        ``concurrency`` (one batch at a time, batch members concurrent);
        request, execution and response then proceed in parallel across
        servers (total = slowest server).  Returns per-server results
        plus the latency breakdown in the Fig 12 categories.
        """
        bd = Breakdown()
        results: dict[str, QueryResult] = {}
        if not servers:
            return results, bd
        self.calls += len(servers)
        bd.add("connection_initiation", self._setup_cost(len(servers)))
        bd.add("request", self.model.request_s)
        slowest_exec = 0.0
        for server in servers:
            res = execute(server)
            results[server] = res
            cost = (self.model.exec_base_s
                    + res.records_scanned * self.model.per_record_s)
            slowest_exec = max(slowest_exec, cost)
        bd.add("query_execution", slowest_exec)
        bd.add("response", self.model.response_s)
        return results, bd
