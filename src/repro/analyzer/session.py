"""Online diagnosis sessions (the ROADMAP "Online diagnosis" item).

The paper's production story is an *always-on* analyzer: triggers fire
mid-run and diagnosis races live network events.  A
:class:`DiagnosisSession` is the unit of that race — one trigger's
worth of incremental evidence gathering:

* While a session is **bound** (used as a context manager), the
  analyzer's RPC fabric charges every RPC's latency in simulated time,
  so ingestion, epoch rotation, and any still-scheduled faults proceed
  *while queries are in flight*.
* Host evidence arrives through **delta queries**: each round asks only
  for records updated since the host's previous answer (the
  ``since_seq`` watermark of
  :meth:`repro.hostd.query.QueryEngine.flows_matching`), and the
  session merges rounds by flow into a cumulative evidence map.
* Hosts that fail to answer a round — crashed agent, downed access
  link — are remembered as **missing**: the fabric times them out
  (bounded retry/backoff) and the session degrades the verdict instead
  of erroring.

The session finally **stamps** verdicts with one of three states:

``complete``
    every consulted host answered, and the session finished within its
    staleness budget;
``degraded``
    at least one consulted host never answered — ``missing_hosts``
    names the evidence gap;
``stale``
    all hosts answered, but the simulated time the diagnosis consumed
    exceeded ``stale_after_s`` — the verdict describes a network state
    older than the operator should trust.

Freshness — "ingest seq at verdict minus ingest seq at trigger" — and
the simulated diagnosis latency are both measured here and surfaced
through :class:`repro.scenarios.base.ScenarioResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..core.epoch import EpochRange
from ..hostd.agent import HostAgent
from ..hostd.query import FlowSummary, QueryResult
from ..rpc.fabric import Breakdown
from ..simnet.packet import FlowKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .analyzer import Analyzer
    from .apps import Verdict

STATUS_COMPLETE = "complete"
STATUS_DEGRADED = "degraded"
STATUS_STALE = "stale"

#: every state a session-stamped verdict can carry, in severity order
VERDICT_STATES = (STATUS_COMPLETE, STATUS_DEGRADED, STATUS_STALE)


class DiagnosisSession:
    """One trigger's resumable, incremental diagnosis.

    Create via :meth:`repro.analyzer.analyzer.Analyzer.open_session`;
    use as a context manager to bind the RPC fabric to simulated time
    for the session's duration::

        session = analyzer.open_session(stale_after_s=0.05)
        with session:
            verdict = diagnose_gray_failure_online(
                analyzer, flow, silence_epochs=window, session=session)
        assert verdict.status in VERDICT_STATES
    """

    def __init__(self, analyzer: "Analyzer", *,
                 stale_after_s: Optional[float] = None):
        self.analyzer = analyzer
        self.stale_after_s = stale_after_s
        self.started_at: float = analyzer.network.sim.now
        #: global decoded-ingest watermark when the trigger fired
        self.seq_at_trigger: int = analyzer.ingest_seq()
        #: hosts that failed to answer some round (evidence gaps)
        self.missing_hosts: set[str] = set()
        #: per-host ``since_seq`` watermark for the next delta round
        self._since: dict[str, int] = {}
        #: cumulative evidence: (host, flow) -> latest summary
        self._evidence: dict[tuple[str, FlowKey], FlowSummary] = {}
        self.delta_rounds = 0

    # -- simulated-time binding ------------------------------------------------

    def __enter__(self) -> "DiagnosisSession":
        self.bind()
        return self

    def __exit__(self, *exc: object) -> None:
        self.unbind()

    def bind(self) -> None:
        """Bind the analyzer's RPC fabric to simulated time."""
        a = self.analyzer
        a.rpc.bind(a.network.sim, hops_to=a.hops_to)

    def unbind(self) -> None:
        self.analyzer.rpc.bind(None)

    # -- bookkeeping -----------------------------------------------------------

    def note_round(self, requested: Sequence[str],
                   results: dict[str, QueryResult]) -> None:
        """Record one fan-out's outcome: watermarks + missing hosts.

        The analyzer calls this from :meth:`Analyzer.consult_hosts`
        whenever a session is attached, so *any* diagnosis routed
        through the session accumulates evidence-gap state, not just
        the explicit delta rounds.
        """
        for host in requested:
            if host not in results:
                self.missing_hosts.add(host)
        for host, res in results.items():
            if res.as_of_seq > self._since.get(host, -1):
                self._since[host] = res.as_of_seq

    # -- delta queries ---------------------------------------------------------

    def delta_flows(self, hosts: Sequence[str], switch: str,
                    epochs: Optional[EpochRange]
                    ) -> tuple[list[tuple[str, FlowSummary]], Breakdown]:
        """One incremental round of the (switchID, epochID) filter.

        Each host is asked only for records updated since its previous
        answer in this session; new summaries supersede older ones in
        the session's evidence map.  Returns the *cumulative* merged
        evidence — (host, summary) pairs — so calling this repeatedly
        while ingestion continues converges on exactly the one-shot
        answer at the final watermark.
        """
        self.delta_rounds += 1
        since = self._since

        def query(agent: HostAgent) -> QueryResult:
            return agent.query.flows_matching(
                switch, epochs, since_seq=since.get(agent.name))

        results, bd = self.analyzer.consult_hosts(hosts, query,
                                                  session=self)
        for host, res in results.items():
            for summary in res.payload:
                self._evidence[(host, summary.flow)] = summary
        merged = [(host, summary) for (host, _flow), summary
                  in sorted(self._evidence.items(), key=lambda kv: kv[0])]
        return merged, bd

    # -- outcome ---------------------------------------------------------------

    @property
    def diagnosis_latency_sim(self) -> float:
        """Simulated seconds consumed since the session opened."""
        return self.analyzer.network.sim.now - self.started_at

    @property
    def freshness(self) -> int:
        """Ingest seq now minus ingest seq at trigger (records absorbed
        network-wide while this diagnosis was running)."""
        return self.analyzer.ingest_seq() - self.seq_at_trigger

    def status(self) -> str:
        if self.missing_hosts:
            return STATUS_DEGRADED
        if (self.stale_after_s is not None
                and self.diagnosis_latency_sim > self.stale_after_s):
            return STATUS_STALE
        return STATUS_COMPLETE

    def stamp(self, verdict: "Verdict") -> "Verdict":
        """Tag a verdict with the session's state and evidence gaps."""
        verdict.status = self.status()
        verdict.missing_hosts = sorted(self.missing_hosts)
        return verdict
