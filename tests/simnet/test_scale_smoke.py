"""65k-host scale smoke: the fabric the nightly top end runs on.

The incast-scale nightly grid tops out at hosts=65536 (64 leaves x
1024 hosts/leaf, 16 spines).  This tier-1 smoke pins the part every
scale point pays unconditionally — fabric construction plus full route
computation — under a wall-time budget, so a routing or topology
regression shows up in CI as a slow test here rather than as a blown
nightly budget.  The full scenario at that population (with the 100k
background flows) is the skip-marked variant below; the nightly sweep
runs it for real.
"""

import time

import pytest

from repro.simnet.topology import build_leaf_spine

# measured ~11 s on one dev-container core (80 switches x 65536
# destinations of BFS + route install); the budget leaves ~5x headroom
# for slower CI machines without letting a quadratic regression hide
N_LEAVES, N_SPINES, PER_LEAF = 64, 16, 1024
BUILD_BUDGET_S = 60.0


def test_65k_fabric_builds_and_routes_within_budget():
    start = time.perf_counter()
    net = build_leaf_spine(N_LEAVES, N_SPINES, PER_LEAF)
    elapsed = time.perf_counter() - start
    assert len(net.hosts) == N_LEAVES * PER_LEAF == 65536
    assert len(net.switches) == N_LEAVES + N_SPINES
    # routes are installed for every reachable destination, not lazily:
    # spot-check the corners (first/last host on first/last leaf)
    hosts = sorted(net.hosts)
    for sw_name in ("leaf0", f"leaf{N_LEAVES - 1}", "spine0"):
        sw = net.switches[sw_name]
        assert sw.routes_for(hosts[0])
        assert sw.routes_for(hosts[-1])
    assert elapsed < BUILD_BUDGET_S, (
        f"65k fabric build+routes took {elapsed:.1f}s "
        f"(budget {BUILD_BUDGET_S}s)")


@pytest.mark.skip(reason="slow: the full hosts=65536 flows=100000 "
                         "incast point (~minutes); the nightly "
                         "incast-scale sweep runs it for real")
def test_65k_incast_point_full_flows():
    from repro.scenarios import run_scenario

    res = run_scenario("incast", hosts=65536, bg_flows=100000,
                       record_backend="columnar", record_shards=8,
                       ingest_batch=256)
    assert res.measurements["fabric_hosts"] == 65536
    assert [v.problem for v in res.verdicts] == ["incast"]
