"""Analyzer behavior on sketch-backed directories: superset answers,
false-positive accounting, approx evidence labels, co-suspect ranking.
"""

import pytest

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.scenarios import REGISTRY, run_scenario
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_linear


def _deploy(**kw):
    net = build_linear(2, 8)  # 16 hosts: room for a sub-S bit budget
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2, **kw)
    net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
    net.run()
    return net, deploy


class TestSupersetAnswers:
    def test_tight_budget_floods_but_keeps_the_true_host(self):
        _net, deploy = _deploy(directory_backend="bloom",
                               directory_bits=4, directory_hashes=2)
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert "h2_0" in hosts          # never dropped
        assert len(hosts) > 1           # 4 bits for 16 hosts must flood
        stats = deploy.analyzer.directory_stats()
        assert stats["queries"] >= 1
        assert stats["approx_queries"] == stats["queries"]
        assert stats["false_positive_slots"] > 0
        assert 0.0 < stats["fpr"] <= 1.0

    def test_saturating_budget_measures_zero_fpr(self):
        _net, deploy = _deploy(directory_backend="bloom",
                               directory_bits=0)
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert hosts == ["h2_0"]
        stats = deploy.analyzer.directory_stats()
        assert stats["approx_queries"] == stats["queries"] >= 1
        assert stats["fpr"] == 0.0

    def test_exact_backend_never_counts_approx_queries(self):
        _net, deploy = _deploy()
        assert deploy.analyzer.hosts_for("S1", EpochRange(0, 0)) == \
            ["h2_0"]
        stats = deploy.analyzer.directory_stats()
        assert stats["queries"] >= 1
        assert stats["approx_queries"] == 0
        assert stats["fpr"] == 0.0
        assert not deploy.analyzer.directory_approx


def _gray(**extra):
    spec = REGISTRY.get("gray-failure").spec
    return run_scenario("gray-failure", **{**spec.smoke_knobs, **extra})


class TestEvidenceLabels:
    def test_exact_verdicts_are_not_approx(self):
        result = _gray()
        assert result.verdicts
        assert not any(v.approx for v in result.verdicts)

    @pytest.mark.parametrize("backend", ["bloom", "lsh"])
    def test_sketch_verdicts_carry_the_approx_label(self, backend):
        result = _gray(directory_backend=backend)
        assert result.verdicts
        assert all(v.approx for v in result.verdicts)

    def test_flooded_directory_fpr_rides_the_measurements(self):
        result = _gray(directory_backend="bloom", directory_bits=3,
                       directory_hashes=2)
        assert result.measurements["directory_fpr"] > 0.0

    def test_default_budget_fpr_is_zero(self):
        result = _gray(directory_backend="bloom")
        assert result.measurements["directory_fpr"] == 0.0


class TestCoSuspects:
    @pytest.mark.parametrize("backend", ["exact", "lsh"])
    def test_gray_failure_ranks_co_suspects(self, backend):
        result = _gray(directory_backend=backend)
        located = [v for v in result.verdicts if v.suspect]
        assert located, "smoke gray failure must localize"
        for v in located:
            assert v.co_suspects          # similar switches named
            assert v.suspect not in v.co_suspects
            assert len(v.co_suspects) <= 3

    def test_ranking_is_deterministic(self):
        a = _gray(directory_backend="lsh")
        b = _gray(directory_backend="lsh")
        assert [v.co_suspects for v in a.verdicts] == \
            [v.co_suspects for v in b.verdicts]
