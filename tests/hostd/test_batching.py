"""Batched observe ingestion at the host agent (scale-sweep path)."""

from repro.core.epoch import EpochRange
from repro.deployment import SwitchPointerDeployment
from repro.hostd.records import FlowRecordStore
from repro.hostd.sharded import ShardedRecordStore
from repro.simnet.packet import PRIO_LOW
from repro.simnet.topology import build_linear
from repro.simnet.traffic import UdpCbrSource, UdpSink


def run_deployment(**kwargs):
    net = build_linear(3, hosts_per_switch=2)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2, **kwargs)
    for i in range(2):
        UdpSink(net.hosts[f"h3_{i}"], 9000 + i)
        UdpCbrSource(net.sim, net.hosts[f"h1_{i}"], f"h3_{i}",
                     sport=9000 + i, dport=9000 + i, rate_bps=20e6,
                     packet_size=500, priority=PRIO_LOW, start=0.001,
                     duration=0.030)
    net.run(until=0.040)
    return net, deploy


class TestBatchedIngestion:
    def test_batched_agent_matches_unbatched_records(self):
        _, plain = run_deployment()
        _, batched = run_deployment(ingest_batch=16)
        for name, agent in plain.host_agents.items():
            other = batched.host_agents[name]
            # flush only through the query path, as the analyzer would
            other.query.all_flows()
            assert len(other.store) == len(agent.store)
            for rec in agent.store:
                twin = other.store.get(rec.flow)
                assert twin is not None
                assert twin.packets == rec.packets
                assert twin.bytes == rec.bytes
                assert twin.epoch_ranges == rec.epoch_ranges

    def test_query_flushes_pending_batch(self):
        _, deploy = run_deployment(ingest_batch=1024)
        agent = deploy.host_agents["h3_0"]
        # a huge batch never filled: records only appear via the
        # before_query flush
        assert len(agent._pending) > 0
        res = agent.query.flows_matching("S1", EpochRange(0, 100))
        assert agent._pending == []
        assert res.records_returned > 0

    def test_batched_sharded_bounded_combination(self):
        _, deploy = run_deployment(ingest_batch=8, record_shards=4,
                                   records_per_host=4)
        for agent in deploy.host_agents.values():
            agent.flush_ingest()
            assert isinstance(agent.store, ShardedRecordStore)
            assert len(agent.store) <= 4

    def test_default_store_remains_flat_unbounded(self):
        _, deploy = run_deployment()
        for agent in deploy.host_agents.values():
            assert isinstance(agent.store, FlowRecordStore)
            assert agent.store.max_records is None

    def test_direct_store_reads_see_pending_packets(self):
        """Consumers that bypass the query engine (triggers, analyzer
        apps doing agent.store.get) must still observe buffered
        packets: the store's before_read hook flushes the batch."""
        _, deploy = run_deployment(ingest_batch=1024)
        agent = deploy.host_agents["h3_0"]
        assert len(agent._pending) > 0
        # this flow's record exists only in the pending buffer; a
        # direct get() — the trigger/analyzer path — must flush first
        _, pkt, _ = agent._pending[0]
        rec = agent.store.get(pkt.flow)
        assert agent._pending == []
        assert rec is not None
        assert rec.packets > 0

    def test_analyzer_diagnosis_correct_under_batching(self):
        """gray-failure with a batch larger than the per-flow packet
        count: diagnosis reads agent.store.get directly and must not
        see a stale (empty) table."""
        from repro.scenarios import run_scenario

        result = run_scenario("gray-failure", n_flows=2,
                              duration=0.040, ingest_batch=1024)
        verdicts = [v for v in result.verdicts
                    if v.problem == "gray-failure"]
        assert verdicts, result.verdicts
        assert all(v.suspect == "S3" for v in verdicts)

    def test_decoder_counters_survive_batching(self):
        _, plain = run_deployment()
        _, batched = run_deployment(ingest_batch=16)
        for name, agent in batched.host_agents.items():
            agent.flush_ingest()
            assert (agent.decoder.decoded
                    == plain.host_agents[name].decoder.decoded)
