"""SwitchPointer switch component: datapath pipeline + control plane.

* :mod:`repro.switchd.datapath` — per-packet pointer updates and
  telemetry embedding (hooks into the simulated switch).
* :mod:`repro.switchd.cherrypick` — link-sampling decisions and
  path reconstruction.
* :mod:`repro.switchd.agent` — pull/push control plane, offline store.
* :mod:`repro.switchd.rules` — OpenFlow rule-count/update model.
"""

from .cherrypick import CherryPickPlanner
from .datapath import (MODE_INT, MODE_NONE, MODE_VLAN,
                       SwitchPointerDatapath, VanillaDatapath)
from .agent import ControlPlaneStore, SwitchAgent
from .rules import (COMMODITY_MIN_ALPHA_MS, FlowRule, RuleModelError,
                    RuleTable)

__all__ = [
    "CherryPickPlanner",
    "SwitchPointerDatapath", "VanillaDatapath",
    "MODE_VLAN", "MODE_INT", "MODE_NONE",
    "SwitchAgent", "ControlPlaneStore",
    "RuleTable", "FlowRule", "RuleModelError", "COMMODITY_MIN_ALPHA_MS",
]
