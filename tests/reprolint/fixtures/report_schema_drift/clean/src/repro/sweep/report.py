"""Fixture: writer and validator schema in lockstep."""

from dataclasses import dataclass
from typing import Any

_POINT_FIELDS = {"index": int, "extra": str, "ok": bool}
_TOP_FIELDS = {"schema": int, "points": list}


@dataclass
class PointResult:
    index: int
    extra: str

    @property
    def ok(self) -> bool:
        return True

    def to_json(self) -> dict[str, Any]:
        return {"index": self.index, "extra": self.extra, "ok": self.ok}


@dataclass
class SweepReport:
    schema: int
    points: list

    def to_json(self) -> dict[str, Any]:
        return {"schema": self.schema, "points": self.points}
