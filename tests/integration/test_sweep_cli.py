"""Integration: `cli sweep run` produces a schema-valid SweepReport and
every grid point's diagnosis matches the single-run verdict for the
same seed (the reproducibility contract docs/SWEEPS.md promises)."""

import json

from repro.cli import main
from repro.core.rng import seed_run
from repro.scenarios import run_scenario
from repro.sweep import SWEEPS, validate_report

FAST = ["--knob", "duration=0.02", "--knob", "burst_start=0.008"]


def run_cli_sweep(tmp_path, *extra):
    out = tmp_path / "report.json"
    code = main(
        ["sweep", "run", "incast", "--grid", "hosts=64,128",
         "--workers", "1", "--out", str(out), *FAST, *extra])
    return code, out


class TestSweepCli:
    def test_list(self, capsys):
        assert main(["sweep", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("incast", "incast-scale", "gray-failure",
                     "polarization", "link-flap"):
            assert name in out

    def test_run_writes_schema_valid_report(self, tmp_path, capsys):
        code, out = run_cli_sweep(tmp_path)
        assert code == 0
        printed = capsys.readouterr().out
        assert "2/2 points ok" in printed
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_report(doc) == []
        assert doc["scenario"] == "incast"
        assert doc["grid"] == {"hosts": [64, 128]}
        assert [p["params"]["hosts"] for p in doc["points"]] == [64, 128]
        assert all(p["ok"] for p in doc["points"])

    def test_every_point_matches_single_run_same_seed(self, tmp_path):
        """Replay each point as `cli run`-style single execution with
        the point's recorded knobs and seed: identical verdicts."""
        code, out = run_cli_sweep(tmp_path)
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        spec = SWEEPS.get("incast")
        for point in doc["points"]:
            seed_run(point["seed"])
            single = run_scenario("incast", **point["knobs"])
            problems = [v.problem for v in single.verdicts]
            assert point["problems"] == problems
            assert point["diagnosis_ok"] == (
                spec.expect_problem in problems)
            assert point["suspects"] == [
                v.suspect for v in single.verdicts if v.suspect]
            assert point["measurements"] == single.measurements

    def test_unknown_sweep_fails_cleanly(self, capsys):
        assert main(["sweep", "run", "no-such-sweep"]) == 2
        assert "no sweep registered" in capsys.readouterr().err

    def test_unknown_axis_fails_cleanly(self, capsys):
        assert main(
            ["sweep", "run", "incast", "--grid", "bogus=1"]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_failing_point_sets_exit_code(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["sweep", "run", "incast", "--grid", "hosts=64",
             "--workers", "1", "--out", str(out),
             "--knob", "duration=-1.0"])
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_report(doc) == []
        assert doc["points"][0]["error"] is not None

    def test_knob_axis_collision_fails_cleanly(self, capsys):
        assert main(
            ["sweep", "run", "incast", "--grid", "hosts=64,128",
             "--knob", "hosts=32"]) == 2
        assert "override swept axis" in capsys.readouterr().err

    def test_nightly_grid_flag(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["sweep", "run", "gray-failure", "--nightly",
             "--workers", "1", "--out", str(out),
             "--knob", "duration=0.04"])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        spec = SWEEPS.get("gray-failure")
        assert doc["grid"] == {
            axis: list(vals) for axis, vals in spec.nightly_grid.items()}

    def test_traffic_scale_sweep_carries_flow_metrics(self, tmp_path):
        """The acceptance shape: a traffic-axis point reports its flow
        count and ingest throughput in a schema-valid document."""
        out = tmp_path / "report.json"
        code = main(
            ["sweep", "run", "incast-scale",
             "--grid", "hosts=64", "--grid", "flows=200",
             "--workers", "1", "--out", str(out), *FAST])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_report(doc) == []
        assert doc["sweep"] == "incast-scale"
        assert doc["scenario"] == "incast"
        point = doc["points"][0]
        assert point["knobs"]["bg_flows"] == 200
        assert point["flow_count"] >= 200
        assert point["ingest_records_per_s"] > 0
        assert doc["summary"]["max_flow_count"] == point["flow_count"]


class TestSweepNightlyCli:
    def test_nightly_writes_one_report_per_sweep(self, tmp_path, capsys):
        code = main(
            ["sweep", "nightly", "--out-dir", str(tmp_path),
             "--workers", "1",
             "--only", "polarization", "--only", "link-flap"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "2/2 sweeps ok" in printed
        for name in ("polarization", "link-flap"):
            path = tmp_path / f"sweep_nightly_{name}.json"
            assert path.exists(), path
            doc = json.loads(path.read_text(encoding="utf-8"))
            assert validate_report(doc) == []
            spec = SWEEPS.get(name)
            assert doc["grid"] == {
                axis: list(vals)
                for axis, vals in spec.nightly_grid.items()}
            assert all(p["ok"] for p in doc["points"])

    def test_nightly_unknown_only_fails_cleanly(self, tmp_path, capsys):
        code = main(["sweep", "nightly", "--out-dir", str(tmp_path),
                     "--only", "no-such-sweep"])
        assert code == 2
        assert "no sweep registered" in capsys.readouterr().err
