"""Fixture: the full schedule→inject→heal contract, honored."""

from typing import Any, Optional

from .base import Fault, register_fault


@register_fault
class GoodFault(Fault):
    spec = "good"

    def __init__(self) -> None:
        self._saved: Optional[Any] = None
        self.records_lost = 0  # public measurement surface

    def inject(self, ctx: Any) -> None:
        self._saved = ctx
        self.records_lost = 1

    def heal(self, ctx: Any) -> None:
        self._saved = None

    def describe(self) -> str:
        return "good"
