"""The registered degradation studies.

Importing this module registers every experiment — the registration
idiom shared with scenarios/sweeps/faults.  The first two studies are
the curves the fault axes already expose (the paper's core robustness
claims):

* **skew-degradation** — diagnosis accuracy as clock skew crosses the
  ε-asynchrony bound.  Timestamp reconciliation tolerates pairwise skew
  up to ε = α (the epoch length, 10 ms at default knobs): victim skew
  of 5 ms puts pairwise divergence exactly at the bound, and past it
  ordering breaks down and accuracy falls off a cliff.
* **deploy-degradation** — accuracy as partial deployment thins
  switch coverage.  The underlying sweep pins a spare (`deploy_spare`)
  so its nightly grid stays green; the *study* unpins it (the point is
  to chart degradation, not avoid it), so stripping switches genuinely
  removes telemetry and accuracy decays with coverage, seed by seed.
"""

from __future__ import annotations

from .registry import ExperimentSpec, FigureSpec, register_experiment

register_experiment(
    ExperimentSpec(
        name="skew-degradation",
        sweep="clock-skew",
        summary=(
            "diagnosis accuracy falling off as victim clock skew "
            "crosses the ε-asynchrony bound"
        ),
        # the axis stops at α (10 ms): skew beyond one full epoch
        # breaks epoch arithmetic outright rather than degrading
        axes={"skew_ms": (0.0, 2.0, 5.0, 8.0, 10.0)},
        reps=5,
        figure=FigureSpec(
            x_axis="skew_ms",
            x_label="injected victim clock skew (ms)",
            title="Diagnosis accuracy vs clock skew",
            vline=5.0,
            vline_label="ε bound (pairwise skew = α)",
        ),
    )
)

register_experiment(
    ExperimentSpec(
        name="deploy-degradation",
        sweep="partial-deployment",
        summary=(
            "diagnosis accuracy decaying as partial deployment strips "
            "switch telemetry below spare coverage"
        ),
        axes={"deploy": (1.0, 0.9, 0.75, 0.5, 0.25)},
        reps=5,
        # the sweep pins deploy_spare="S3" so its own nightly grid
        # never strips the fault switch; the study unpins it — the
        # curve exists only when coverage genuinely thins
        base_knobs={"deploy_spare": ""},
        figure=FigureSpec(
            x_axis="deploy",
            x_label="fraction of switches running telemetry",
            title="Diagnosis accuracy vs deployment fraction",
        ),
    )
)
