"""Parameter-grid parsing and expansion for scale sweeps.

Grid syntax (the ``--grid`` CLI flag, repeatable)::

    --grid hosts=64,256,1024 --grid alpha_ms=5,10

Each flag names one *axis* and its comma-separated values; values are
coerced best-effort (bool, int, float, then string).  The sweep runs the
cartesian product of all axes, expanded in row-major order with the
last-listed axis varying fastest — point order (and therefore point
indices and seeds) is deterministic for a given grid expression.

Per-point seeds derive from ``(base_seed, point index)`` through CRC32,
so a point's seed is stable across runs, processes, and machines — the
property the "sweep point matches the single run with the same seed"
integration test relies on.
"""

from __future__ import annotations

import zlib
from itertools import product
from typing import Any


class GridError(Exception):
    """Raised for malformed grid expressions or unknown axes."""


def coerce_value(text: str) -> Any:
    """Best-effort value parsing: bool, int, float, then str."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_axis(text: str) -> tuple[str, list[Any]]:
    """One ``axis=v1,v2,...`` expression → (axis, values)."""
    axis, sep, values = text.partition("=")
    if not sep or not axis:
        raise GridError(f"--grid expects axis=v1,v2,..., got {text!r}")
    out = [coerce_value(v) for v in values.split(",") if v != ""]
    if not out:
        raise GridError(f"axis {axis!r} has no values in {text!r}")
    return axis, out


def parse_grid(exprs: list[str]) -> dict[str, list[Any]]:
    """Parse repeated ``--grid`` expressions into an ordered axis map."""
    grid: dict[str, list[Any]] = {}
    for expr in exprs:
        axis, values = parse_axis(expr)
        if axis in grid:
            raise GridError(f"axis {axis!r} given twice")
        grid[axis] = values
    return grid


def expand_grid(grid: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """Cartesian product of the axes, row-major, last axis fastest."""
    if not grid:
        return []
    axes = list(grid)
    return [dict(zip(axes, combo)) for combo in product(*(grid[a] for a in axes))]


def point_seed(base_seed: int, index: int) -> int:
    """Stable per-point seed: CRC32 of (base_seed, index)."""
    return zlib.crc32(f"{base_seed}:{index}".encode("ascii"))
