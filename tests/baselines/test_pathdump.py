"""Unit tests for the PathDump baseline and the Fig 12 comparison."""

import pytest

from repro import SwitchPointerDeployment
from repro.baselines.pathdump import (PathDumpAnalyzer,
                                      top_k_with_switchpointer)
from repro.core.epoch import EpochRange
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_linear


@pytest.fixture
def populated():
    """Dumbbell with 6 host pairs; 3 flows through the trunk."""
    net = build_linear(2, 6)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
    sizes = {0: 3, 1: 5, 2: 1}
    for i, n_pkts in sizes.items():
        for _ in range(n_pkts):
            net.hosts[f"h1_{i}"].send(
                make_udp(f"h1_{i}", f"h2_{i}", 10 + i, 9, 1000))
    net.run()
    return net, deploy


class TestPathDumpFanout:
    def test_contacts_every_server(self, populated):
        net, deploy = populated
        pd = PathDumpAnalyzer(deploy.host_agents)
        _, bd = pd.top_k_flows(3, switch="S1")
        per_server = pd.rpc.model.connection_init_s
        expected = len(net.hosts) * per_server
        assert bd.parts["connection_initiation"] == pytest.approx(expected)

    def test_top_k_correct_despite_no_directory(self, populated):
        net, deploy = populated
        pd = PathDumpAnalyzer(deploy.host_agents)
        top, _ = pd.top_k_flows(2, switch="S1")
        assert [s.flow.src for s in top] == ["h1_1", "h1_0"]

    def test_flow_size_distribution_merged(self, populated):
        net, deploy = populated
        pd = PathDumpAnalyzer(deploy.host_agents)
        dist, _ = pd.flow_size_distribution(switch="S1")
        sizes = sorted(sum(dist.values(), []))
        assert sizes == [1000, 3000, 5000]


class TestFig12Comparison:
    def test_same_answer_both_systems(self, populated):
        net, deploy = populated
        pd = PathDumpAnalyzer(deploy.host_agents)
        pd_top, _ = pd.top_k_flows(3, switch="S1")
        sp_top, _ = top_k_with_switchpointer(
            deploy.analyzer, 3, switch="S1", epochs=EpochRange(0, 1))
        assert [s.flow for s in sp_top] == [s.flow for s in pd_top]

    def test_switchpointer_contacts_fewer_servers(self, populated):
        """The crux of Fig 12: with few relevant servers SwitchPointer
        is much faster; it converges to PathDump only when every server
        is relevant."""
        net, deploy = populated
        pd = PathDumpAnalyzer(deploy.host_agents,
                              rpc=deploy.analyzer.rpc.__class__())
        _, pd_bd = pd.top_k_flows(3, switch="S1")
        _, sp_bd = top_k_with_switchpointer(
            deploy.analyzer, 3, switch="S1", epochs=EpochRange(0, 1))
        # 12 servers total, but only 3-4 hold relevant records
        assert sp_bd.total < pd_bd.total

    def test_equal_when_all_servers_relevant(self):
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        # every host receives (and sends) trunk traffic
        pairs = [("h1_0", "h2_0"), ("h2_0", "h1_0"),
                 ("h1_1", "h2_1"), ("h2_1", "h1_1")]
        for i, (src, dst) in enumerate(pairs):
            net.hosts[src].send(make_udp(src, dst, 20 + i, 9, 800))
        net.run()
        pd = PathDumpAnalyzer(deploy.host_agents)
        _, pd_bd = pd.top_k_flows(4, switch="S1")
        _, sp_bd = top_k_with_switchpointer(
            deploy.analyzer, 4, switch="S1", epochs=EpochRange(0, 1))
        pd_conn = pd_bd.parts["connection_initiation"]
        sp_conn = sp_bd.parts["connection_initiation"]
        assert sp_conn == pytest.approx(pd_conn)  # both contact all 4
