#!/usr/bin/env python3
"""Fabric-scale exercise: background workload + the §2.4 extended apps.

Runs a heavy-tailed synthetic workload over a leaf-spine fabric with
SwitchPointer deployed, then:

1. audits every recorded trajectory for path conformance,
2. injects a blackhole and localizes it from the pointer directory,
3. reports directory statistics (hosts per pointer — the §3 tradeoff).

Run:  python examples/datacenter_sweep.py
"""

from repro import SwitchPointerDeployment
from repro.analyzer import check_path_conformance, localize_packet_drops
from repro.core.epoch import EpochRange
from repro.simnet import (WorkloadGenerator, WorkloadSpec,
                          build_leaf_spine, make_udp)
from repro.simnet.packet import FlowKey, PROTO_UDP


def main() -> None:
    net = build_leaf_spine(n_leaves=3, n_spines=2, hosts_per_leaf=4,
                           rate_bps=10e9)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)

    spec = WorkloadSpec(arrival_rate_per_s=3000, duration_s=0.05,
                        mean_flow_bytes=50_000, flow_rate_bps=2e9,
                        seed=20260612)
    gen = WorkloadGenerator(net, spec)
    flows = gen.schedule()
    print(f"workload: {len(flows)} flows over {len(net.hosts)} hosts, "
          f"p50/p99 sizes {gen.size_percentiles((50, 99))}, "
          f"elephant (>=100 KB) byte share "
          f"{gen.elephant_byte_share(100_000):.0%}")
    net.run(until=0.2)

    # 1. conformance audit over every record in the fabric
    report = check_path_conformance(deploy.analyzer)
    print(f"\nconformance: {report.flows_checked} trajectories checked, "
          f"{len(report.violations)} violations "
          f"({report.breakdown.total * 1e3:.0f} ms)")

    # 2. blackhole injection + localization
    src, dst = "h0_0", "h2_1"
    probe_flow = FlowKey(src, dst, 1, 9, PROTO_UDP)
    net.hosts[src].send(make_udp(src, dst, 1, 9, 400))
    net.run(until=net.sim.now + 0.002)
    rec = deploy.host_agents[dst].store.get(probe_flow)
    path = rec.switch_path
    victim_spine = path[1]
    print(f"\ninjecting blackhole at {victim_spine} "
          f"(flow path: {path})")
    net.switches[victim_spine].clear_routes()
    fault_epoch = deploy.datapaths[path[0]].clock.epoch_of(net.sim.now)
    for _ in range(3):
        net.hosts[src].send(make_udp(src, dst, 1, 9, 400))
        net.run(until=net.sim.now + 0.012)
    last_epoch = deploy.datapaths[path[0]].clock.epoch_of(net.sim.now)
    loc = localize_packet_drops(deploy.analyzer, probe_flow, path,
                                EpochRange(fault_epoch + 1, last_epoch))
    print(f"localization: forwarding={loc.forwarding} "
          f"silent={loc.silent}")
    print(f"suspect hop: {loc.suspect_hop} "
          f"({loc.breakdown.total * 1e3:.0f} ms of pointer pulls)")

    # 3. directory statistics under the background workload
    print("\ndirectory precision (mean hosts per level-1 pointer):")
    for name, dp in sorted(deploy.datapaths.items()):
        sizes = []
        for e in range(last_epoch + 1):
            snap = dp.store.snapshot(1, e)
            if snap is not None:
                sizes.append(len(snap.slots()))
        mean = sum(sizes) / len(sizes) if sizes else 0.0
        print(f"  {name:8s} {mean:5.1f} of {len(net.hosts)} hosts")


if __name__ == "__main__":
    main()
