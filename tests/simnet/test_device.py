"""Unit tests for the switch dataplane device."""

import pytest

from repro.simnet.device import Switch, _flow_hash
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.packet import FlowKey, PROTO_UDP, make_udp
from repro.simnet.topology import Network


def tiny_net():
    """h_a -- S -- h_b, plus a second S->h_b parallel path via S2."""
    net = Network()
    s = net.add_switch("S")
    ha = net.add_host("ha")
    hb = net.add_host("hb")
    net.connect(ha, s)
    net.connect(hb, s)
    net.compute_routes()
    return net


class TestForwarding:
    def test_packet_forwarded_to_destination(self):
        net = tiny_net()
        got = []
        net.hosts["hb"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["ha"].send(make_udp("ha", "hb", 1, 9, 500))
        net.run()
        assert len(got) == 1
        assert net.switches["S"].forwarded == 1

    def test_no_route_drops_counted(self):
        net = tiny_net()
        sw = net.switches["S"]
        sw.inject(make_udp("ha", "nowhere", 1, 9, 500))
        assert sw.no_route_drops == 1
        assert sw.forwarded == 0

    def test_hop_recorded(self):
        net = tiny_net()
        caught = []
        net.hosts["hb"].sniffers.append(
            lambda h, p, t: caught.append(p.hops))
        net.hosts["ha"].send(make_udp("ha", "hb", 1, 9, 500))
        net.run()
        assert caught[0] == ["S"]

    def test_pipeline_hooks_called_with_interfaces(self):
        net = tiny_net()
        sw = net.switches["S"]
        seen = []
        sw.pipeline.append(
            lambda s, p, i, o: seen.append((s.name, o.peer_node.name)))
        net.hosts["ha"].send(make_udp("ha", "hb", 1, 9, 500))
        net.run()
        assert seen == [("S", "hb")]


class TestEcmp:
    def build_ecmp(self):
        """Two parallel S1->S2 links: two candidates for dst hosts."""
        net = Network()
        s1 = net.add_switch("S1")
        s2 = net.add_switch("S2")
        net.connect(s1, s2)
        net.connect(s1, s2)
        tx = net.add_host("tx")
        rx = net.add_host("rx")
        net.connect(tx, s1)
        net.connect(rx, s2)
        net.compute_routes()
        return net

    def test_flow_stays_on_one_path(self):
        net = self.build_ecmp()
        s1 = net.switches["S1"]
        chosen = []
        s1.pipeline.append(lambda s, p, i, o: chosen.append(id(o)))
        for _ in range(10):
            net.hosts["tx"].send(make_udp("tx", "rx", 5, 9, 500))
        net.run()
        assert len(set(chosen)) == 1  # per-flow consistency

    def test_different_flows_can_split(self):
        net = self.build_ecmp()
        s1 = net.switches["S1"]
        chosen = {}
        s1.pipeline.append(
            lambda s, p, i, o: chosen.setdefault(p.flow.sport, id(o)))
        for sport in range(40):
            net.hosts["tx"].send(make_udp("tx", "rx", sport, 9, 500))
        net.run()
        assert len(set(chosen.values())) == 2  # both links used

    def test_flow_hash_deterministic(self):
        key = FlowKey("a", "b", 1, 2, PROTO_UDP)
        assert _flow_hash(key) == _flow_hash(FlowKey("a", "b", 1, 2,
                                                     PROTO_UDP))

    def test_forwarding_override_wins(self):
        net = self.build_ecmp()
        s1 = net.switches["S1"]
        routes = s1.routes_for("rx")
        target = routes[1]
        s1.forwarding_override = lambda pkt, cands: target
        chosen = []
        s1.pipeline.append(lambda s, p, i, o: chosen.append(o))
        for sport in range(10):
            net.hosts["tx"].send(make_udp("tx", "rx", sport, 9, 500))
        net.run()
        assert all(o is target for o in chosen)

    def test_override_none_falls_back_to_ecmp(self):
        net = self.build_ecmp()
        s1 = net.switches["S1"]
        s1.forwarding_override = lambda pkt, cands: None
        got = []
        net.hosts["rx"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["tx"].send(make_udp("tx", "rx", 1, 9, 500))
        net.run()
        assert len(got) == 1


class TestRouteTable:
    def test_install_route_deduplicates(self):
        sim = Simulator()
        sw = Switch(sim, "S")
        peer = Host(sim, "h")
        link = Link(sim, sw, peer)
        iface = link.iface_of(sw)
        sw.attach(iface)
        sw.install_route("h", iface)
        sw.install_route("h", iface)
        assert sw.routes_for("h") == [iface]

    def test_attach_rejects_foreign_interface(self):
        sim = Simulator()
        sw1 = Switch(sim, "S1")
        sw2 = Switch(sim, "S2")
        h = Host(sim, "h")
        link = Link(sim, sw1, h)
        with pytest.raises(ValueError):
            sw2.attach(link.iface_of(sw1))

    def test_clear_routes(self):
        sim = Simulator()
        sw = Switch(sim, "S")
        h = Host(sim, "h")
        link = Link(sim, sw, h)
        sw.attach(link.iface_of(sw))
        sw.install_route("h", link.iface_of(sw))
        sw.clear_routes()
        assert sw.routes_for("h") == []
