"""Unit tests for links, interfaces, and the transmission model."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import make_udp
from repro.simnet.queues import DropTailFIFO


class Recorder:
    """Minimal Node: records (packet, time) arrivals."""

    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.got = []

    def receive(self, pkt, iface):
        self.got.append((pkt, self.sim.now))

    def attach(self, iface):
        pass


def make_pair(sim, rate_bps=1e9, prop=2e-6, **kw):
    a, b = Recorder("a", sim), Recorder("b", sim)
    link = Link(sim, a, b, rate_bps=rate_bps, propagation_delay=prop, **kw)
    return a, b, link


class TestTransmission:
    def test_delivery_latency_is_serialization_plus_propagation(self):
        sim = Simulator()
        a, b, link = make_pair(sim, rate_bps=1e9, prop=5e-6)
        pkt = make_udp("a", "b", 1, 2, 1250)  # 1250 B = 10 µs at 1 Gbps
        link.iface_a.send(pkt)
        sim.run()
        _, arrival = b.got[0]
        assert arrival == pytest.approx(10e-6 + 5e-6)

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        a, b, link = make_pair(sim, rate_bps=1e9, prop=0.0)
        for i in range(3):
            link.iface_a.send(make_udp("a", "b", i, 2, 1250))
        sim.run()
        times = [t for _, t in b.got]
        assert times == pytest.approx([10e-6, 20e-6, 30e-6])

    def test_full_duplex_directions_independent(self):
        sim = Simulator()
        a, b, link = make_pair(sim, rate_bps=1e9, prop=0.0)
        link.iface_a.send(make_udp("a", "b", 1, 2, 1250))
        link.iface_b.send(make_udp("b", "a", 2, 1, 1250))
        sim.run()
        assert len(a.got) == 1 and len(b.got) == 1
        assert a.got[0][1] == pytest.approx(10e-6)
        assert b.got[0][1] == pytest.approx(10e-6)

    def test_queue_overflow_drops_and_send_reports(self):
        sim = Simulator()
        a, b, link = make_pair(
            sim, queue_factory=lambda: DropTailFIFO(capacity_bytes=1500))
        assert link.iface_a.send(make_udp("a", "b", 1, 2, 1500))
        # transmitter grabbed the first packet; queue holds the second
        assert link.iface_a.send(make_udp("a", "b", 1, 2, 1500))
        assert not link.iface_a.send(make_udp("a", "b", 1, 2, 1500))
        sim.run()
        assert len(b.got) == 2

    def test_tx_counters(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        link.iface_a.send(make_udp("a", "b", 1, 2, 500))
        link.iface_a.send(make_udp("a", "b", 1, 2, 700))
        sim.run()
        assert link.iface_a.tx_packets == 2
        assert link.iface_a.tx_bytes == 1200

    def test_tx_taps_see_serialization_start(self):
        sim = Simulator()
        a, b, link = make_pair(sim, rate_bps=1e9, prop=0.0)
        taps = []
        link.iface_a.tx_taps.append(lambda pkt, t: taps.append((pkt, t)))
        p1 = make_udp("a", "b", 1, 2, 1250)
        p2 = make_udp("a", "b", 1, 2, 1250)
        link.iface_a.send(p1)
        link.iface_a.send(p2)
        sim.run()
        assert [p for p, _ in taps] == [p1, p2]
        assert taps[0][1] == pytest.approx(0.0)
        assert taps[1][1] == pytest.approx(10e-6)


class TestLinkWiring:
    def test_iface_of_and_peer_of(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        assert link.iface_of(a) is link.iface_a
        assert link.iface_of(b) is link.iface_b
        assert link.peer_of(a) is b

    def test_foreign_node_rejected(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        stranger = Recorder("x", sim)
        with pytest.raises(ValueError):
            link.iface_of(stranger)
        with pytest.raises(ValueError):
            link.peer_of(stranger)

    def test_invalid_parameters(self):
        sim = Simulator()
        a, b = Recorder("a", sim), Recorder("b", sim)
        with pytest.raises(ValueError):
            Link(sim, a, b, rate_bps=0)
        with pytest.raises(ValueError):
            Link(sim, a, b, propagation_delay=-1e-6)

    def test_link_ids_unique(self):
        sim = Simulator()
        _, _, l1 = make_pair(sim)
        _, _, l2 = make_pair(sim)
        assert l1.link_id != l2.link_id

    def test_interface_name(self):
        sim = Simulator()
        a, b, link = make_pair(sim)
        assert link.iface_a.name == "a->b"
        assert link.iface_b.name == "b->a"
