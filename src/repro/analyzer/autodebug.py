"""Automated debugging pipeline (§4.1.1's "real-time (potentially
automated) debugging of network problems").

The §5 walkthroughs have an operator in the loop; in a production
deployment alerts arrive continuously and must be triaged without one.
:class:`AutoDebugger` is that loop:

* **ingest** — plugs in as the trigger sink (in place of, or in front
  of, the raw analyzer queue);
* **dedup** — alerts for the same flow within a debounce window are one
  incident (a starving flow fires its trigger every refractory period);
* **dispatch** — picks the §5 application by alert kind and verdict:
  contention first; if culprits span multiple switches it upgrades the
  incident to red-lights; if the top culprit is itself mid-priority it
  runs the cascade walk;
* **report** — produces an :class:`Incident` with the verdict, the
  latency breakdown, and a rendered text summary for the operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hostd.triggers import VictimAlert
from ..simnet.packet import FlowKey
from .analyzer import Analyzer
from .apps import Verdict, diagnose_cascade, diagnose_contention


@dataclass
class Incident:
    """One triaged and diagnosed network event."""

    incident_id: int
    first_alert: VictimAlert
    alerts: list[VictimAlert] = field(default_factory=list)
    verdict: Optional[Verdict] = None
    escalated_to: Optional[str] = None   # "red-lights" | "cascade"

    @property
    def flow(self) -> FlowKey:
        return self.first_alert.flow

    def render(self) -> str:
        """Operator-facing text summary."""
        lines = [
            f"incident #{self.incident_id}: {self.first_alert.kind} on "
            f"{self.flow.pretty()} at {self.first_alert.time * 1e3:.1f} ms",
            f"  alerts folded in: {len(self.alerts)}",
        ]
        if self.verdict is not None:
            v = self.verdict
            lines.append(f"  verdict: {v.problem} "
                         f"({v.total_time_s * 1e3:.1f} ms to diagnose)")
            lines.append(f"  {v.narrative}")
            for c in v.culprits:
                lines.append(f"    culprit {c.flow.pretty()} at "
                             f"{c.switch} (prio {c.priority})")
        if self.escalated_to:
            lines.append(f"  escalated to: {self.escalated_to}")
        return "\n".join(lines)


class AutoDebugger:
    """Continuous alert triage on top of an :class:`Analyzer`."""

    def __init__(self, analyzer: Analyzer, *,
                 debounce_s: float = 0.020,
                 cascade_priorities: bool = True):
        self.analyzer = analyzer
        self.debounce_s = debounce_s
        self.cascade_priorities = cascade_priorities
        self.incidents: list[Incident] = []
        self._open: dict[FlowKey, Incident] = {}
        self._next_id = 1

    # -- ingest -----------------------------------------------------------

    def ingest(self, alert: VictimAlert) -> Incident:
        """Trigger-sink entry point: fold or open an incident."""
        self.analyzer.ingest_alert(alert)  # keep the raw queue too
        open_incident = self._open.get(alert.flow)
        if (open_incident is not None
                and alert.time - open_incident.alerts[-1].time
                <= self.debounce_s):
            open_incident.alerts.append(alert)
            return open_incident
        incident = Incident(incident_id=self._next_id,
                            first_alert=alert, alerts=[alert])
        self._next_id += 1
        self.incidents.append(incident)
        self._open[alert.flow] = incident
        return incident

    # -- dispatch -----------------------------------------------------------

    def diagnose_all(self) -> list[Incident]:
        """Diagnose every incident that does not yet have a verdict."""
        for incident in self.incidents:
            if incident.verdict is None:
                self._diagnose(incident)
        return self.incidents

    def _diagnose(self, incident: Incident) -> None:
        verdict = diagnose_contention(self.analyzer,
                                      incident.first_alert)
        incident.verdict = verdict
        culprit_switches = {c.switch for c in verdict.culprits}
        if len(culprit_switches) > 1:
            incident.escalated_to = "red-lights"
        if self.cascade_priorities and verdict.culprits:
            # §5.3: a prioritized culprit may itself have been delayed
            # by a still-higher class — walk its path; keep the cascade
            # verdict only if the chain actually extends
            if any(c.priority > 0 for c in verdict.culprits):
                cascade = diagnose_cascade(self.analyzer,
                                           incident.first_alert)
                if len(cascade.cascade_chain) > 2:
                    incident.verdict = cascade
                    incident.escalated_to = "cascade"

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        if not self.incidents:
            return "no incidents"
        return "\n\n".join(i.render() for i in self.incidents)
