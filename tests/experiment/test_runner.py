"""Resumability: an interrupted study resumes with completed runs
reused untouched and a final report byte-identical to an uninterrupted
one (the contract docs/EXPERIMENTS.md promises)."""

import json

import pytest

from repro.experiment import (
    EXPERIMENTS,
    EXECUTED,
    RESUMED,
    Experiment,
    ExperimentError,
    validate_experiment_report,
)

GRID = {"skew_ms": [0.0, 8.0]}


def make_experiment(reps=2):
    return Experiment(
        EXPERIMENTS.get("skew-degradation"), grid=dict(GRID), reps=reps
    )


class TestResume:
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        """Interrupt after K of N runs, re-invoke: completed run files
        are reused untouched and report.json matches an uninterrupted
        run byte for byte."""
        interrupted = tmp_path / "interrupted"
        straight = tmp_path / "straight"

        exp = make_experiment()
        assert exp.execute(interrupted, max_runs=2) is None
        assert not (interrupted / "report.json").exists()
        done = sorted((interrupted / "runs").glob("point*.json"))
        assert len(done) == 2
        fingerprints = {
            p.name: (p.stat().st_mtime_ns, p.read_bytes()) for p in done
        }

        events = []
        report = make_experiment().execute(
            interrupted, on_run=lambda run, event: events.append(event)
        )
        assert report is not None
        assert events.count(RESUMED) == 2
        assert events.count(EXECUTED) == 2
        for path in done:
            mtime, blob = fingerprints[path.name]
            assert path.stat().st_mtime_ns == mtime, "artifact rewritten"
            assert path.read_bytes() == blob

        make_experiment().execute(straight)
        assert (
            (interrupted / "report.json").read_bytes()
            == (straight / "report.json").read_bytes()
        )

    def test_completed_study_short_circuits(self, tmp_path):
        make_experiment().execute(tmp_path)
        events = []
        report = make_experiment().execute(
            tmp_path, on_run=lambda run, event: events.append(event)
        )
        assert report is not None
        assert set(events) == {RESUMED}
        assert validate_experiment_report(report.to_json()) == []

    def test_corrupt_run_file_is_rerun(self, tmp_path):
        exp = make_experiment()
        exp.execute(tmp_path, max_runs=1)
        (victim,) = (tmp_path / "runs").glob("point*.json")
        victim.write_text("{truncated", encoding="utf-8")
        report = make_experiment().execute(tmp_path)
        assert report is not None
        assert json.loads(victim.read_text(encoding="utf-8"))["result"]

    def test_foreign_artifact_fails_loudly(self, tmp_path):
        exp = make_experiment()
        exp.execute(tmp_path, max_runs=1)
        (victim,) = (tmp_path / "runs").glob("point*.json")
        doc = json.loads(victim.read_text(encoding="utf-8"))
        doc["seed"] += 1
        victim.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(ExperimentError, match="does not match"):
            make_experiment().execute(tmp_path)

    def test_changed_table_refuses_directory(self, tmp_path):
        make_experiment(reps=2).execute(tmp_path, max_runs=1)
        with pytest.raises(ExperimentError, match="different run table"):
            make_experiment(reps=3).execute(tmp_path)


class TestConstruction:
    def test_unknown_axis_named(self):
        with pytest.raises(ExperimentError, match="bogus"):
            Experiment(
                EXPERIMENTS.get("skew-degradation"), grid={"bogus": [1]}
            )

    def test_zero_reps_named(self):
        with pytest.raises(ExperimentError, match="reps must be >= 1"):
            make_experiment(reps=0)

    def test_knob_axis_collision_rejected(self):
        with pytest.raises(ExperimentError, match="override swept axis"):
            Experiment(
                EXPERIMENTS.get("skew-degradation"),
                grid=dict(GRID),
                extra_knobs={"skew_ms": 3.0},
            )

    def test_run_reproduces_as_single_scenario(self, tmp_path):
        """Any (point, rep) cell replays bit-for-bit as a single run
        from its recorded seed and knobs — the sweep contract, one
        layer up."""
        from repro.core.rng import seed_run
        from repro.scenarios import run_scenario

        exp = make_experiment()
        exp.execute(tmp_path)
        for path in sorted((tmp_path / "runs").glob("point*.json")):
            doc = json.loads(path.read_text(encoding="utf-8"))
            result = doc["result"]
            seed_run(doc["seed"])
            single = run_scenario("gray-failure", **result["knobs"])
            assert result["problems"] == [
                v.problem for v in single.verdicts
            ]
            # round-trip through JSON: artifacts store tuples as lists
            assert result["measurements"] == json.loads(
                json.dumps(single.measurements)
            )
