"""Fig 11 — pointer recycling period vs epoch duration.

Paper (k = 3): a level-h pointer set is reused after α(αʰ − 1) ms;
α = 10 gives 90 ms at level 1 and ~10³ ms at level 2 (log scale) —
small α recycles fast, pushing diagnosis to higher (coarser) levels.

We report the formula sweep for α ∈ {10, 20, 30} and *measure* the
reuse distance on a live store to confirm the formula.
"""

import pytest

from repro.core.pointer import HierarchicalPointerStore
from repro.core.sizing import recycling_period_ms

from benchmarks.reporting import emit

ALPHAS = [10, 20, 30]
LEVELS = [1, 2]


def measure_reuse_epochs(alpha: int, level: int) -> int:
    """Drive a live store epoch by epoch; return the epoch distance at
    which the set holding epoch 0's window is actually reused."""
    store = HierarchicalPointerStore(8, alpha=alpha, k=3)
    store.update(0, 0)
    target = store.snapshot(level, 0)
    assert target is not None
    e = 0
    while True:
        e += 1
        store.update(e, 1)
        if store.snapshot(level, 0) is None:
            # window-0's set was recycled by epoch e
            return e
        if e > alpha ** (level + 1) + alpha:
            raise AssertionError("set never recycled")


@pytest.mark.benchmark(group="fig11")
def test_fig11_recycling_period(benchmark):
    measured = benchmark.pedantic(
        lambda: {(a, h): measure_reuse_epochs(a, h)
                 for a in (4, 6) for h in LEVELS},
        rounds=1, iterations=1)

    lines = ["formula alpha*(alpha^h - 1) ms, k=3:",
             "  alpha_ms  level  period_ms"]
    for a in ALPHAS:
        for h in LEVELS:
            lines.append(f"  {a:7d}  {h:5d}  {recycling_period_ms(a, h):9.0f}")
    lines.append("")
    lines.append("live-store reuse distance (window start -> reuse, in "
                 "epochs; geometry predicts alpha^h):")
    for (a, h), epochs in measured.items():
        idle_ms = (epochs * a) - a ** h  # minus the window's own span
        lines.append(f"  alpha={a} level={h}: measured {epochs} epochs "
                     f"(= {epochs * a} ms start-to-reuse, "
                     f"{idle_ms} ms idle)")
    lines.append("(paper: alpha=10 -> 90 ms at level 1, ~900 ms at "
                 "level 2; the paper's closed form alpha*(alpha^h-1) "
                 "gives 990 at level 2 — its own prose rounds to 900, "
                 "matching the live geometry alpha^h*(alpha-1))")
    emit("fig11_recycling", lines)

    # paper anchor
    assert recycling_period_ms(10, 1) == 90
    # exponential growth in level, growth in alpha
    for a in ALPHAS:
        assert recycling_period_ms(a, 2) > 5 * recycling_period_ms(a, 1)
    periods = [recycling_period_ms(a, 1) for a in ALPHAS]
    assert periods == sorted(periods)
    # live geometry: a level-h window's set is reused exactly alpha^h
    # epochs after the window began
    for (a, h), epochs in measured.items():
        assert epochs == a ** h, (a, h, epochs)
        # and the level-1 idle gap equals the paper's alpha*(alpha-1)
        if h == 1:
            assert (epochs * a) - a == recycling_period_ms(a, 1)
