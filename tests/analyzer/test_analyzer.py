"""Unit tests for the analyzer's coordination primitives."""

import pytest

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.hostd.triggers import SwitchEpochTuple, VictimAlert
from repro.simnet.packet import FlowKey, PROTO_TCP, PROTO_UDP, make_udp
from repro.simnet.topology import build_linear


@pytest.fixture
def deployed():
    net = build_linear(3, 2)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)
    return net, deploy


def send(net, src, dst, sport=1, dport=9, at=0.0):
    net.sim.schedule_at(at, lambda: net.hosts[src].send(
        make_udp(src, dst, sport, dport, 500)))


class TestHostsFor:
    def test_pointer_decodes_to_destinations(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        send(net, "h1_1", "h2_0")
        net.run()
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert hosts == ["h2_0", "h3_0"]
        # S3 forwarded only the first flow
        assert deploy.analyzer.hosts_for("S3", EpochRange(0, 0)) == ["h3_0"]

    def test_empty_epoch_window(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        net.run()
        assert deploy.analyzer.hosts_for("S1", EpochRange(50, 60)) == []

    def test_offline_hosts_from_pushed_history(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        net.run()
        deploy.flush_all_tops()
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0),
                                          offline=True)
        assert "h3_0" in hosts


class TestPruning:
    def test_disjoint_segment_hosts_dropped(self, deployed):
        """Traffic S2->h2_x does not share the victim's S2->S3 segment,
        so h2_x is pruned from the victim's search radius at S2."""
        net, deploy = deployed
        send(net, "h1_0", "h3_0")            # victim path S1-S2-S3
        send(net, "h1_1", "h2_1", sport=5)   # crosses S2, exits to h2_1
        net.run()
        alert = VictimAlert(
            flow=FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP), host="h3_0",
            time=0.001, kind="throughput-drop",
            tuples=[SwitchEpochTuple(switch="S2",
                                     epochs=EpochRange(0, 0))])
        located, _ = deploy.analyzer.locate_relevant_hosts(alert,
                                                           prune=True)
        entry = located[0]
        assert "h3_0" in entry.hosts
        assert "h2_1" in entry.pruned

    def test_prune_disabled_keeps_all(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        send(net, "h1_1", "h2_1", sport=5)
        net.run()
        alert = VictimAlert(
            flow=FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP), host="h3_0",
            time=0.001, kind="throughput-drop",
            tuples=[SwitchEpochTuple(switch="S2",
                                     epochs=EpochRange(0, 0))])
        located, _ = deploy.analyzer.locate_relevant_hosts(alert,
                                                           prune=False)
        assert "h2_1" in located[0].hosts

    def test_shared_segment_hosts_kept(self, deployed):
        """A flow sharing the victim's S1->S2 link must stay in radius."""
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        send(net, "h1_1", "h2_0", sport=5)   # shares S1->S2 with victim
        net.run()
        alert = VictimAlert(
            flow=FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP), host="h3_0",
            time=0.001, kind="throughput-drop",
            tuples=[SwitchEpochTuple(switch="S1",
                                     epochs=EpochRange(0, 0))])
        located, _ = deploy.analyzer.locate_relevant_hosts(alert)
        assert "h2_0" in located[0].hosts


class TestConsultation:
    def test_consult_hosts_runs_queries(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        net.run()
        results, bd = deploy.analyzer.consult_hosts(
            ["h3_0"], lambda agent: agent.query.top_k_flows(5))
        assert results["h3_0"].payload[0].flow.dst == "h3_0"
        assert bd.total > 0

    def test_unknown_hosts_skipped(self, deployed):
        net, deploy = deployed
        results, _ = deploy.analyzer.consult_hosts(
            ["ghost"], lambda agent: agent.query.top_k_flows(5))
        assert results == {}

    def test_contending_flows_excludes_victim_and_acks(self, deployed):
        net, deploy = deployed
        send(net, "h1_0", "h3_0")
        send(net, "h1_1", "h2_0", sport=5)
        net.run()
        victim_key = FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP)
        alert = VictimAlert(flow=victim_key, host="h3_0", time=0.001,
                            kind="x", tuples=[])
        found, _ = deploy.analyzer.contending_flows(
            ["h3_0", "h2_0"], "S1", EpochRange(0, 0), alert)
        flows = {s.flow for _, s in found}
        assert victim_key not in flows
        assert FlowKey("h1_1", "h2_0", 5, 9, PROTO_UDP) in flows


class TestDirectoryLifecycle:
    def test_rebuild_directory(self, deployed):
        net, deploy = deployed
        new_hosts = net.host_names + ["newcomer"]
        directory = deploy.analyzer.rebuild_directory(new_hosts)
        assert directory.n == len(new_hosts)
        assert directory.host_of(directory.slot_of("newcomer")) == \
            "newcomer"

    def test_alert_ingestion(self, deployed):
        _, deploy = deployed
        alert = VictimAlert(flow=FlowKey("a", "b", 1, 2, PROTO_TCP),
                            host="b", time=0.0, kind="x", tuples=[])
        deploy.analyzer.ingest_alert(alert)
        assert deploy.analyzer.alerts == [alert]
