"""Pin the switch-subgraph shortest-path decomposition to the full BFS.

``Network.shortest_paths`` decomposes host→host queries through a
cached switch-only subgraph whenever every host is single-homed to a
switch (see docs/PERFORMANCE.md).  These tests assert the decomposed
answers — including sort order, memoized re-queries and the
NetworkXNoPath failure mode — are bit-identical to the brute-force
full-graph enumeration on every builder fabric, and that fabrics
violating the precondition fall back to the brute-force path.
"""
from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.simnet.topology import (
    Network,
    build_fat_tree,
    build_leaf_spine,
    build_linear,
    build_star,
)


def _brute(net: Network, src: str, dst: str) -> list[list[str]]:
    return sorted(nx.all_shortest_paths(net.graph(), src, dst))


def _query(fn, src: str, dst: str):
    try:
        return fn(src, dst)
    except nx.NetworkXException as exc:
        return ("raises", type(exc).__name__)


def _assert_equivalent(net: Network) -> None:
    nodes = sorted(net.hosts) + sorted(net.switches)
    for src, dst in itertools.product(nodes, repeat=2):
        want = _query(lambda a, b: _brute(net, a, b), src, dst)
        got = _query(net.shortest_paths, src, dst)
        assert got == want, (src, dst)
        # the memoized re-query must agree even after callers mutate
        # the previously returned lists
        if isinstance(got, list) and got:
            got[0].append("mutated-by-caller")
        assert _query(net.shortest_paths, src, dst) == want, (src, dst)


@pytest.mark.parametrize("build", [
    pytest.param(lambda: build_leaf_spine(4, 2, 3), id="leaf_spine"),
    pytest.param(lambda: build_fat_tree(4), id="fat_tree"),
    pytest.param(lambda: build_star(6), id="star"),
    pytest.param(lambda: build_linear(4, hosts_per_switch=2), id="linear"),
])
def test_builder_fabrics_match_brute_force(build) -> None:
    net = build()
    _assert_equivalent(net)
    assert net._hosts_single_homed  # the fast path actually engaged


def test_host_to_host_wire_falls_back_to_full_graph() -> None:
    net = Network()
    for name in ("h0", "h1", "h2", "h3"):
        net.add_host(name)
    net.add_switch("s0")
    net.connect(net.node("h0"), net.node("s0"))
    net.connect(net.node("h1"), net.node("s0"))
    net.connect(net.node("h2"), net.node("h3"))  # host-host wire
    _assert_equivalent(net)
    net.graph()
    assert not net._hosts_single_homed


def test_topology_edits_reset_the_path_memo() -> None:
    net = build_leaf_spine(4, 2, 2)
    before = net.shortest_paths("h0_0", "h1_0")
    net.add_host("hx")
    assert net._spaths == {} and net._graph is None
    net.connect(net.node("hx"), net.node("leaf0"))
    assert net.shortest_paths("h0_0", "h1_0") == before
    assert net.shortest_paths("hx", "h1_0") == [
        [src, *mid, "h1_0"]
        for src, mid in [("hx", p[1:-1]) for p in net.shortest_paths(
            "h0_0", "h1_0")]
    ]
