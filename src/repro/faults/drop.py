"""Silent-drop (gray failure) fault: a switch blackholes chosen flows.

Extracted from the gray-failure scenario's inline injector.  The drop
happens *before* any pipeline hook runs (see
:class:`repro.simnet.device.Switch`), so the switch's own pointer never
names the victims during the outage — exactly the spatial-cut signature
:func:`repro.analyzer.netdebug.localize_packet_drops` keys on.
"""

from __future__ import annotations

from typing import Any, Optional

from ..simnet.device import Switch
from ..simnet.packet import FlowKey, Packet
from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault


@register_fault
class SilentDropFault(Fault):
    """Silently discard a deterministic slice of flows at one switch.

    ``flows`` names the victim :class:`FlowKey` set (programmatic
    callers pass it directly); an empty set means *every* flow through
    the switch vanishes — a full blackhole.  Composition-safe: an
    existing ``drop_filter`` on the switch (another fault, or scenario
    wiring) is chained, not clobbered, and restored intact on heal.
    """

    spec = FaultSpec(
        name="silent-drop",
        summary="a switch silently discards a chosen slice of flows "
        "(gray failure / blackhole)",
        degrades="data plane *and* evidence: dropped packets record no "
        "hop, so the faulty switch's pointer goes silent for the victims",
        diagnosed_by="diagnose_gray_failure / localize_packet_drops",
        params={
            "switch": FaultParam("", "the gray-failing switch"),
            "flows": FaultParam(
                (), "FlowKeys to drop (empty = every flow through the switch)"
            ),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        self._saved: Any = None
        self._installed: Any = None
        #: consulted by the installed closure: heal flips it off, so an
        #: overlapping fault stacked *on top* of this one keeps its own
        #: filter working while this fault's slice stops dropping —
        #: heals compose in any order, not just LIFO
        self._active = False

    def _switch(self, ctx: FaultContext) -> Switch:
        name = self.p["switch"]
        try:
            return ctx.network.switches[name]
        except KeyError:
            raise FaultError(
                f"silent-drop: unknown switch {name!r}; known: "
                f"{', '.join(ctx.network.switch_names)}"
            ) from None

    def schedule(self, ctx: FaultContext) -> None:
        self._switch(ctx)  # validate eagerly, not at fire time
        super().schedule(ctx)

    def inject(self, ctx: FaultContext) -> None:
        sw = self._switch(ctx)
        dropped = frozenset(
            FlowKey(*f) if isinstance(f, tuple) else f for f in self.p["flows"]
        )
        previous = sw.drop_filter
        self._saved = previous
        self._active = True

        def drop(
            pkt: Packet,
            _prev: Any = previous,
            _victims: Any = dropped,
            _fault: Any = self,
        ) -> bool:
            if _fault._active and (not _victims or pkt.flow in _victims):
                return True
            return bool(_prev is not None and _prev(pkt))

        self._installed = drop
        sw.drop_filter = drop

    def heal(self, ctx: FaultContext) -> None:
        sw = self._switch(ctx)
        self._active = False
        # pop our closure only when it is still the top of the stack;
        # if another fault chained on top of us, the deactivated
        # closure stays in the chain as a transparent pass-through
        if sw.drop_filter is self._installed:
            sw.drop_filter = self._saved

    def victim_flows(self) -> tuple[Optional[FlowKey], ...]:
        return tuple(self.p["flows"])
