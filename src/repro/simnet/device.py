"""Switch dataplane device.

A :class:`Switch` owns a set of interfaces (one per attached link), a
destination-based forwarding table, and a pipeline of hooks that run on
every forwarded packet.  The SwitchPointer switch component
(:mod:`repro.switchd.datapath`) attaches itself as such a hook — the
simulator core stays monitoring-agnostic.

ECMP is supported by storing several candidate egress interfaces per
destination and hashing the flow key, which keeps a flow on one path
(per-flow consistent hashing, as datacenter switches do).

The ``forwarding_override`` hook reproduces the §5.4 load-imbalance
scenario: the paper configures a switch to "malfunction" and split flows
across egress interfaces by flow size.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import Simulator
from .link import Interface
from .packet import FlowKey, Packet

#: Pipeline hook signature: (switch, packet, in_iface, out_iface).
PipelineHook = Callable[["Switch", Packet, Optional[Interface], Interface],
                        None]
#: Override signature: (packet, candidate egress interfaces) -> chosen one
#: (or None to fall through to the default ECMP choice).
ForwardingOverride = Callable[[Packet, list[Interface]],
                              Optional[Interface]]
#: ECMP hash hook: flow key -> hash value used to pick among candidates.
#: Installing a degenerate hash (one blind to some header fields)
#: reproduces hash-polarization faults.
EcmpHash = Callable[[FlowKey], int]
#: Gray-failure hook: packet -> True to silently discard it *before* any
#: telemetry or forwarding happens (the switch never admits the packet
#: existed — the defining property of a silent/gray drop).
DropFilter = Callable[[Packet], bool]


_flow_hash_cache: dict[FlowKey, int] = {}


def _flow_hash(key: FlowKey) -> int:
    """Deterministic per-flow hash for ECMP (stable across runs).

    FNV-1a with a murmur-style finalizer: plain FNV's low bit is linear
    in the input's parity, which makes ``hash % 2`` blind to symmetric
    field changes (e.g. sport and dport varied together) — a real ECMP
    hash must not have that artifact.

    Pure function of the key, memoized process-wide: the character loop
    runs once per flow instead of once per packet per hop.
    """
    h = _flow_hash_cache.get(key)
    if h is not None:
        return h
    h = 2166136261
    for part in key:
        for ch in str(part):
            h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    _flow_hash_cache[key] = h
    return h


class Switch:
    """Output-queued switch with a static destination-based FIB."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []
        # dst host name -> candidate egress interfaces (ECMP set).  The
        # value is a list, or a shared immutable tuple installed by the
        # bulk route computation (many destinations behind one leaf
        # share one candidate set); install_route copies-on-write.
        self._fib: dict[str, list[Interface]] = {}
        self.pipeline: list[PipelineHook] = []
        self.forwarding_override: Optional[ForwardingOverride] = None
        self.ecmp_hash: Optional[EcmpHash] = None
        self.drop_filter: Optional[DropFilter] = None
        self.rx_packets = 0
        self.forwarded = 0
        self.no_route_drops = 0
        self.gray_drops = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, iface: Interface) -> None:
        """Register an interface created by a Link for this switch."""
        if iface.owner is not self:
            raise ValueError("interface is not owned by this switch")
        self.interfaces.append(iface)

    def install_route(self, dst: str, iface: Interface) -> None:
        """Add ``iface`` to the ECMP candidate set for ``dst``."""
        cur = self._fib.get(dst)
        if cur is None:
            self._fib[dst] = [iface]
            return
        if isinstance(cur, tuple):
            # shared bulk-installed candidate set: copy before editing
            cur = self._fib[dst] = list(cur)
        if iface not in cur:
            cur.append(iface)

    def set_routes(self, dst: str, ifaces) -> None:
        """Replace the whole candidate set for ``dst`` (bulk install).

        ``ifaces`` may be a tuple shared across destinations; it is
        stored as-is and copied on the first :meth:`install_route`.
        """
        self._fib[dst] = ifaces

    def clear_routes(self) -> None:
        self._fib.clear()

    def routes_for(self, dst: str) -> list[Interface]:
        return list(self._fib.get(dst, []))

    @property
    def port_count(self) -> int:
        return len(self.interfaces)

    # -- dataplane -----------------------------------------------------------

    def receive(self, pkt: Packet, iface: Interface) -> None:
        self.rx_packets += 1
        self.forward(pkt, in_iface=iface)

    def inject(self, pkt: Packet) -> None:
        """Feed a locally originated packet into the pipeline (tests)."""
        self.forward(pkt, in_iface=None)

    def forward(self, pkt: Packet, in_iface: Optional[Interface]) -> None:
        if self.drop_filter is not None and self.drop_filter(pkt):
            # Silent drop: no hop recorded, no pipeline hooks, no
            # forwarding — upstream telemetry still names this switch's
            # predecessors, which is what drop localization exploits.
            self.gray_drops += 1
            return
        candidates = self._fib.get(pkt.dst)
        if not candidates:
            self.no_route_drops += 1
            return
        out = None
        if self.forwarding_override is not None:
            out = self.forwarding_override(pkt, list(candidates))
        if out is None:
            hash_fn = self.ecmp_hash if self.ecmp_hash is not None \
                else _flow_hash
            out = candidates[hash_fn(pkt.flow) % len(candidates)]
        pkt.record_hop(self.name)
        for hook in self.pipeline:
            hook(self, pkt, in_iface, out)
        self.forwarded += 1
        out.send(pkt)

    def __repr__(self) -> str:
        return f"Switch({self.name}, ports={self.port_count})"
