"""Columnar ingest-path benchmark (the array-backed store's reason to
exist).

Builds the incast-scale fabric shape at hosts=4096 (64 leaves x 16
spines x 64 hosts/leaf), prepares 2000 pinned incast flows to one
victim host, and replays 100k tagged packets through the full hostd
ingest boundary — telemetry decode + record-store fold — two ways:

* the object-based reference: per-packet ``TelemetryDecoder.on_packet``
  into a :class:`FlowRecordStore` under ``begin_batch``/``end_batch``;
* the columnar fast path: the fused ``TelemetryDecoder.flush_batch``
  (memoized decode + per-flow grouping in one loop) into a
  :class:`ColumnarRecordStore` via ``apply_groups`` — the exact
  boundary :meth:`HostAgent.flush_ingest` uses.

Asserts the >=5x ingest-throughput speedup the columnar backend is
gated on, and that both stores end bit-identical (same spill-format
JSON for every row, in the same order).  Emits
``ingest_records_per_s`` for the committed baseline
(``benchmarks/baselines/columnar_ingest.json``)."""

import random
import time

import pytest

from repro.core.epoch import EpochClock, EpochRangeEstimator
from repro.core.headers import VlanDoubleTag
from repro.hostd.columnar import ColumnarRecordStore
from repro.hostd.decoder import TelemetryDecoder
from repro.hostd.records import FlowRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP, Packet
from repro.simnet.topology import build_leaf_spine
from repro.switchd.cherrypick import CherryPickPlanner

from benchmarks.reporting import emit

# the incast-scale sweep's hosts=4096 fabric shape
N_LEAVES, N_SPINES, PER_LEAF = 64, 16, 64
N_FLOWS = 2000
N_PACKETS = 100_000
BATCH = 2048
ALPHA_MS = 10
ROUNDS = 2


def prepare():
    """Fabric, pinned incast flows, and the pre-tagged packet trace."""
    net = build_leaf_spine(N_LEAVES, N_SPINES, PER_LEAF)
    planner = CherryPickPlanner(net)
    clock = EpochClock(ALPHA_MS)
    est = EpochRangeEstimator(alpha_ms=ALPHA_MS, epsilon_ms=10,
                              delta_ms=20)
    hosts = sorted(net.hosts)
    victim = hosts[0]
    srcs = [h for h in hosts if h != victim]
    flows, tags = [], []
    for i in range(N_FLOWS):
        src = srcs[i % len(srcs)]
        path = net.shortest_paths(src, victim)[0]
        for a, b in zip(path, path[1:]):
            if a not in net.switches:
                continue  # pinning hop must be a switch
            link = net.link_between(a, b)
            if planner.pins_path(src, victim, link):
                flows.append(FlowKey(src, victim, 1000 + i, 80,
                                     PROTO_UDP))
                tags.append(link.vlan_id)
                break
    assert len(flows) == N_FLOWS
    rng = random.Random(1)
    pkts = []
    for j in range(N_PACKETS):
        i = min(int(rng.expovariate(1 / 80)), N_FLOWS - 1)
        t = j * 1e-5
        pkts.append((Packet(flow=flows[i], size=1000, priority=0,
                            telemetry=VlanDoubleTag.embed(
                                tags[i], clock.epoch_of(t))), t))
    return clock, planner, est, pkts


def bench_reference(clock, planner, est, pkts):
    """Per-packet decode into the object-based flat store."""
    store = FlowRecordStore("bench-host")
    dec = TelemetryDecoder(store, clock, planner, est)
    start = time.perf_counter()
    for k in range(0, N_PACKETS, BATCH):
        store.begin_batch()
        for pkt, t in pkts[k:k + BATCH]:
            dec.on_packet(None, pkt, t)
        store.end_batch()
    elapsed = time.perf_counter() - start
    assert dec.decoded == N_PACKETS and store.ingested == N_PACKETS
    return elapsed, store


def bench_columnar(clock, planner, est, pkts):
    """Fused decode+group + vectorized fold into the columnar store."""
    store = ColumnarRecordStore("bench-host")
    dec = TelemetryDecoder(store, clock, planner, est)
    start = time.perf_counter()
    for k in range(0, N_PACKETS, BATCH):
        dec.flush_batch([(None, pkt, t) for pkt, t in pkts[k:k + BATCH]])
    elapsed = time.perf_counter() - start
    assert dec.decoded == N_PACKETS and store.ingested == N_PACKETS
    return elapsed, store


def run_bench():
    clock, planner, est, pkts = prepare()
    flat_s, flat = min(
        (bench_reference(clock, planner, est, pkts)
         for _ in range(ROUNDS)), key=lambda x: x[0])
    col_s, col = min(
        (bench_columnar(clock, planner, est, pkts)
         for _ in range(ROUNDS)), key=lambda x: x[0])
    return flat_s, flat, col_s, col


@pytest.mark.benchmark(group="columnar_ingest")
def test_columnar_ingest_speedup(benchmark):
    flat_s, flat, col_s, col = benchmark.pedantic(run_bench, rounds=1,
                                                  iterations=1)
    flat_rps = N_PACKETS / flat_s
    col_rps = N_PACKETS / col_s
    speedup = flat_s / col_s
    emit("columnar_ingest", [
        f"hosts: {N_LEAVES * PER_LEAF}   flows: {N_FLOWS}   "
        f"packets: {N_PACKETS}   ingest batch: {BATCH}",
        f"flat (object reference): {flat_s * 1e3:8.1f} ms   "
        f"{flat_rps:10,.0f} rec/s",
        f"columnar (fast path):    {col_s * 1e3:8.1f} ms   "
        f"{col_rps:10,.0f} rec/s",
        f"speedup: {speedup:5.2f}x",
        "(flush_batch: memoized VLAN decode fused with per-flow "
        "grouping; apply_groups: numpy scatter + batched indexes)"],
        data={
            "hosts": N_LEAVES * PER_LEAF,
            "flows": N_FLOWS,
            "packets": N_PACKETS,
            "batch": BATCH,
            "flat_s": round(flat_s, 4),
            "columnar_s": round(col_s, 4),
            "flat_records_per_s": round(flat_rps),
            "ingest_records_per_s": round(col_rps),
            "speedup": round(speedup, 2),
        })

    # both stores must end bit-identical, row for row (the exponential
    # flow draw concentrates the trace on the heaviest few hundred of
    # the 2000 prepared flows, as an incast's tail does)
    assert len(flat) == len(col) > 0
    assert [r.to_json() for r in flat] == [r.to_json() for r in col]
    assert speedup >= 5, speedup
