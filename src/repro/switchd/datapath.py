"""The per-packet SwitchPointer pipeline at a switch (§4.1).

For every forwarded packet the datapath must:

1. compute the end-host slot: one MPHF evaluation of the destination
   (§4.1.2 — a single hash operation regardless of k);
2. set that slot's bit in one pointer set per level of the hierarchical
   store (the bits "in parallel" in hardware; a tight k-iteration loop
   here);
3. embed telemetry: in VLAN mode, push the (linkID, epochID) double tag
   at the path-pinning hop (CherryPick); in INT mode, append a
   (switchID, epochID) record at every hop.

:class:`SwitchPointerDatapath` attaches to a
:class:`repro.simnet.device.Switch` as a pipeline hook, so the simulator
core never knows monitoring exists.  The same object exposes
:meth:`process_slot_update` as a bare fast path for the Fig 9 datapath
throughput benchmark.
"""

from __future__ import annotations

from typing import Optional

from ..core.epoch import EpochClock
from ..core.headers import IntStack, VlanDoubleTag, VLAN_ID_MODULUS
from ..core.mphf import MinimalPerfectHash
from ..core.pointer import HierarchicalPointerStore
from ..simnet.device import Switch
from ..simnet.link import Interface
from ..simnet.packet import Packet
from .cherrypick import CherryPickPlanner

MODE_VLAN = "vlan"
MODE_INT = "int"
MODE_NONE = "none"  # pointer updates only; no header embedding
_MODES = (MODE_VLAN, MODE_INT, MODE_NONE)


class SwitchPointerDatapath:
    """SwitchPointer processing bound to one switch.

    Parameters
    ----------
    switch:
        The simulated switch to instrument.
    clock:
        This switch's local epoch clock (its skew models asynchrony).
    mphf:
        The analyzer-distributed minimal perfect hash over end-hosts.
    store:
        This switch's hierarchical pointer store.
    planner:
        CherryPick decisions (VLAN mode only).
    mode:
        ``"vlan"`` (commodity double tagging), ``"int"`` (clean slate),
        or ``"none"`` (directory only).
    """

    def __init__(self, switch: Switch, clock: EpochClock,
                 mphf: MinimalPerfectHash,
                 store: HierarchicalPointerStore, *,
                 planner: Optional[CherryPickPlanner] = None,
                 mode: str = MODE_VLAN):
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}")
        if mode == MODE_VLAN and planner is None:
            raise ValueError("VLAN mode requires a CherryPickPlanner")
        self.switch = switch
        self.clock = clock
        self.mphf = mphf
        self.store = store
        self.planner = planner
        self.mode = mode
        self.packets_processed = 0
        self.tags_embedded = 0
        #: dst -> slot: the MPHF is static (rebuilt only offline, §4.1.2),
        #: so one evaluation per destination suffices — the cache stands
        #: in for the O(1) hash a hardware pipeline computes for free.
        self._slot_cache: dict[str, int] = {}
        #: slots already recorded in the current epoch: a duplicate
        #: (epoch, slot) update is a pure bit-set no-op (no rotation can
        #: trigger within one epoch), so it is skipped with only the
        #: store's update counter advanced.  Reset whenever the epoch
        #: moves — forward or backward (clock-skew faults) — so every
        #: rotation the per-packet path would perform still happens.
        self._dedup_epoch: Optional[int] = None
        self._dedup_slots: set[int] = set()
        switch.pipeline.append(self._hook)

    # -- pipeline hook --------------------------------------------------------

    def _hook(self, sw: Switch, pkt: Packet, in_iface: Optional[Interface],
              out_iface: Interface) -> None:
        now = sw.sim.now
        epoch = self.clock.epoch_of(now)
        self.process_slot_update(pkt.dst, epoch)
        if self.mode == MODE_VLAN:
            self._embed_vlan(pkt, out_iface, epoch)
        elif self.mode == MODE_INT:
            self._embed_int(pkt, epoch)

    def process_slot_update(self, dst: str, epoch: int) -> int:
        """The §4.1.2 fast path: one hash, then k bit-sets.

        Returns the slot for callers that want to assert on it; the Fig 9
        benchmark drives this method directly.  The slot comes from the
        per-destination cache (one MPHF evaluation per dst ever) and a
        repeated (epoch, slot) pair skips the redundant bit-sets while
        advancing the store's update counter exactly as the uncached
        path would.
        """
        self.packets_processed += 1
        cache = self._slot_cache
        slot = cache.get(dst)
        if slot is None:
            slot = cache[dst] = self.mphf.lookup(dst)
        if epoch != self._dedup_epoch:
            self._dedup_epoch = epoch
            seen = self._dedup_slots
            seen.clear()
            seen.add(slot)
            self.store.update(epoch, slot)
        elif slot in self._dedup_slots:
            self.store.updates += 1
        else:
            self._dedup_slots.add(slot)
            self.store.update(epoch, slot)
        return slot

    # -- telemetry embedding ---------------------------------------------------

    def _embed_vlan(self, pkt: Packet, out_iface: Interface,
                    epoch: int) -> None:
        if pkt.telemetry is not None:
            return  # a previous hop already pinned the path
        assert self.planner is not None
        link = out_iface.link
        # the tag carries the network-local wire id; links never wired
        # through a Network (or beyond 12 bits) cannot be tagged
        if link.vlan_id is None or link.vlan_id >= VLAN_ID_MODULUS:
            return
        if self.planner.pins_path(pkt.src, pkt.dst, link):
            pkt.telemetry = VlanDoubleTag.embed(link.vlan_id, epoch)
            self.tags_embedded += 1

    def _embed_int(self, pkt: Packet, epoch: int) -> None:
        if pkt.telemetry is None:
            pkt.telemetry = IntStack()
        elif not isinstance(pkt.telemetry, IntStack):
            raise TypeError(
                "mixed telemetry modes on one path: found "
                f"{type(pkt.telemetry).__name__} in INT mode")
        pkt.telemetry.push(self.switch.name, epoch)
        self.tags_embedded += 1


class VanillaDatapath:
    """Forwarding-only baseline for Fig 9 ("vanilla OVS").

    Performs the same per-packet bookkeeping a plain software switch
    would (a flow-table dictionary probe) with no SwitchPointer work.
    """

    def __init__(self, dests: list[str]):
        self._flow_table = {d: i % 48 for i, d in enumerate(dests)}
        self.packets_processed = 0

    def process(self, dst: str) -> int:
        self.packets_processed += 1
        return self._flow_table[dst]
