"""Host-side query engine (§4.2.2, §5.4, §6.2).

The analyzer sends hosts queries over the agent RPC; these are the query
implementations PathDump/SwitchPointer hosts execute locally:

* :meth:`QueryEngine.top_k_flows` — the Fig 12 "top-100 flows at a
  switch" query.
* :meth:`QueryEngine.flow_size_distribution` — the §5.4 load-imbalance
  query, grouped by the egress interface (next hop after the suspect
  switch).
* :meth:`QueryEngine.flows_matching` — the generic (switchID, epochID)
  header filter of §3.
* :meth:`QueryEngine.flow_details` — telemetry for one flow (priority,
  per-epoch bytes) used during contention diagnosis (§5.1).

Switch-filtered queries are served from the record store's per-switch
inverted index, so their cost is proportional to the records *at the
switch*, not the records on the host; ``top_k_flows`` selects with a
bounded heap instead of a full sort.  Every method reports
``records_scanned`` — the number of records the index actually
examined — so the RPC latency model charges execution cost for the work
done, not for the table size.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey
from .records import FlowRecord, FlowRecordStore


@dataclass(slots=True)
class QueryResult:
    """Query payload + the execution-cost accounting the RPC model uses.

    ``as_of_seq`` is the store's ingest watermark (its ``ingested``
    count) when the query ran — the value an incremental reader passes
    back as ``since_seq`` on its next delta query to receive only what
    changed in between.
    """

    payload: object
    records_scanned: int = 0
    records_returned: int = 0
    as_of_seq: int = 0


class FlowSummary:
    """Wire form of one flow's telemetry sent back to the analyzer.

    Scalars are snapshotted when the summary is built; the container
    fields (``switch_path``, ``epoch_ranges``, ``bytes_by_epoch``) of a
    summary built from a record via :meth:`of` are materialized lazily,
    so queries that return many summaries but whose consumers read only
    flow/bytes (top-k merge, contention filtering) never pay for
    copying per-switch telemetry they do not look at.  All three
    containers snapshot *together* on the first access to any of them,
    so a summary is always internally consistent; when querying a store
    that is still ingesting, touch the summary before the next ingest
    to pin its contents.
    """

    __slots__ = ("flow", "bytes", "packets", "priority",
                 "_switch_path", "_epoch_ranges", "_bytes_by_epoch", "_rec")

    def __init__(self, flow: FlowKey, bytes: int, packets: int,
                 priority: int,
                 switch_path: Optional[list[str]] = None,
                 epoch_ranges: Optional[dict[str,
                                             tuple[int, int]]] = None,
                 bytes_by_epoch: Optional[dict[int, int]] = None):
        self.flow = flow
        self.bytes = bytes
        self.packets = packets
        self.priority = priority
        self._switch_path = switch_path if switch_path is not None else []
        self._epoch_ranges = epoch_ranges if epoch_ranges is not None else {}
        self._bytes_by_epoch = (bytes_by_epoch
                                if bytes_by_epoch is not None else {})
        self._rec: Optional[FlowRecord] = None

    @classmethod
    def of(cls, rec: FlowRecord) -> "FlowSummary":
        # hot path: one summary per returned record on every query —
        # set slots directly instead of going through __init__
        summary = cls.__new__(cls)
        summary.flow = rec.flow
        summary.bytes = rec.bytes
        summary.packets = rec.packets
        summary.priority = rec.priority
        summary._switch_path = None
        summary._epoch_ranges = None
        summary._bytes_by_epoch = None
        summary._rec = rec
        return summary

    def _materialize(self) -> None:
        rec = self._rec
        self._switch_path = list(rec.switch_path)
        self._epoch_ranges = {sw: (r.lo, r.hi)
                              for sw, r in rec.epoch_ranges.items()}
        self._bytes_by_epoch = dict(rec.bytes_by_epoch)

    @property
    def switch_path(self) -> list[str]:
        if self._switch_path is None:
            self._materialize()
        return self._switch_path

    @property
    def epoch_ranges(self) -> dict[str, tuple[int, int]]:
        if self._epoch_ranges is None:
            self._materialize()
        return self._epoch_ranges

    @property
    def bytes_by_epoch(self) -> dict[int, int]:
        if self._bytes_by_epoch is None:
            self._materialize()
        return self._bytes_by_epoch

    def epochs_at(self, switch: str) -> Optional[EpochRange]:
        pair = self.epoch_ranges.get(switch)
        return EpochRange(*pair) if pair else None

    def _astuple(self) -> tuple:
        return (self.flow, self.bytes, self.packets, self.priority,
                self.switch_path, self.epoch_ranges, self.bytes_by_epoch)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowSummary):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (f"FlowSummary(flow={self.flow!r}, bytes={self.bytes}, "
                f"packets={self.packets}, priority={self.priority}, "
                f"switch_path={self.switch_path!r}, "
                f"epoch_ranges={self.epoch_ranges!r}, "
                f"bytes_by_epoch={self.bytes_by_epoch!r})")


def _topk_key(rec: FlowRecord) -> tuple:
    # nsmallest on (-bytes, flow) == "largest bytes, flow tiebreak",
    # bit-for-bit the order full-sorting produced
    return (-rec.bytes, rec.flow)


class QueryEngine:
    """Executes analyzer queries against one host's record store.

    ``before_query``, when set, runs at the start of every query — the
    host agent uses it to flush its batched-ingest buffer so queries
    always observe every packet sniffed so far.
    """

    def __init__(self, store: FlowRecordStore,
                 before_query: Optional[Callable[[], None]] = None):
        self.store = store
        self.before_query = before_query
        self.queries_served = 0

    def _begin(self) -> None:
        self.queries_served += 1
        if self.before_query is not None:
            self.before_query()

    def _scan(self, switch: Optional[str],
              epochs: Optional[EpochRange]) -> tuple[list[FlowRecord], int]:
        if switch is None:
            return list(self.store), len(self.store)
        return self.store.scan_through(switch, epochs)

    def top_k_flows(self, k: int, *, switch: Optional[str] = None,
                    epochs: Optional[EpochRange] = None) -> QueryResult:
        """The ``k`` largest flows (by bytes) seen through ``switch``.

        Selection runs on a size-``k`` heap (O(m log k)) and only the
        winners are summarized — the losers are never materialized.  On
        a sharded store the per-shard winners are merged directly
        (:meth:`ShardedRecordStore.topk_through`), skipping the global
        creation-order merge a plain scan would pay for.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        self._begin()
        topk = getattr(self.store, "topk_through", None)
        if switch is not None and topk is not None:
            top, scanned = topk(k, _topk_key, switch, epochs)
        else:
            matches, scanned = self._scan(switch, epochs)
            top = heapq.nsmallest(k, matches, key=_topk_key)
        payload = [FlowSummary.of(r) for r in top]
        return QueryResult(payload=payload, records_scanned=scanned,
                           records_returned=len(payload))

    def flow_size_distribution(self, *, switch: str,
                               epochs: Optional[EpochRange] = None
                               ) -> QueryResult:
        """Flow sizes grouped by the next hop after ``switch``.

        The next hop identifies the egress interface the suspect switch
        used, which is exactly what the §5.4 imbalance diagnosis
        compares across interfaces.
        """
        self._begin()
        matches, scanned = self._scan(switch, epochs)
        dist: dict[str, list[int]] = {}
        for rec in matches:
            nxt = self._next_hop_after(rec, switch)
            dist.setdefault(nxt, []).append(rec.bytes)
        return QueryResult(payload=dist, records_scanned=scanned,
                           records_returned=len(matches))

    def _next_hop_after(self, rec: FlowRecord, switch: str) -> str:
        path = rec.switch_path
        if switch in path:
            idx = path.index(switch)
            if idx + 1 < len(path):
                return path[idx + 1]
        return rec.flow.dst  # switch was the last hop: egress to the host

    def all_flows(self) -> QueryResult:
        """Every record on this host (path-conformance sweeps)."""
        self._begin()
        payload = [FlowSummary.of(r) for r in self.store]
        return QueryResult(payload=payload,
                           records_scanned=len(self.store),
                           records_returned=len(payload))

    def flows_matching(self, switch: str,
                       epochs: Optional[EpochRange] = None, *,
                       since_seq: Optional[int] = None) -> QueryResult:
        """All flows whose headers match the (switchID, epochID) filter.

        With ``since_seq`` this is the incremental-analyzer delta
        query: only records updated after that watermark come back, and
        the result's ``as_of_seq`` is the watermark to resume from.
        Summaries are materialized eagerly here — a delta reader merges
        them while the store keeps ingesting, so lazily-snapshotted
        containers would observe later state than the watermark claims.
        """
        self._begin()
        matches, scanned = self.store.scan_through(
            switch, epochs, since_seq=since_seq)
        payload = []
        for rec in matches:
            summary = FlowSummary.of(rec)
            if since_seq is not None:
                summary._materialize()
            payload.append(summary)
        return QueryResult(payload=payload, records_scanned=scanned,
                           records_returned=len(payload),
                           as_of_seq=self.store.ingested)

    def flow_details(self, flow: FlowKey) -> QueryResult:
        """Telemetry for one flow (None payload when unknown here)."""
        self._begin()
        rec = self.store.get(flow)
        payload = FlowSummary.of(rec) if rec else None
        return QueryResult(payload=payload, records_scanned=1,
                           records_returned=1 if rec else 0)
