"""Failure injection and long-horizon edge cases.

The paper's robustness arguments, made executable:

* §4.1.2: "temporary failures of end-hosts do not impact the
  correctness since the bits corresponding to those end-hosts will
  simply remain unused."
* §4.1.3: the epochID travels as 12 bits; long-running systems wrap
  every 4096 epochs and the decoder must unwrap correctly.
* §4.1.1: "misconfiguration of k and α values may result in longer
  diagnosis time ... but does not result in correctness violation."
* Loss on the victim's own path must not corrupt the telemetry of
  packets that did arrive.
"""

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.simnet.engine import Simulator
from repro.simnet.packet import make_udp
from repro.simnet.queues import DropTailFIFO
from repro.simnet.topology import Network, build_linear


class TestHostFailures:
    def test_dead_host_bits_simply_unused(self):
        """Traffic to a dead host still updates pointers; nothing else
        breaks, and live hosts decode normally."""
        net = build_linear(2, 3)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        # 'kill' h2_1: it receives but its agent is gone
        dead = net.hosts["h2_1"]
        dead.sniffers.clear()
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.hosts["h1_1"].send(make_udp("h1_1", "h2_1", 2, 9, 400))
        net.run()
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        # the directory still names both (switch-side view is intact)
        assert hosts == ["h2_0", "h2_1"]
        # consulting hosts skips nothing fatal: the dead host just has
        # no records
        results, _ = deploy.analyzer.consult_hosts(
            hosts, lambda agent: agent.query.all_flows())
        assert len(results["h2_0"].payload) == 1
        assert results["h2_1"].payload == []

    def test_unknown_destination_does_not_poison_pointer(self):
        """A destination outside the MPHF key set maps to *some* slot;
        queries for real hosts remain sound (no crash, no missing
        entries)."""
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        s1 = net.switches["S1"]
        # route for a ghost host via S2's side, then traffic to it
        iface = net.link_between("S1", "S2").iface_of(s1)
        s1.install_route("ghost", iface)
        net.switches["S2"].install_route(
            "ghost", net.link_between("h2_0", "S2").iface_of(
                net.switches["S2"]))
        net.hosts["h1_0"].send(make_udp("h1_0", "ghost", 1, 9, 400))
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 10, 400))
        net.run()
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert "h2_0" in hosts  # the legit destination is never lost


class TestEpochWraparound:
    def test_vlan_epoch_tag_wraps_and_unwraps(self):
        """Run with the clock started past 4096 epochs (~41 s at
        α=10 ms): the 12-bit tag wraps; decode must still recover the
        absolute epoch."""
        start = 4100 * 0.010 + 0.0012  # epoch 4100 (tag 4100-4096=4)
        sim = Simulator(start_time=start)
        net = Network(sim)
        s1 = net.add_switch("S1")
        a, b = net.add_host("a"), net.add_host("b")
        net.connect(a, s1)
        net.connect(b, s1)
        net.compute_routes()
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        a.send(make_udp("a", "b", 1, 9, 400))
        net.run()
        rec = next(iter(deploy.host_agents["b"].store))
        rng = rec.epochs_at("S1")
        assert 4100 in rng          # absolute epoch recovered
        # and the pointer is queryable at the absolute epoch
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(4100, 4100))
        assert hosts == ["b"]


class TestMisconfiguration:
    def test_tiny_alpha_still_correct_just_slower(self):
        """α too small recycles pointers fast (the §4.1.1 warning) —
        recent windows stay correct, old ones fall back to offline."""
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=2, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        # later traffic in two consecutive epochs reuses both level-1
        # sets, evicting epoch 0 (lazy rotation keeps sets until reuse)
        for t in (0.050, 0.052):
            net.sim.schedule_at(t, lambda: net.hosts["h1_1"].send(
                make_udp("h1_1", "h2_1", 2, 9, 400)))
        net.run()
        deploy.flush_all_tops()
        # live epoch-0 window (recycled long ago at alpha=2ms, level 1
        # spans 2 ms, retention 2*2=4ms... actually alpha sets of 1
        # epoch = 4 ms) is gone:
        live = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert live == []
        # the offline path still answers, coarser:
        offline = deploy.analyzer.hosts_for("S1", EpochRange(0, 0),
                                            offline=True)
        assert "h2_0" in offline

    def test_k1_deployment_functions(self):
        """Degenerate single-level hierarchy: push-only, still sound."""
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=1,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.run()
        deploy.flush_all_tops()
        offline = deploy.analyzer.hosts_for("S1", EpochRange(0, 0),
                                            offline=True)
        assert offline == ["h2_0"]


class TestLossyPath:
    def test_drops_do_not_corrupt_surviving_telemetry(self):
        """With a starved 1-packet queue many packets drop; every packet
        that *does* arrive decodes to the true path and a covering
        epoch range."""
        def qf():
            return DropTailFIFO(capacity_bytes=3000)
        net = build_linear(3, 1, queue_factory=qf)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        for i in range(200):
            net.sim.schedule_at(i * 1e-5, lambda: net.hosts["h1_0"].send(
                make_udp("h1_0", "h3_0", 1, 9, 1400)))
        net.run()
        agent = deploy.host_agents["h3_0"]
        rec = next(iter(agent.store))
        assert rec.switch_path == ["S1", "S2", "S3"]
        assert agent.decoder.undecodable == 0
        # some drops must actually have happened for this test to bite
        # (with the shallow queues they occur at the sender's NIC)
        dropped = sum(iface.queue.stats.dropped
                      for link in net.links
                      for iface in (link.iface_a, link.iface_b))
        assert dropped > 0
