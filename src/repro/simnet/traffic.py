"""Traffic generators for the paper's workloads.

* :class:`UdpCbrSource` — constant-bit-rate UDP, the building block of
  every "burst" in §2 (each burst flow sends at line rate for ~1 ms).
* :func:`schedule_burst_batches` — the Fig 2 pattern: five batches of
  high-priority UDP bursts, 15 ms apart, with 1/2/4/8/16 flows.
* :class:`TcpBulkTransfer` — a sized TCP transfer (the 2 MB C-E flow of
  the cascades scenario).
* :class:`TcpTimedFlow` — a TCP flow that runs for a fixed duration
  (the 100 ms victim flow of Fig 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .engine import Simulator
from .host import Host
from .packet import (DEFAULT_MTU, HEADER_BYTES, PRIO_HIGH, PRIO_LOW,
                     PROTO_UDP, FlowKey, Packet)
from .tcp import TcpReceiver, TcpSender, open_tcp_flow


class UdpSink:
    """Bind a UDP port and count arrivals (optionally forwarding them)."""

    def __init__(self, host: Host, port: int,
                 on_packet: Optional[Callable[[Packet, float],
                                              None]] = None):
        self.host = host
        self.port = port
        self.packets = 0
        self.bytes = 0
        self._on_packet = on_packet
        host.bind(PROTO_UDP, port, self._handle)

    def _handle(self, pkt: Packet, now: float) -> None:
        self.packets += 1
        self.bytes += pkt.size
        if self._on_packet is not None:
            self._on_packet(pkt, now)


class UdpCbrSource:
    """Constant-bit-rate UDP source.

    Emits ``packet_size``-byte datagrams at ``rate_bps`` from ``start``
    for ``duration`` seconds.  Rate is enforced by inter-packet spacing
    (``packet_size*8/rate_bps``), so a source at link rate saturates the
    path exactly.
    """

    def __init__(self, sim: Simulator, host: Host, dst: str, *,
                 sport: int, dport: int, rate_bps: float,
                 packet_size: int = DEFAULT_MTU,
                 priority: int = PRIO_HIGH,
                 start: float = 0.0, duration: float = 0.001):
        if rate_bps <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        self.sim = sim
        self.host = host
        self.flow = FlowKey(host.name, dst, sport, dport, PROTO_UDP)
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.priority = priority
        self.start_time = start
        self.end_time = start + duration
        self.packets_sent = 0
        self.bytes_sent = 0
        self._payload = max(0, packet_size - HEADER_BYTES)
        sim.call_at(max(start, sim.now), self._emit)

    @property
    def interval(self) -> float:
        return self.packet_size * 8 / self.rate_bps

    def _emit(self, _arg: object = None) -> None:
        if self.sim.now >= self.end_time:
            return
        # direct construction with the cached FlowKey/payload — this is
        # make_udp minus the per-packet 5-tuple rebuild
        pkt = Packet(flow=self.flow, size=self.packet_size,
                     priority=self.priority, payload_bytes=self._payload)
        self.host.send(pkt)
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.sim.call_after(self.interval, self._emit)


@dataclass
class BurstBatchPlan:
    """One Fig 2 batch: ``n_flows`` UDP flows bursting together."""

    start: float
    n_flows: int
    duration: float = 0.001
    sources: list[UdpCbrSource] = field(default_factory=list)


def schedule_burst_batches(sim: Simulator, senders: list[Host],
                           receivers: list[str], *, flow_counts: list[int],
                           first_start: float, gap: float = 0.015,
                           burst_duration: float = 0.001,
                           rate_bps: float = 1e9,
                           packet_size: int = DEFAULT_MTU,
                           priority: int = PRIO_HIGH,
                           base_port: int = 7000) -> list[BurstBatchPlan]:
    """Create the Fig 2 burst pattern.

    Batch ``i`` starts at ``first_start + i*gap`` with ``flow_counts[i]``
    flows; flow ``j`` of every batch goes ``senders[j] -> receivers[j]``
    (distinct source-destination pairs, as in the paper).
    """
    needed = max(flow_counts)
    if len(senders) < needed or len(receivers) < needed:
        raise ValueError(
            f"need {needed} sender/receiver pairs, have "
            f"{len(senders)}/{len(receivers)}")
    plans = []
    for i, n_flows in enumerate(flow_counts):
        start = first_start + i * gap
        plan = BurstBatchPlan(start=start, n_flows=n_flows,
                              duration=burst_duration)
        for j in range(n_flows):
            src = UdpCbrSource(
                sim, senders[j], receivers[j],
                sport=base_port + i, dport=base_port + i,
                rate_bps=rate_bps, packet_size=packet_size,
                priority=priority, start=start, duration=burst_duration)
            plan.sources.append(src)
        plans.append(plan)
    return plans


class TcpBulkTransfer:
    """A sized TCP transfer between two hosts (e.g. the 2 MB C-E flow)."""

    def __init__(self, sim: Simulator, src: Host, dst: Host, *,
                 nbytes: int, sport: int, dport: int,
                 priority: int = PRIO_LOW, start: float = 0.0,
                 min_rto: float = 0.010,
                 on_payload: Optional[Callable[[Packet, float],
                                               None]] = None):
        self.sender: TcpSender
        self.receiver: TcpReceiver
        self.sender, self.receiver = open_tcp_flow(
            sim, src, dst, sport=sport, dport=dport, total_bytes=nbytes,
            priority=priority, min_rto=min_rto, on_payload=on_payload)
        self.sender.start(delay=start)

    @property
    def completed_at(self) -> Optional[float]:
        return self.sender.completed_at


class TcpTimedFlow:
    """A TCP flow that sends for a fixed wall-clock duration.

    Matches the Fig 2 victim: "a low-priority TCP flow ... that lasts for
    100 ms".
    """

    def __init__(self, sim: Simulator, src: Host, dst: Host, *,
                 duration: float, sport: int, dport: int,
                 priority: int = PRIO_LOW, start: float = 0.0,
                 min_rto: float = 0.010,
                 on_payload: Optional[Callable[[Packet, float],
                                               None]] = None):
        self.sender, self.receiver = open_tcp_flow(
            sim, src, dst, sport=sport, dport=dport, total_bytes=None,
            priority=priority, min_rto=min_rto, on_payload=on_payload)
        self.sender.start(delay=start)
        sim.schedule_at(start + duration, self.sender.stop)
