"""Clock-skew fault: spread per-device epoch offsets across the fleet.

The paper's asynchrony model (§4.2.1) only assumes pairwise clock skew
bounded by ε.  This fault *stresses* that assumption: every targeted
device's :class:`~repro.core.epoch.EpochClock` gets a deterministic
offset in ``[-skew_ms, +skew_ms]`` (so pairwise skew reaches
``2·skew_ms``), applied through the live ``set_skew`` hook — pointer
stores, decoders, and triggers all see the shifted epoch numbering
immediately.  Within ε the epoch-range extrapolation absorbs it;
beyond ε, diagnosis accuracy is allowed to degrade, and the sweep
``skew_ms=`` axis measures by how much.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator

from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault

_TARGETS = ("hosts", "switches", "all")


def skew_for(name: str, skew_ms: float) -> float:
    """Deterministic per-device offset in seconds, from the name alone.

    CRC32 of the device name mapped to ``[-skew_ms, +skew_ms]`` — stable
    across runs and processes, so a sweep point's skew assignment is
    reproducible from its knobs with no extra recorded state.
    """
    u = zlib.crc32(name.encode()) / 0xFFFFFFFF
    return (2.0 * u - 1.0) * skew_ms / 1e3


@register_fault
class ClockSkewFault(Fault):
    """Offset every targeted device clock by a name-derived amount."""

    spec = FaultSpec(
        name="clock-skew",
        summary="per-device epoch-clock offsets up to ±skew_ms "
        "(stresses the ε-bounded asynchrony assumption)",
        degrades="time correlation: epoch numbering shifts per device, "
        "misaligning pointers, records, and silence windows",
        diagnosed_by="(none — a stressor; sweeps measure accuracy vs skew)",
        params={
            "skew_ms": FaultParam(0.0, "max |offset| per device (ms)"),
            "targets": FaultParam("all", "which clocks: hosts, switches, or all"),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        if self.p["targets"] not in _TARGETS:
            raise FaultError(
                f"clock-skew: targets must be one of {_TARGETS}, "
                f"got {self.p['targets']!r}"
            )
        #: (clock object, delta applied) pairs.  Heal *subtracts* the
        #: delta instead of restoring an absolute offset, so overlapping
        #: skew faults unwind correctly in any heal order; the clock
        #: object is held directly because a concurrent
        #: partial-deployment fault may remove the device from the
        #: deployment's membership between inject and heal
        self._applied: list = []

    def _clocks(self, ctx: FaultContext) -> Iterator[tuple[str, Any]]:
        deploy = ctx.require_deployment(self)
        which = self.p["targets"]
        if which in ("switches", "all"):
            for name, dp in deploy.datapaths.items():
                yield name, dp.clock
        if which in ("hosts", "all"):
            for name, agent in deploy.host_agents.items():
                yield name, agent.clock

    def inject(self, ctx: FaultContext) -> None:
        skew_ms = self.p["skew_ms"]
        for name, clock in self._clocks(ctx):
            delta = skew_for(name, skew_ms)
            self._applied.append((clock, delta))
            clock.set_skew(clock.skew_s + delta)

    def heal(self, ctx: FaultContext) -> None:
        for clock, delta in self._applied:
            clock.set_skew(clock.skew_s - delta)
        self._applied.clear()
