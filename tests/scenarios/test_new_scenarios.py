"""Diagnosis-correctness tests for the four extended fault scenarios.

Each test asserts the analyzer reaches the *right* conclusion — the
drop localized to the injected switch, the polarization pinned on the
overloaded egress, the flap pinned on the churned link — not merely
that some verdict exists.
"""

import pytest

from repro.analyzer.apps import diagnose_gray_failure
from repro.scenarios import (GrayFailureScenario, IncastScenario,
                             LinkFlapScenario, PolarizationScenario,
                             run_scenario)


class TestIncast:
    @pytest.fixture(scope="class")
    def result(self):
        return IncastScenario(n_senders=6, duration=0.030,
                              burst_start=0.010).execute()

    def test_classified_as_incast(self, result):
        v = result.verdict("incast")
        assert v is not None, [x.problem for x in result.verdicts]

    def test_convergence_switch_named(self, result):
        v = result.verdict("incast")
        assert v.suspect == "leaf0"  # the receiver's leaf, not the source's

    def test_all_senders_identified_as_culprits(self, result):
        v = result.verdict("incast")
        victim_dst = v.victim.dst
        fan_in_flows = {c.flow for c in v.culprits
                        if c.flow.dst == victim_dst}
        assert len(fan_in_flows) == 6

    def test_collapse_is_real(self, result):
        # the victim actually lost its downlink during the burst
        assert result.measurements["downlink_queue_drops"] > 0
        assert result.measurements["alerts"] >= 1


class TestGrayFailure:
    @pytest.fixture(scope="class")
    def result(self):
        return GrayFailureScenario(n_flows=4).execute()

    def test_localized_to_injected_switch(self, result):
        assert result.verdicts, "no verdicts"
        for v in result.verdicts:
            assert v.problem == "gray-failure"
            assert v.suspect == "S3"

    def test_one_verdict_per_affected_flow(self, result):
        assert len(result.verdicts) == len(result.payload.affected) == 2

    def test_drops_are_silent(self, result):
        stats = result.switch_stats["S3"]
        assert stats.gray_drops > 0
        assert stats.no_route_drops == 0

    def test_healthy_flows_not_localized(self, result):
        analyzer = result.deployment.analyzer
        for flow in result.payload.healthy:
            v = diagnose_gray_failure(
                analyzer, flow,
                silence_epochs=result.payload.silence_epochs)
            assert v.suspect is None, f"{flow} wrongly localized"

    def test_other_fault_switch_knob(self):
        res = run_scenario("gray-failure", n_flows=2, fault_switch="S2")
        assert res.verdicts[0].suspect == "S2"


class TestPolarization:
    @pytest.fixture(scope="class")
    def result(self):
        return PolarizationScenario(n_flows=8).execute()

    def test_flagged_as_polarized(self, result):
        v = result.verdict("ecmp-polarization")
        assert v is not None and v.imbalanced

    def test_overloaded_egress_named(self, result):
        v = result.verdict("ecmp-polarization")
        bytes_by_spine = result.measurements["spine_tx_bytes"]
        overloaded = max(bytes_by_spine, key=bytes_by_spine.get)
        assert v.suspect == overloaded
        # and the other spine really is idle
        idle = min(bytes_by_spine, key=bytes_by_spine.get)
        assert bytes_by_spine[idle] == 0

    def test_path_nonconformance_corroborates(self, result):
        # flows whose healthy hash pointed at the other spine are
        # off-policy under the polarized hash: half of them, exactly
        v = result.verdict("ecmp-polarization")
        expected_other = sum(
            1 for spine in result.payload.expected_spine.values()
            if spine != v.suspect)
        assert result.measurements["off_policy_flows"] == expected_other
        assert expected_other == 4  # build pins a 4/4 healthy split

    def test_healthy_control_not_flagged(self):
        res = run_scenario("polarization", n_flows=8, polarized=False)
        v = res.verdict("ecmp-polarization")
        assert v is not None and not v.imbalanced
        assert v.suspect is None
        assert res.measurements["off_policy_flows"] == 0


class TestLinkFlap:
    @pytest.fixture(scope="class")
    def result(self):
        return LinkFlapScenario(n_flows=8).execute()

    def test_flap_localized_to_injected_link(self, result):
        v = result.verdict("link-flap")
        assert v is not None
        assert v.suspect == "S1-SPA"

    def test_churn_happened(self, result):
        assert result.measurements["flaps"] >= 2
        assert result.measurements["down_drops"] > 0

    def test_retransmit_cascade_observed(self, result):
        assert result.measurements["tcp_timeouts"] >= 1

    def test_stats_attribute_outage_losses_to_s1(self, result):
        # packets die at S1's egress into the dead link
        assert result.switch_stats["S1"].link_down_drops > 0
