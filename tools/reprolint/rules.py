"""The rule catalogue: every registered reprolint invariant.

Each rule mirrors one contract the runtime enforces late (or cannot
enforce at all) and fails it at lint time instead, in the spirit of
pushing checks to where the evidence lives:

* determinism — ``no-wall-clock``, ``no-global-rng``: simulated time
  and seeded RNG streams are the reproducibility spine;
* registry conformance — ``knob-declaration``, ``fault-protocol``,
  ``registry-coverage``: the decorator registries only police what
  gets *registered*, not what a module forgot to declare or import;
* schema/typing drift — ``report-schema-drift``, ``typed-defs``: the
  sweep-report validator and the mypy typed-core must match the code
  that feeds them.

Rules are pure AST passes over the :class:`~tools.reprolint.model.Project`
— nothing under check is imported, so they run identically on the real
tree and on the violating fixture trees the unit tests commit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from . import Rule, RuleSpec, Violation, register_rule
from .model import Module, Project

# ---------------------------------------------------------------------------
# scopes shared by several rules
# ---------------------------------------------------------------------------

#: Everything reprolint polices lives here.
SRC = "src/repro"

#: Packages where wall-clock reads are banned outright (no pragma):
#: their only clock is the simulator's.
SIMULATED_TIME_CORE = (
    f"{SRC}/simnet",
    f"{SRC}/faults",
    f"{SRC}/switchd",
    f"{SRC}/hostd",
)

#: The typed-core subset mypy checks strictly in CI; the ``typed-defs``
#: rule enforces the same annotation completeness without needing mypy
#: installed.  Keep in lockstep with the static-analysis CI job.
TYPED_CORE = (
    f"{SRC}/sweep",
    f"{SRC}/faults",
    f"{SRC}/analyzer",
    f"{SRC}/directory",
    f"{SRC}/scenarios/base.py",
    f"{SRC}/simnet/workload.py",
    f"{SRC}/hostd/columnar.py",
    f"{SRC}/hostd/backends.py",
)

#: Registry packages whose ``__init__.py`` must import every
#: registering module (rule ``registry-coverage``).
REGISTRY_PACKAGES = (
    f"{SRC}/scenarios",
    f"{SRC}/faults",
    f"{SRC}/sweep",
    f"{SRC}/experiment",
    f"{SRC}/hostd",
    f"{SRC}/directory",
)


# ---------------------------------------------------------------------------
# small AST helpers
# ---------------------------------------------------------------------------


def _callee_name(call: ast.Call) -> Optional[str]:
    """The bare name a call is made through (``Spec(...)``, ``m.Spec(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _base_names(node: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _decorator_names(node: ast.ClassDef) -> set[str]:
    out = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, ast.Attribute):
            out.add(target.attr)
    return out


def _str_kwarg(call: ast.Call, name: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return None


def _kwarg(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt for stmt in node.body if isinstance(stmt, ast.FunctionDef)
    }


@dataclass
class ClassInfo:
    """One class definition, as seen by the AST (no imports resolved)."""

    module: Module
    node: ast.ClassDef
    bases: tuple[str, ...]


def _class_map(project: Project, *prefixes: str) -> dict[str, ClassInfo]:
    classes: dict[str, ClassInfo] = {}
    for module in project.under(*prefixes):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = ClassInfo(
                    module=module, node=node, bases=_base_names(node)
                )
    return classes


def _reaches(classes: dict[str, ClassInfo], name: str, target: str) -> bool:
    """Does ``name`` transitively subclass ``target`` (by base names)?"""
    seen = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        info = classes.get(current)
        if info is None:
            continue
        for base in info.bases:
            if base == target:
                return True
            frontier.append(base)
    return False


def _ancestry(
    classes: dict[str, ClassInfo], name: str, stop: str
) -> Iterator[ClassInfo]:
    """``name`` and its in-project ancestors, excluding ``stop``'s class."""
    seen = set()
    frontier = [name]
    while frontier:
        current = frontier.pop()
        if current in seen or current == stop:
            continue
        seen.add(current)
        info = classes.get(current)
        if info is None:
            continue
        yield info
        frontier.extend(info.bases)


def _self_attr_name(node: ast.expr, self_name: str) -> Optional[str]:
    """``self.<attr>`` -> attr (for the method's actual self name)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# R1: no-wall-clock
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class NoWallClock(Rule):
    """Simulated components must consume simulated time only."""

    spec = RuleSpec(
        name="no-wall-clock",
        summary="wall-clock reads (time.time, datetime.now, "
        "perf_counter, ...) are banned in simulated components",
        rationale="The epoch design assumes ε-bounded *simulated* "
        "asynchrony: one stray wall-clock read in simnet/faults/"
        "switchd/hostd couples results to host load and breaks "
        "bit-identical replay of a recorded seed.",
        scope="src/repro/ — strict (no pragma) in simnet/, faults/, "
        "switchd/, hostd/; elsewhere a declared measurement site may "
        "carry the pragma",
        pragma="wall-clock",
        fix="Use the simulator clock (network.sim.now / EpochClock); "
        "for genuine wall-clock *measurements* in sweep/scenario "
        "runners, annotate the site with the pragma.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.under(SRC):
            strict = any(
                module.rel.startswith(p + "/") or module.rel == p
                for p in SIMULATED_TIME_CORE
            )
            for call, stmt in module.calls_with_statements():
                name = module.qualified_call(call)
                if name not in _WALL_CLOCK_CALLS:
                    continue
                if strict:
                    yield self.violation(
                        module,
                        call.lineno,
                        f"{name}() in a simulated-time package — use "
                        f"the simulator clock (allow[wall-clock] is "
                        f"not honored here)",
                    )
                elif not module.allows(call, "wall-clock", stmt=stmt):
                    yield self.violation(
                        module,
                        call.lineno,
                        f"{name}() without a '# reprolint: "
                        f"allow[wall-clock]' pragma — simulated "
                        f"behaviour must not read the host clock",
                    )


# ---------------------------------------------------------------------------
# R2: no-global-rng
# ---------------------------------------------------------------------------

_RNG_CLASSES = {"Random", "SystemRandom"}


@register_rule
class NoGlobalRng(Rule):
    """All randomness flows through seeded streams, never module state."""

    spec = RuleSpec(
        name="no-global-rng",
        summary="calls through the module-level random (random.seed, "
        "random.sample, ...) are banned; use a seeded stream",
        rationale="The interpreter-global RNG is shared, reseedable "
        "state: any library call can advance it and silently change "
        "a recorded sweep point's replay.  Seeded random.Random "
        "instances — repro.core.rng.run_stream(), workload._stream() "
        "— keep every draw attributable to a recorded seed.",
        scope="src/repro/",
        pragma=None,
        fix="Draw from repro.core.rng.run_stream() for ambient "
        "randomness, or give the component its own seeded "
        "random.Random when it owns a seed knob.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.under(SRC):
            for call, _stmt in module.calls_with_statements():
                name = module.qualified_call(call)
                if name is None or not name.startswith("random."):
                    continue
                fn = name.removeprefix("random.")
                if fn in _RNG_CLASSES or "." in fn:
                    continue  # seeded instance construction is the fix
                yield self.violation(
                    module,
                    call.lineno,
                    f"{name}() draws from the module-level random — "
                    f"use repro.core.rng.run_stream() or a seeded "
                    f"random.Random so the draw replays from a "
                    f"recorded seed",
                )


# ---------------------------------------------------------------------------
# R3: knob-declaration
# ---------------------------------------------------------------------------


def _knob_helper_keys(
    project: Project, fn_name: str, depth: int = 0
) -> Optional[set[str]]:
    """Keys of the dict literal a knob-helper function returns.

    Resolves the ``**background_knobs()`` idiom: a module-level
    function (anywhere in the scanned tree) whose return statement is
    a dict literal of constant keys.  Returns None when the helper
    cannot be resolved statically.
    """
    if depth > 2:
        return None
    for module in project.under(SRC):
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.FunctionDef) or stmt.name != fn_name:
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                    keys, closed = _dict_knob_keys(project, node.value, depth + 1)
                    return keys if closed else None
            return None
    return None


def _dict_knob_keys(
    project: Project, node: ast.Dict, depth: int = 0
) -> tuple[set[str], bool]:
    """(keys, fully-resolved?) of a knob dict literal with ** merges."""
    keys: set[str] = set()
    closed = True
    for key, value in zip(node.keys, node.values):
        if key is None:  # a ``**expr`` merge entry
            sub: Optional[set[str]] = None
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                sub = _knob_helper_keys(project, value.func.id, depth)
            if sub is None:
                closed = False
            else:
                keys |= sub
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        else:
            closed = False
    return keys, closed


@dataclass
class ScenarioModel:
    """Statically-derived view of one Scenario subclass."""

    info: ClassInfo
    name: Optional[str]  # ScenarioSpec name=, when given literally
    knobs: set[str]
    closed: bool  # False when the knob set could not be fully resolved
    spec_call: Optional[ast.Call]


def _scenario_models(project: Project) -> dict[str, ScenarioModel]:
    classes = _class_map(project, SRC)
    models: dict[str, ScenarioModel] = {}
    for cls_name, info in classes.items():
        if not _reaches(classes, cls_name, "Scenario"):
            continue
        spec_call = None
        for owner in [info, *(_ancestry(classes, cls_name, "Scenario"))]:
            for stmt in owner.node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "spec"
                        for t in stmt.targets
                    )
                    and isinstance(stmt.value, ast.Call)
                    and _callee_name(stmt.value) == "ScenarioSpec"
                ):
                    spec_call = stmt.value
                    break
            if spec_call is not None:
                break
        knobs: set[str] = set()
        closed = spec_call is not None
        if spec_call is not None:
            knobs_node = _kwarg(spec_call, "knobs")
            if knobs_node is None:
                pass  # a scenario may declare no knobs at all
            elif isinstance(knobs_node, ast.Dict):
                knobs, closed = _dict_knob_keys(project, knobs_node)
            elif isinstance(knobs_node, ast.Call) and isinstance(
                knobs_node.func, ast.Name
            ):
                # the knobs=_shared_knobs(...) helper idiom
                resolved = _knob_helper_keys(project, knobs_node.func.id)
                if resolved is None:
                    closed = False
                else:
                    knobs = set(resolved)
            else:
                closed = False
        models[cls_name] = ScenarioModel(
            info=info,
            name=_str_kwarg(spec_call, "name") if spec_call else None,
            knobs=knobs,
            closed=closed,
            spec_call=spec_call,
        )
    return models


def _knob_accesses(
    node: ast.ClassDef,
) -> Iterator[tuple[str, int]]:
    """Every literal ``self.p["..."]`` / ``self.p.get("...")`` access,
    including through a local ``p = self.p`` alias."""
    for fn in node.body:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = fn.args.posonlyargs + fn.args.args
        if not args:
            continue
        self_name = args[0].arg
        aliases = {
            stmt.targets[0].id
            for stmt in ast.walk(fn)
            if isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _self_attr_name(stmt.value, self_name) == "p"
        }

        def is_p(expr: ast.expr) -> bool:
            if _self_attr_name(expr, self_name) == "p":
                return True
            return isinstance(expr, ast.Name) and expr.id in aliases

        for sub in ast.walk(fn):
            if (
                isinstance(sub, ast.Subscript)
                and is_p(sub.value)
                and isinstance(sub.slice, ast.Constant)
                and isinstance(sub.slice.value, str)
            ):
                yield sub.slice.value, sub.lineno
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "get"
                and is_p(sub.func.value)
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)
            ):
                yield sub.args[0].value, sub.lineno


@register_rule
class KnobDeclaration(Rule):
    """Knob use and knob declaration cannot drift apart."""

    spec = RuleSpec(
        name="knob-declaration",
        summary="every self.p[...] access in a Scenario must be a "
        "declared knob, and every SweepSpec binding must name one",
        rationale="Knobs are the contract between scenarios, sweeps, "
        "the CLI and the generated docs: an undeclared access dies as "
        "a KeyError mid-run (after minutes of build time at scale), "
        "and a sweep axis bound to a misspelled knob silently sweeps "
        "nothing.",
        scope="src/repro/ (Scenario subclasses and SweepSpec "
        "declarations; knob sets resolved through the "
        "background_knobs()/fault_knobs() helper idiom)",
        pragma=None,
        fix="Declare the knob in the scenario's spec.knobs (with a "
        "default and help string), or fix the name at the use site.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        models = _scenario_models(project)
        by_scenario_name = {m.name: m for m in models.values() if m.name is not None}
        for cls_name, model in sorted(models.items()):
            if not model.closed:
                continue  # dynamic knob construction: nothing provable
            for knob, lineno in _knob_accesses(model.info.node):
                if knob not in model.knobs:
                    yield self.violation(
                        model.info.module,
                        lineno,
                        f"{cls_name} accesses undeclared knob {knob!r} "
                        f"(spec.knobs declares: "
                        f"{', '.join(sorted(model.knobs)) or '(none)'})",
                    )
            if model.spec_call is not None:
                smoke = _kwarg(model.spec_call, "smoke_knobs")
                if isinstance(smoke, ast.Dict):
                    for key in smoke.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in model.knobs
                        ):
                            yield self.violation(
                                model.info.module,
                                key.lineno,
                                f"{cls_name} smoke_knobs names "
                                f"undeclared knob {key.value!r}",
                            )
        yield from self._check_sweep_specs(project, by_scenario_name)

    def _check_sweep_specs(
        self,
        project: Project,
        scenarios: dict[str, ScenarioModel],
    ) -> Iterator[Violation]:
        for module in project.under(SRC):
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _callee_name(node) == "SweepSpec"
                ):
                    continue
                scenario = _str_kwarg(node, "scenario")
                model = scenarios.get(scenario) if scenario else None
                if model is None or not model.closed:
                    continue
                sweep = _str_kwarg(node, "name") or scenario
                axes = _kwarg(node, "axes")
                if isinstance(axes, ast.Dict):
                    for key, value in zip(axes.keys, axes.values):
                        if not (
                            isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            continue
                        if value.value not in model.knobs:
                            axis = key.value if isinstance(key, ast.Constant) else "?"
                            yield self.violation(
                                module,
                                value.lineno,
                                f"sweep {sweep!r}: axis {axis!r} binds "
                                f"knob {value.value!r}, which scenario "
                                f"{scenario!r} does not declare",
                            )
                base_knobs = _kwarg(node, "base_knobs")
                if isinstance(base_knobs, ast.Dict):
                    for key in base_knobs.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value not in model.knobs
                        ):
                            yield self.violation(
                                module,
                                key.lineno,
                                f"sweep {sweep!r}: base_knobs names "
                                f"undeclared knob {key.value!r} of "
                                f"scenario {scenario!r}",
                            )
                suspect = _kwarg(node, "expect_suspect_knob")
                if (
                    isinstance(suspect, ast.Constant)
                    and isinstance(suspect.value, str)
                    and suspect.value not in model.knobs
                ):
                    yield self.violation(
                        module,
                        suspect.lineno,
                        f"sweep {sweep!r}: expect_suspect_knob names "
                        f"undeclared knob {suspect.value!r} of "
                        f"scenario {scenario!r}",
                    )


# ---------------------------------------------------------------------------
# R4: fault-protocol
# ---------------------------------------------------------------------------


@register_rule
class FaultProtocol(Rule):
    """Fault subclasses implement the full schedule→inject→heal contract."""

    spec = RuleSpec(
        name="fault-protocol",
        summary="Fault subclasses must override inject and heal, keep "
        "describe's signature, and heal the state inject saves",
        rationale="abc catches a missing inject/heal only when the "
        "fault is first instantiated — possibly in a nightly sweep. "
        "And a fault whose inject stashes saved state (self._saved) "
        "that heal never touches cannot restore the system, which "
        "corrupts every stop=/multi-fault composition.",
        scope="src/repro/faults/",
        pragma=None,
        fix="Implement both transitions; reference every private "
        "attribute inject assigns from heal() (or finalize()).  "
        "Public attributes are the fault's measured surface and are "
        "exempt.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        classes = _class_map(project, f"{SRC}/faults")
        for cls_name in sorted(classes):
            info = classes[cls_name]
            if not _reaches(classes, cls_name, "Fault"):
                continue
            chain = list(_ancestry(classes, cls_name, "Fault"))
            defined: dict[str, ast.FunctionDef] = {}
            for owner in chain:
                for name, fn in _methods(owner.node).items():
                    defined.setdefault(name, fn)
            for required in ("inject", "heal"):
                if required not in defined:
                    yield self.violation(
                        info.module,
                        info.node.lineno,
                        f"{cls_name} does not override {required}() — "
                        f"the fault protocol requires both state "
                        f"transitions",
                    )
            own = _methods(info.node)
            describe = own.get("describe")
            if describe is not None:
                params = describe.args.posonlyargs + describe.args.args
                if len(params) != 1 or describe.args.kwonlyargs:
                    yield self.violation(
                        info.module,
                        describe.lineno,
                        f"{cls_name}.describe() must take only self — "
                        f"the registry renders it uniformly",
                    )
            yield from self._check_saved_state(info, defined)

    def _check_saved_state(
        self, info: ClassInfo, defined: dict[str, ast.FunctionDef]
    ) -> Iterator[Violation]:
        inject = _methods(info.node).get("inject")
        if inject is None:
            return
        args = inject.args.posonlyargs + inject.args.args
        if not args:
            return
        self_name = args[0].arg
        saved: dict[str, int] = {}
        for node in ast.walk(inject):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attr_name(target, self_name)
                if attr is not None and attr.startswith("_"):
                    saved.setdefault(attr, target.lineno)
        if not saved:
            return
        referenced: set[str] = set()
        for name in ("heal", "finalize"):
            fn = defined.get(name)
            if fn is None:
                continue
            fn_args = fn.args.posonlyargs + fn.args.args
            fn_self = fn_args[0].arg if fn_args else "self"
            for node in ast.walk(fn):
                attr = _self_attr_name(node, fn_self)
                if attr is not None:
                    referenced.add(attr)
        for attr, lineno in sorted(saved.items(), key=lambda kv: kv[1]):
            if attr not in referenced:
                yield self.violation(
                    info.module,
                    lineno,
                    f"{info.node.name}.inject() saves self.{attr} but "
                    f"heal()/finalize() never references it — the "
                    f"fault cannot undo what it saved",
                )


# ---------------------------------------------------------------------------
# R5: registry-coverage
# ---------------------------------------------------------------------------

_REGISTER_DECORATORS = {"register", "register_fault"}
_REGISTER_CALLS = {"register_sweep", "register_experiment",
                   "register_backend", "register_directory"}


def _registers_something(
    module: Module, classes: dict[str, ClassInfo]
) -> Optional[str]:
    """What this module registers, if anything (a human-readable tag)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            if _decorator_names(node) & _REGISTER_DECORATORS:
                return f"registered class {node.name}"
            has_spec = any(
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "spec" for t in stmt.targets
                )
                for stmt in node.body
            )
            if has_spec and (
                _reaches(classes, node.name, "Scenario")
                or _reaches(classes, node.name, "Fault")
            ):
                return f"registrable class {node.name}"
        elif isinstance(node, ast.Call) and _callee_name(node) in _REGISTER_CALLS:
            return f"a {_callee_name(node)} declaration"
    return None


@register_rule
class RegistryCoverage(Rule):
    """Registering modules must be reachable from their package import."""

    spec = RuleSpec(
        name="registry-coverage",
        summary="every scenarios/, faults/, sweep/, experiment/ module "
        "that registers something must be imported by its package "
        "__init__.py",
        rationale="Registration is an import side effect: a module the "
        "package aggregator never imports simply vanishes — its "
        "scenario/fault/sweep/experiment is absent from the CLI, the "
        "nightly driver, and the generated catalogues, with no error "
        "anywhere.",
        scope="src/repro/scenarios/, src/repro/faults/, "
        "src/repro/sweep/, src/repro/experiment/, src/repro/hostd/",
        pragma=None,
        fix="Import the module from the package __init__.py (the "
        "catalogue aggregator), the way every sibling module is.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        classes = _class_map(project, SRC)
        for package in REGISTRY_PACKAGES:
            init = project.get(f"{package}/__init__.py")
            if init is None:
                continue
            imported: set[str] = set()
            for node in ast.walk(init.tree):
                if isinstance(node, ast.ImportFrom) and node.level >= 1:
                    if node.module is None:  # from . import mod
                        imported.update(a.name for a in node.names)
                    else:
                        imported.add(node.module.split(".")[0])
            for module in project.under(package):
                stem = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
                if stem == "__init__":
                    continue
                what = _registers_something(module, classes)
                if what is not None and stem not in imported:
                    yield self.violation(
                        module,
                        1,
                        f"module defines {what} but "
                        f"{package}/__init__.py never imports it — "
                        f"the registry (and every catalogue built "
                        f"from it) will not see this module",
                    )


# ---------------------------------------------------------------------------
# R6: report-schema-drift
# ---------------------------------------------------------------------------


def _class_def(module: Module, name: str) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _module_dict_keys(module: Module, var: str) -> Optional[set[str]]:
    for node in module.tree.body:
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == var for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == var
        ):
            value = node.value
        if isinstance(value, ast.Dict):
            return {
                k.value
                for k in value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
    return None


def _to_json_keys(cls: ast.ClassDef) -> Optional[dict[str, int]]:
    fn = _methods(cls).get("to_json")
    if fn is None:
        return None
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            return {
                k.value: k.lineno
                for k in node.value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
    return None


@register_rule
class ReportSchemaDrift(Rule):
    """The sweep-report writer and its validator stay in lockstep."""

    spec = RuleSpec(
        name="report-schema-drift",
        summary="fields written into SweepReport/PointResult JSON must "
        "match the report.py validator schema (and vice versa)",
        rationale="validate_report rejects unknown fields, so a field "
        "added to to_json() without a schema entry makes every new "
        "report invalid; a schema entry nothing writes makes every "
        "report *fail* validation.  Either way CI's nightly artifacts "
        "and the benchmark gate stop trusting the numbers.",
        scope="src/repro/sweep/report.py and src/repro/sweep/runner.py",
        pragma=None,
        fix="Add the field to the dataclass, to_json(), and the "
        "_POINT_FIELDS/_TOP_FIELDS schema together (and bump the "
        "schema version for readers).",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        report = project.get(f"{SRC}/sweep/report.py")
        if report is None:
            return
        point_cls = _class_def(report, "PointResult")
        report_cls = _class_def(report, "SweepReport")
        yield from self._check_pair(report, point_cls, "_POINT_FIELDS", "PointResult")
        yield from self._check_pair(report, report_cls, "_TOP_FIELDS", "SweepReport")
        if point_cls is not None:
            fields = {
                stmt.target.id
                for stmt in point_cls.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            yield from self._check_runner_writes(project, fields)

    def _check_pair(
        self,
        report: Module,
        cls: Optional[ast.ClassDef],
        schema_var: str,
        label: str,
    ) -> Iterator[Violation]:
        schema = _module_dict_keys(report, schema_var)
        written = _to_json_keys(cls) if cls is not None else None
        if schema is None or written is None:
            return
        for name, lineno in sorted(written.items()):
            if name not in schema:
                yield self.violation(
                    report,
                    lineno,
                    f"{label}.to_json() writes {name!r} but "
                    f"{schema_var} does not validate it — every new "
                    f"report will be rejected as invalid",
                )
        for name in sorted(schema - set(written)):
            yield self.violation(
                report,
                1,
                f"{schema_var} requires {name!r} but "
                f"{label}.to_json() never writes it — every report "
                f"will fail validation",
            )

    def _check_runner_writes(
        self, project: Project, fields: set[str]
    ) -> Iterator[Violation]:
        runner = project.get(f"{SRC}/sweep/runner.py")
        if runner is None or not fields:
            return
        for fn in ast.walk(runner.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            results = {
                stmt.targets[0].id
                for stmt in ast.walk(fn)
                if isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and _callee_name(stmt.value) == "PointResult"
            }
            if not results:
                continue
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in results
                        and target.attr not in fields
                    ):
                        yield self.violation(
                            runner,
                            target.lineno,
                            f"point field {target.attr!r} is written "
                            f"here but PointResult declares no such "
                            f"field — it would never reach the report",
                        )


# ---------------------------------------------------------------------------
# R7: typed-defs
# ---------------------------------------------------------------------------


@register_rule
class TypedDefs(Rule):
    """The typed core carries complete annotations (mypy's local mirror)."""

    spec = RuleSpec(
        name="typed-defs",
        summary="every function in the typed-core subset (sweep/, "
        "faults/, analyzer/, directory/, scenarios/base.py, "
        "simnet/workload.py) has complete parameter and return "
        "annotations",
        rationale="CI runs mypy over exactly this subset with "
        "disallow_untyped_defs; this rule enforces the same "
        "completeness from the AST, so the gap surfaces in any "
        "environment — including ones without mypy installed.",
        scope="src/repro/sweep/, src/repro/faults/, "
        "src/repro/analyzer/, src/repro/directory/, "
        "src/repro/scenarios/base.py, "
        "src/repro/simnet/workload.py, src/repro/hostd/columnar.py, "
        "src/repro/hostd/backends.py",
        pragma=None,
        fix="Annotate every parameter (typing.Any is acceptable where "
        "the value is genuinely dynamic) and the return type; "
        "__init__ may omit the return when at least one parameter is "
        "annotated.",
    )

    def check(self, project: Project) -> Iterator[Violation]:
        for module in project.under(*TYPED_CORE):
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield from self._check_function(module, node)

    def _check_function(
        self, module: Module, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        params = fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        missing = []
        annotated = 0
        for index, arg in enumerate(params):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
            else:
                annotated += 1
        for star in (fn.args.vararg, fn.args.kwarg):
            if star is None:
                continue
            if star.annotation is None:
                missing.append(f"*{star.arg}")
            else:
                annotated += 1
        if missing:
            yield self.violation(
                module,
                fn.lineno,
                f"{fn.name}() is missing parameter annotation(s) for "
                f"{', '.join(missing)} (typed-core runs mypy strict "
                f"on defs)",
            )
        if fn.returns is None and not (fn.name == "__init__" and annotated):
            yield self.violation(
                module,
                fn.lineno,
                f"{fn.name}() is missing its return annotation "
                f"(typed-core runs mypy strict on defs)",
            )
