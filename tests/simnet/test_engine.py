"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import (PeriodicTimer, SimulationError, Simulator)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, fired.append, "late")
        sim.schedule(0.1, fired.append, "early")
        sim.schedule(0.3, fired.append, "mid")
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(0.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.schedule(1.0, fired.append, "sibling")
        sim.run()
        assert fired == ["outer", "sibling", "inner"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_kwargs_forwarded(self):
        sim = Simulator()
        got = {}
        sim.schedule(0.1, lambda **kw: got.update(kw), x=1, y="z")
        sim.run()
        assert got == {"x": 1, "y": "z"}

    def test_start_time(self):
        sim = Simulator(start_time=10.0)
        assert sim.now == 10.0
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.2, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(0.2, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(0.1, fired.append, "keep")
        drop = sim.schedule(0.2, fired.append, "drop")
        drop.cancel()
        sim.run()
        assert fired == ["keep"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0  # clock advanced to the until bound
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_exact_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(0.1 * (i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_not_reentrant(self):
        sim = Simulator()
        err = {}

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                err["raised"] = exc

        sim.schedule(0.1, recurse)
        sim.run()
        assert "raised" in err

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_pending_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 0.1, lambda: ticks.append(sim.now))
        sim.run(until=0.55)
        assert len(ticks) == 5
        assert ticks[0] == pytest.approx(0.1)
        assert ticks[-1] == pytest.approx(0.5)

    def test_stop_halts_timer(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.1, lambda: ticks.append(sim.now))
        sim.schedule(0.25, timer.stop)
        sim.run(until=1.0)
        assert len(ticks) == 2

    def test_stop_from_callback(self):
        sim = Simulator()
        timer_box = {}

        def cb():
            timer_box["t"].stop()

        timer_box["t"] = PeriodicTimer(sim, 0.1, cb)
        sim.run(until=1.0)
        assert timer_box["t"].ticks == 1

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 0.1, lambda: ticks.append(sim.now),
                      start_delay=0.05)
        sim.run(until=0.3)
        assert ticks[0] == pytest.approx(0.05)
        assert ticks[1] == pytest.approx(0.15)

    def test_invalid_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_args_passed(self):
        sim = Simulator()
        got = []
        PeriodicTimer(sim, 0.1, got.append, "tick")
        sim.run(until=0.25)
        assert got == ["tick", "tick"]
