"""Fig 2 / Fig 7: too much traffic (priority + microburst contention)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_contention
from ..deployment import SwitchPointerDeployment
from ..hostd.triggers import VictimAlert
from ..simnet.packet import PRIO_HIGH, PRIO_LOW, FlowKey
from ..simnet.stats import InterArrivalProbe, ThroughputProbe
from ..simnet.topology import Network
from ..simnet.traffic import TcpTimedFlow, UdpSink, schedule_burst_batches
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS, fifo_queue, priority_queue


@dataclass
class ContentionResult:
    """Output of one Fig 2 run (a single burst size m)."""

    m_flows: int
    discipline: str
    throughput: ThroughputProbe
    interarrival: InterArrivalProbe
    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    burst_start: float
    burst_duration: float
    alerts: list[VictimAlert] = field(default_factory=list)
    tcp_timeouts: int = 0

    def starvation_ms(self) -> float:
        """Length of the post-burst window with ~zero victim throughput."""
        zero = 0.0
        for t, gbps in self.throughput.series():
            if t < self.burst_start:
                continue
            if gbps < 0.02:
                zero += self.throughput.window
        return zero * 1000

    def max_gap_ms(self) -> float:
        """Largest victim inter-packet gap around the burst."""
        return self.interarrival.max_gap_in(
            self.burst_start, self.burst_start + 0.040) * 1000


def _build_dumbbell(m_flows: int, *, queue_factory) -> Network:
    """S1—S2 trunk; m+1 sender/receiver pairs on opposite sides."""
    net = Network()
    s1 = net.add_switch("S1")
    s2 = net.add_switch("S2")
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=queue_factory)
    for i in range(m_flows + 1):
        a = net.add_host(f"h1_{i}")
        b = net.add_host(f"h2_{i}")
        net.connect(a, s1, rate_bps=GBPS, queue_factory=queue_factory)
        net.connect(b, s2, rate_bps=GBPS, queue_factory=queue_factory)
    net.compute_routes()
    return net


def _contention_knobs(discipline: str) -> dict[str, Knob]:
    return {
        "m_flows": Knob(8, "burst flows contending with the victim"),
        "discipline": Knob(discipline, "'priority' or 'fifo' queueing"),
        "duration": Knob(0.100, "victim TCP flow duration (s)"),
        "burst_start": Knob(0.030, "burst onset (s)"),
        "burst_duration": Knob(0.001, "burst length (s)"),
        "alpha_ms": Knob(10, "epoch duration α (ms)"),
        "k": Knob(3, "pointer hierarchy depth"),
        "epsilon_ms": Knob(1.0, "clock-skew bound ε (ms)"),
        "delta_ms": Knob(2.0, "one-hop-delay bound Δ (ms)"),
        "watch": Knob(True, "install the victim throughput trigger"),
    }


@register
class ContentionScenario(Scenario):
    """A victim TCP flow vs an m-flow high-priority UDP burst (Fig 1(a)).

    Topology: dumbbell — senders behind S1, receivers behind S2, all
    burst flows have distinct source-destination pairs and share the
    S1→S2 trunk with the victim.
    """

    spec = ScenarioSpec(
        name="contention",
        summary="priority contention starves a victim TCP flow on a "
                "shared trunk",
        paper_ref="Fig 2(a), Fig 7; §5.1 'too much traffic'",
        expected_diagnosis="priority-contention",
        knobs=_contention_knobs("priority"),
        aliases=("fig2a", "fig7"),
        smoke_knobs={"m_flows": 2, "duration": 0.030, "burst_start": 0.010},
    )

    def build(self) -> None:
        p = self.p
        if p["discipline"] not in ("priority", "fifo"):
            raise ValueError("discipline must be 'priority' or 'fifo'")
        qf = (priority_queue if p["discipline"] == "priority"
              else fifo_queue)
        net = _build_dumbbell(p["m_flows"], queue_factory=qf)
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"],
            epsilon_ms=p["epsilon_ms"], delta_ms=p["delta_ms"])
        self.network, self.deployment = net, deploy

        self.tput = ThroughputProbe(window=0.001)
        self.interarrival = InterArrivalProbe()

        def on_payload(pkt, t):
            self.tput.on_packet(pkt, t)
            self.interarrival.on_packet(pkt, t)

        self.victim_app = TcpTimedFlow(
            net.sim, net.hosts["h1_0"], net.hosts["h2_0"],
            duration=p["duration"], sport=100, dport=200,
            priority=PRIO_LOW, on_payload=on_payload)
        self.victim = self.victim_app.sender.flow
        self.trigger = (deploy.watch_flow(self.victim)
                        if p["watch"] else None)

        burst_prio = (PRIO_HIGH if p["discipline"] == "priority"
                      else PRIO_LOW)
        m = p["m_flows"]
        senders = [net.hosts[f"h1_{j}"] for j in range(1, m + 1)]
        receivers = [f"h2_{j}" for j in range(1, m + 1)]
        for j in range(1, m + 1):
            UdpSink(net.hosts[f"h2_{j}"], 7000)
        schedule_burst_batches(net.sim, senders, receivers,
                               flow_counts=[m],
                               first_start=p["burst_start"],
                               burst_duration=p["burst_duration"],
                               priority=burst_prio)

    def run(self) -> None:
        self.network.run(until=self.p["duration"] + 0.050)
        if self.trigger is not None:
            self.trigger.stop()

    def collect(self) -> dict:
        p = self.p
        self.payload = ContentionResult(
            m_flows=p["m_flows"], discipline=p["discipline"],
            throughput=self.tput, interarrival=self.interarrival,
            deployment=self.deployment, network=self.network,
            victim=self.victim, burst_start=p["burst_start"],
            burst_duration=p["burst_duration"],
            alerts=list(self.deployment.alerts()),
            tcp_timeouts=self.victim_app.sender.timeouts)
        return {
            "starvation_ms": round(self.payload.starvation_ms(), 2),
            "max_gap_ms": round(self.payload.max_gap_ms(), 3),
            "tcp_timeouts": self.payload.tcp_timeouts,
            "alerts": len(self.payload.alerts),
        }

    def diagnose(self) -> list[Verdict]:
        alerts = self.deployment.alerts()
        if not alerts:
            return []
        return [diagnose_contention(self.deployment.analyzer, alerts[0])]


@register
class MicroburstScenario(ContentionScenario):
    """Fig 2(b): the same dumbbell, FIFO queues, equal-priority burst."""

    spec = ScenarioSpec(
        name="microburst",
        summary="equal-priority microburst overflows a FIFO trunk queue",
        paper_ref="Fig 2(b); §5.1 'too much traffic'",
        expected_diagnosis="microburst-contention",
        knobs=_contention_knobs("fifo"),
        aliases=("fig2b",),
        smoke_knobs={"m_flows": 2, "duration": 0.030, "burst_start": 0.010},
    )


def run_contention_scenario(m_flows: int, *, discipline: str = "priority",
                            duration: float = 0.100,
                            burst_start: float = 0.030,
                            burst_duration: float = 0.001,
                            alpha_ms: int = 10, k: int = 3,
                            epsilon_ms: float = 1.0, delta_ms: float = 2.0,
                            watch: bool = True) -> ContentionResult:
    """One Fig 2 cell (functional entry point kept for examples/tests)."""
    sc = ContentionScenario(
        m_flows=m_flows, discipline=discipline, duration=duration,
        burst_start=burst_start, burst_duration=burst_duration,
        alpha_ms=alpha_ms, k=k, epsilon_ms=epsilon_ms, delta_ms=delta_ms,
        watch=watch)
    sc.build()
    sc.run()
    sc.collect()
    return sc.payload
