"""Unit tests for destination-side telemetry decoding."""

from repro.core.epoch import EpochClock, EpochRangeEstimator
from repro.core.mphf import HostDirectory
from repro.core.pointer import HierarchicalPointerStore
from repro.hostd.decoder import TelemetryDecoder
from repro.hostd.records import FlowRecordStore
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_fat_tree, build_linear
from repro.switchd.cherrypick import CherryPickPlanner
from repro.switchd.datapath import (MODE_INT, MODE_VLAN,
                                    SwitchPointerDatapath)


def instrument(net, mode=MODE_VLAN, alpha_ms=10, epsilon_ms=1.0,
               delta_ms=2.0, skew=None):
    """Wire datapaths on all switches + a decoder on every host."""
    directory = HostDirectory(net.host_names)
    planner = CherryPickPlanner(net)
    estimator = EpochRangeEstimator(alpha_ms, epsilon_ms, delta_ms)
    skew = skew or (lambda name: 0.0)
    for name, sw in net.switches.items():
        store = HierarchicalPointerStore(directory.n, alpha=alpha_ms, k=2)
        SwitchPointerDatapath(sw, EpochClock(alpha_ms, skew_s=skew(name)),
                              directory.mphf, store, planner=planner,
                              mode=mode)
    decoders = {}
    for name, host in net.hosts.items():
        store = FlowRecordStore(name)
        dec = TelemetryDecoder(store, EpochClock(alpha_ms,
                                                 skew_s=skew(name)),
                               planner, estimator)
        host.sniffers.append(dec.on_packet)
        decoders[name] = dec
    return decoders


class TestVlanDecoding:
    def test_path_reconstruction_matches_ground_truth(self):
        net = build_linear(3, 1)
        decoders = instrument(net)
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        rec = decoders["h3_0"].store.get(
            net.hosts["h1_0"].nic.link.iface_a and
            next(iter(decoders["h3_0"].store)).flow)
        rec = next(iter(decoders["h3_0"].store))
        assert rec.switch_path == ["S1", "S2", "S3"]
        assert decoders["h3_0"].decoded == 1

    def test_epoch_range_covers_true_epoch_every_switch(self):
        net = build_linear(3, 1)
        decoders = instrument(net, alpha_ms=10)
        net.sim.schedule(0.047, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        rec = next(iter(decoders["h3_0"].store))
        for sw in ("S1", "S2", "S3"):
            assert 4 in rec.epochs_at(sw)  # true epoch at all hops (47 ms)

    def test_fat_tree_interpod_reconstruction(self):
        net = build_fat_tree(4)
        decoders = instrument(net)
        src, dst = "h0_0_0", "h2_1_0"
        caught = []
        net.hosts[dst].sniffers.append(lambda h, p, t: caught.append(p))
        net.hosts[src].send(make_udp(src, dst, 1, 9, 500))
        net.run()
        rec = next(iter(decoders[dst].store))
        assert rec.switch_path == caught[0].hops  # matches ground truth
        assert len(rec.switch_path) == 5

    def test_bytes_accumulate_per_observed_epoch(self):
        net = build_linear(2, 1)
        decoders = instrument(net, alpha_ms=10)
        for i in range(3):
            net.sim.schedule(0.012 + i * 0.001,
                             lambda: net.hosts["h1_0"].send(
                                 make_udp("h1_0", "h2_0", 1, 9, 500)))
        net.run()
        rec = next(iter(decoders["h2_0"].store))
        assert rec.bytes == 1500
        assert rec.bytes_by_epoch.get(1) == 1500  # all in epoch 1

    def test_priority_recorded(self):
        net = build_linear(2, 1)
        decoders = instrument(net)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500,
                                        priority=2))
        net.run()
        assert next(iter(decoders["h2_0"].store)).priority == 2


class TestVlanWithSkew:
    def test_range_covers_truth_under_bounded_skew(self):
        """Per-device skews within ε must never break coverage."""
        skews = {"S1": 0.0004, "S2": -0.0004, "S3": 0.0002,
                 "h1_0": -0.0003, "h3_0": 0.0004}
        net = build_linear(3, 1)
        decoders = instrument(net, alpha_ms=10, epsilon_ms=1.0,
                              skew=lambda n: skews.get(n, 0.0))
        send_at = 0.0399  # next to an epoch boundary: worst case
        net.sim.schedule(send_at, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        rec = next(iter(decoders["h3_0"].store))
        for sw, skew in (("S1", 0.0004), ("S2", -0.0004), ("S3", 0.0002)):
            true_epoch = EpochClock(10, skew_s=skew).epoch_of(send_at)
            assert true_epoch in rec.epochs_at(sw), sw


class TestIntDecoding:
    def test_int_exact_per_switch_epochs(self):
        net = build_linear(3, 1)
        decoders = instrument(net, mode=MODE_INT, epsilon_ms=0.0)
        net.sim.schedule(0.025, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        rec = next(iter(decoders["h3_0"].store))
        assert rec.switch_path == ["S1", "S2", "S3"]
        for sw in rec.switch_path:
            assert rec.epochs_at(sw) is not None
            assert 2 in rec.epochs_at(sw)


class TestUndecodable:
    def test_untagged_packet_counted_not_recorded(self):
        net = build_linear(2, 1)
        decoders = instrument(net)
        # bypass the instrumented switches: deliver straight to the host
        host = net.hosts["h2_0"]
        pkt = make_udp("h1_0", "h2_0", 1, 9, 500)
        host.receive(pkt, host.nic)
        assert decoders["h2_0"].undecodable == 1
        assert len(decoders["h2_0"].store) == 0
