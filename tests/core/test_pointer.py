"""Unit tests for pointer sets and the hierarchical store."""

import pytest

from repro.core.pointer import (HierarchicalPointerStore, PointerSet,
                                PointerSnapshot)


class TestPointerSet:
    def test_set_and_test(self):
        ps = PointerSet(64)
        ps.set_slot(0)
        ps.set_slot(63)
        assert ps.test_slot(0) and ps.test_slot(63)
        assert not ps.test_slot(1)

    def test_popcount_deduplicates(self):
        ps = PointerSet(10)
        ps.set_slot(5)
        ps.set_slot(5)
        assert ps.popcount == 1
        assert len(ps) == 1

    def test_out_of_range(self):
        ps = PointerSet(8)
        with pytest.raises(IndexError):
            ps.set_slot(8)
        with pytest.raises(IndexError):
            ps.test_slot(-1)

    def test_clear(self):
        ps = PointerSet(16)
        for s in (1, 3, 9):
            ps.set_slot(s)
        ps.clear()
        assert ps.popcount == 0
        assert not any(ps.test_slot(s) for s in range(16))

    def test_iter_slots_ascending(self):
        ps = PointerSet(100)
        for s in (77, 3, 41):
            ps.set_slot(s)
        assert list(ps.iter_slots()) == [3, 41, 77]

    def test_union_into(self):
        a, b = PointerSet(32), PointerSet(32)
        a.set_slot(1)
        b.set_slot(2)
        a.union_into(b)
        assert sorted(b.iter_slots()) == [1, 2]
        assert b.popcount == 2

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            PointerSet(8).union_into(PointerSet(16))

    def test_bytes_roundtrip(self):
        ps = PointerSet(20)
        for s in (0, 7, 19):
            ps.set_slot(s)
        clone = PointerSet.from_bytes(20, ps.to_bytes())
        assert clone == ps
        assert clone.popcount == 3

    def test_copy_independent(self):
        ps = PointerSet(8)
        ps.set_slot(1)
        dup = ps.copy()
        dup.set_slot(2)
        assert not ps.test_slot(2)

    def test_size_bits_is_n(self):
        assert PointerSet(1234).size_bits == 1234

    def test_needs_a_slot(self):
        with pytest.raises(ValueError):
            PointerSet(0)


class TestStoreGeometry:
    def test_epochs_covered_per_level(self):
        store = HierarchicalPointerStore(10, alpha=10, k=3)
        assert store.epochs_covered(1) == 1
        assert store.epochs_covered(2) == 10
        assert store.epochs_covered(3) == 100

    def test_window_ms_matches_paper(self):
        """Level h sets cover αʰ ms (level 1: α ms ... top: αᵏ ms)."""
        store = HierarchicalPointerStore(10, alpha=10, k=3)
        assert store.window_ms(1) == 10
        assert store.window_ms(2) == 100
        assert store.window_ms(3) == 1000

    def test_memory_formula(self):
        """α·(k−1)·S + S bits."""
        store = HierarchicalPointerStore(1000, alpha=10, k=3)
        assert store.memory_bits == (10 * 2 + 1) * 1000
        assert store.total_pointer_sets == 21

    def test_level_bounds(self):
        store = HierarchicalPointerStore(10, alpha=10, k=2)
        with pytest.raises(ValueError):
            store.epochs_covered(0)
        with pytest.raises(ValueError):
            store.epochs_covered(3)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HierarchicalPointerStore(10, alpha=1, k=3)
        with pytest.raises(ValueError):
            HierarchicalPointerStore(10, alpha=10, k=0)


class TestStoreUpdatesAndQueries:
    def test_level1_tracks_single_epoch(self):
        store = HierarchicalPointerStore(50, alpha=10, k=3)
        store.update(epoch=7, slot=42)
        snap = store.snapshot(1, 7)
        assert snap is not None
        assert snap.slots() == [42]
        assert store.snapshot(1, 6) is None  # untouched window

    def test_level2_aggregates_alpha_epochs(self):
        store = HierarchicalPointerStore(50, alpha=10, k=3)
        for e in range(10, 20):  # one level-2 window (segment 1)
            store.update(epoch=e, slot=e - 10)
        snap = store.snapshot(2, 15)
        assert set(snap.slots()) == set(range(10))
        assert snap.epoch_lo == 10 and snap.epoch_hi == 19

    def test_rotation_reuses_after_alpha_windows(self):
        store = HierarchicalPointerStore(50, alpha=4, k=2)
        store.update(epoch=0, slot=1)
        # epochs 1..3 use the other three level-1 sets; epoch 4 reuses set 0
        for e in (1, 2, 3):
            store.update(epoch=e, slot=2)
        store.update(epoch=4, slot=3)
        assert store.snapshot(1, 0) is None  # recycled
        assert store.snapshot(1, 4).slots() == [3]

    def test_unoverwritten_old_window_remains_queryable(self):
        """Lazy rotation: an old set stays valid until actually reused."""
        store = HierarchicalPointerStore(50, alpha=10, k=2)
        store.update(epoch=3, slot=9)
        store.update(epoch=7, slot=8)  # different level-1 set
        # much later epoch touches yet another set; sets 3 and 7 intact
        store.update(epoch=101, slot=7)
        assert store.snapshot(1, 3).slots() == [9]
        assert store.snapshot(1, 7).slots() == [8]

    def test_snapshots_covering_range(self):
        store = HierarchicalPointerStore(50, alpha=10, k=3)
        for e in (2, 3, 5):
            store.update(epoch=e, slot=e)
        snaps = store.snapshots_covering(1, 2, 5)
        assert [s.segment for s in snaps] == [2, 3, 5]

    def test_snapshots_covering_validates_range(self):
        store = HierarchicalPointerStore(10, alpha=10, k=2)
        with pytest.raises(ValueError):
            store.snapshots_covering(1, 5, 4)

    def test_slots_for_epochs_union(self):
        store = HierarchicalPointerStore(50, alpha=10, k=3)
        store.update(epoch=1, slot=11)
        store.update(epoch=2, slot=22)
        assert store.slots_for_epochs(1, 2) == {11, 22}
        assert store.slots_for_epochs(3, 4) == set()

    def test_update_counter(self):
        store = HierarchicalPointerStore(10, alpha=10, k=2)
        for _ in range(5):
            store.update(epoch=0, slot=1)
        assert store.updates == 5


class TestPushModel:
    def test_top_level_pushed_once_per_window(self):
        pushes = []
        store = HierarchicalPointerStore(50, alpha=10, k=2,
                                         on_push=pushes.append)
        # top level covers alpha^(k-1) = 10 epochs
        for e in range(35):
            store.update(epoch=e, slot=e % 50)
        assert len(pushes) == 3  # windows 0,1,2 pushed; window 3 live
        assert [p.segment for p in pushes] == [0, 1, 2]

    def test_pushed_snapshot_contents(self):
        pushes = []
        store = HierarchicalPointerStore(50, alpha=10, k=2,
                                         on_push=pushes.append)
        for e in range(10):
            store.update(epoch=e, slot=e)
        store.update(epoch=10, slot=49)  # triggers push of window 0
        assert set(pushes[0].slots()) == set(range(10))
        assert pushes[0].epoch_lo == 0 and pushes[0].epoch_hi == 9

    def test_flush_top_forces_push(self):
        pushes = []
        store = HierarchicalPointerStore(50, alpha=10, k=2,
                                         on_push=pushes.append)
        store.update(epoch=0, slot=5)
        assert pushes == []
        store.flush_top()
        assert len(pushes) == 1
        assert pushes[0].slots() == [5]

    def test_k1_store_is_push_only(self):
        pushes = []
        store = HierarchicalPointerStore(50, alpha=10, k=1,
                                         on_push=pushes.append)
        for e in range(25):
            store.update(epoch=e, slot=1)
        # top covers alpha^0 = 1 epoch -> push per epoch transition
        assert len(pushes) == 24
        assert store.memory_bits == 50  # single set


class TestSnapshotProperties:
    def test_epoch_bounds(self):
        snap = PointerSnapshot(level=2, segment=3, epochs_covered=10,
                               bits=bytes(7), n_slots=50)
        assert snap.epoch_lo == 30
        assert snap.epoch_hi == 39
        assert snap.size_bits == 50

    def test_slots_decoding(self):
        ps = PointerSet(16)
        ps.set_slot(4)
        ps.set_slot(12)
        snap = PointerSnapshot(level=1, segment=0, epochs_covered=1,
                               bits=ps.to_bytes(), n_slots=16)
        assert snap.slots() == [4, 12]


class TestEpochStatus:
    def test_live_empty_recycled_distinction(self):
        store = HierarchicalPointerStore(50, alpha=4, k=2)
        store.update(epoch=1, slot=9)
        assert store.epoch_status(1, 1) == "live"
        assert store.epoch_status(1, 0) == "empty"   # never written
        assert store.epoch_status(1, 3) == "empty"   # not reached yet
        # epoch 5 reuses epoch 1's set -> 1 becomes recycled
        store.update(epoch=5, slot=8)
        assert store.epoch_status(1, 1) == "recycled"
        assert store.epoch_status(1, 5) == "live"

    def test_negative_epoch_is_empty(self):
        store = HierarchicalPointerStore(50, alpha=4, k=2)
        assert store.epoch_status(1, -1) == "empty"

    def test_top_level_status(self):
        store = HierarchicalPointerStore(50, alpha=4, k=2)
        store.update(epoch=0, slot=1)
        assert store.epoch_status(2, 0) == "live"
        assert store.epoch_status(2, 20) == "empty"
        store.update(epoch=20, slot=2)  # top window advances
        assert store.epoch_status(2, 0) == "recycled"
