"""Fig 8 — latency for diagnosing load imbalance.

Paper: a malfunctioning switch splits flows by size (<1 MB vs >=1 MB)
across two egress interfaces; the analyzer fetches the recent pointer,
queries the implicated servers for per-egress flow-size distributions,
and finds the clean separation.  Diagnosis time grows ~linearly from 4
to 96 servers (tens of ms up to ~400 ms).

Shape checks: verdict is 'imbalanced' at every n; latency monotone and
~linear in n; the 96-server point lands in the paper's few-hundred-ms
band.
"""

import pytest

from repro.analyzer.apps import diagnose_load_imbalance
from repro.core.epoch import EpochRange
from repro.scenarios import run_load_imbalance_scenario

from benchmarks.reporting import emit

SERVER_COUNTS = [4, 8, 16, 32, 64, 96]


def run_sweep():
    rows = {}
    for n in SERVER_COUNTS:
        res = run_load_imbalance_scenario(n)
        verdict = diagnose_load_imbalance(
            res.deployment.analyzer, res.suspect_switch,
            epochs=EpochRange(0, res.last_epoch))
        rows[n] = verdict
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_diagnosis_latency(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["servers  diagnosis_ms  imbalanced  hosts_consulted"]
    for n in SERVER_COUNTS:
        v = rows[n]
        lines.append(f"  {n:5d}  {v.total_time_s * 1e3:12.1f}  "
                     f"{str(v.imbalanced):10s}  "
                     f"{len(v.hosts_consulted):5d}")
    lines.append("(paper: ~linear growth, reaching ~400 ms at 96 servers)")
    emit("fig8_load_imbalance", lines)

    times = [rows[n].total_time_s for n in SERVER_COUNTS]
    assert all(rows[n].imbalanced for n in SERVER_COUNTS)
    assert times == sorted(times), "latency must grow with server count"
    # linearity: per-server marginal cost roughly constant (3x tolerance)
    slope_lo = (times[1] - times[0]) / (SERVER_COUNTS[1]
                                        - SERVER_COUNTS[0])
    slope_hi = (times[-1] - times[-2]) / (SERVER_COUNTS[-1]
                                          - SERVER_COUNTS[-2])
    assert slope_hi < slope_lo * 3
    # paper band at 96 servers: a few hundred ms
    assert 0.15 <= times[-1] <= 0.6
