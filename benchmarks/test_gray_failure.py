"""Gray failure — localization accuracy and pointer-pull cost.

A switch silently drops half the flows crossing a 4-switch chain.  For
every affected flow the spatial-cut localization must name the injected
switch; healthy flows must not be localized.  The per-flow diagnosis
cost is dominated by one pointer pull per on-path switch.
"""

import pytest

from repro.analyzer.apps import diagnose_gray_failure
from repro.scenarios import GrayFailureScenario

from benchmarks.reporting import emit

FLOW_COUNTS = [2, 4, 8]


def run_sweep():
    rows = {}
    for n in FLOW_COUNTS:
        rows[n] = GrayFailureScenario(n_flows=n).execute()
    return rows


@pytest.mark.benchmark(group="gray_failure")
def test_gray_failure_localization(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["flows  affected  localized_to_S3  healthy_clear  "
             "gray_drops  diag_ms_per_flow"]
    data = {}
    for n in FLOW_COUNTS:
        res = rows[n]
        affected = res.payload.affected
        localized = sum(1 for v in res.verdicts if v.suspect == "S3")
        healthy_clear = sum(
            1 for flow in res.payload.healthy
            if diagnose_gray_failure(
                res.deployment.analyzer, flow,
                silence_epochs=res.payload.silence_epochs).suspect is None)
        per_flow_ms = (sum(v.total_time_s for v in res.verdicts)
                       / max(1, len(res.verdicts)) * 1e3)
        drops = res.measurements["gray_drops"]
        lines.append(f"  {n:3d}  {len(affected):8d}  {localized:15d}  "
                     f"{healthy_clear:13d}  {drops:10d}  "
                     f"{per_flow_ms:13.2f}")
        data[n] = {"affected": len(affected), "localized": localized,
                   "healthy_clear": healthy_clear, "gray_drops": drops,
                   "diag_ms_per_flow": per_flow_ms}
    lines.append("(expected: localized == affected, healthy_clear == "
                 "healthy count)")
    emit("gray_failure", lines, data=data)

    for n in FLOW_COUNTS:
        assert data[n]["localized"] == data[n]["affected"]
        assert data[n]["healthy_clear"] == n - data[n]["affected"]
        assert data[n]["gray_drops"] > 0
