"""Unit tests for telemetry header codecs."""

import pytest

from repro.core.headers import (HeaderError, IntHop, IntStack,
                                VlanDoubleTag, VLAN_ID_MODULUS)


class TestVlanDoubleTag:
    def test_embed_reduces_epoch_mod_4096(self):
        tag = VlanDoubleTag.embed(link_id=5, absolute_epoch=8202)
        assert tag.epoch_tag == 8202 % 4096

    def test_link_id_range_enforced(self):
        with pytest.raises(HeaderError):
            VlanDoubleTag(link_id=4096, epoch_tag=0)
        with pytest.raises(HeaderError):
            VlanDoubleTag(link_id=-1, epoch_tag=0)

    def test_epoch_tag_range_enforced(self):
        with pytest.raises(HeaderError):
            VlanDoubleTag(link_id=0, epoch_tag=4096)

    def test_negative_epoch_rejected(self):
        with pytest.raises(HeaderError):
            VlanDoubleTag.embed(link_id=0, absolute_epoch=-1)

    def test_wire_overhead_is_two_tags(self):
        tag = VlanDoubleTag.embed(1, 1)
        assert tag.wire_overhead_bytes() == 8  # 2 x 802.1Q tag

    def test_encode_decode_roundtrip(self):
        for link, epoch in ((0, 0), (4095, 4095), (123, 456)):
            tag = VlanDoubleTag(link_id=link, epoch_tag=epoch)
            assert VlanDoubleTag.decode(tag.encode()) == tag

    def test_decode_length_check(self):
        with pytest.raises(HeaderError):
            VlanDoubleTag.decode(b"\x00\x01\x02")

    def test_modulus_constant(self):
        assert VLAN_ID_MODULUS == 4096


class TestIntStack:
    def test_push_accumulates_hops(self):
        stack = IntStack()
        stack.push("S1", 10)
        stack.push("S2", 11)
        assert stack.switch_path() == ["S1", "S2"]
        assert len(stack) == 2

    def test_epoch_lookup(self):
        stack = IntStack()
        stack.push("S1", 10)
        assert stack.epoch_at("S1") == 10
        assert stack.epoch_at("S9") is None

    def test_negative_epoch_rejected(self):
        with pytest.raises(HeaderError):
            IntStack().push("S1", -1)

    def test_overhead_grows_per_hop(self):
        stack = IntStack()
        base = stack.wire_overhead_bytes()
        stack.push("S1", 0)
        stack.push("S2", 0)
        assert stack.wire_overhead_bytes() == base + 2 * IntStack.BYTES_PER_HOP

    def test_hops_are_frozen_records(self):
        hop = IntHop(switch_id="S1", epoch=3)
        with pytest.raises(AttributeError):
            hop.epoch = 4
