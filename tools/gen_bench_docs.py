#!/usr/bin/env python3
"""Generate docs/BENCHMARKS.md from benchmarks/baselines/*.json.

Usage::

    python tools/gen_bench_docs.py            # (re)write the page
    python tools/gen_bench_docs.py --check    # exit 1 if out of date

The committed baseline documents are the single source of truth for
the CI benchmark-regression gate (``tools/check_bench_regression.py``);
this page renders the same files, so the documented numbers cannot
drift from the gated ones.  A tier-1 test (and the CI docs job)
asserts the checked-in page matches this renderer's output.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINES = REPO / "benchmarks" / "baselines"
TARGET = REPO / "docs" / "BENCHMARKS.md"

_PREAMBLE = """\
# Benchmark baselines

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_bench_docs.py -->

Every file under `benchmarks/baselines/` pins the wall-time reference
for one gated benchmark.  CI's blocking `bench-gate` job re-runs the
benchmarks, then `tools/check_bench_regression.py` compares each
metric below against its committed reference and **fails the build**
when a metric exceeds `baseline x max_factor` (scaled by a CPU
calibration probe, so a slower runner gets proportional headroom — a
baseline's `calibration_s` records the probe time on the machine that
committed it).

## Refreshing the numbers

Run the gated benchmarks, then rewrite the baselines from the fresh
results and commit the diff deliberately — it is the new reference:

```sh
python -m pytest benchmarks/test_query_index.py \\
    benchmarks/test_sweep_smoke.py \\
    benchmarks/test_columnar_ingest.py \\
    benchmarks/test_engine_eventloop.py -q
python tools/check_bench_regression.py --update
```

One-off noisy runners can widen the allowance without touching the
committed files via the `BENCH_REGRESSION_FACTOR` environment
variable.
"""


def _baseline_markdown(path: Path) -> str:
    doc = json.loads(path.read_text(encoding="utf-8"))
    lines = [f"## `{path.stem}`", ""]
    description = doc.get("description")
    if description:
        lines.extend([description, ""])
    lines.append(f"- **Baseline file:** `benchmarks/baselines/{path.name}`")
    lines.append(f"- **Gated results document:** `results/{doc['source']}`")
    lines.append(f"- **Allowed factor:** {doc.get('max_factor', '(default)')}")
    calibration = doc.get("calibration_s")
    if calibration is not None:
        lines.append(f"- **Baseline machine calibration:** {calibration} s")
    lines.append("")
    lines.append("| metric | baseline |")
    lines.append("|---|---|")
    for metric, value in sorted(doc.get("metrics", {}).items()):
        lines.append(f"| `{metric}` | {value} |")
    return "\n".join(lines) + "\n"


def benchmarks_markdown() -> str:
    """The full ``docs/BENCHMARKS.md`` body."""
    sections = [_PREAMBLE]
    for path in sorted(BASELINES.glob("*.json")):
        sections.append(_baseline_markdown(path))
    return "\n".join(sections)


def main(argv: list[str]) -> int:
    text = benchmarks_markdown()
    if "--check" in argv:
        current = TARGET.read_text(encoding="utf-8") if TARGET.exists() else ""
        if current != text:
            print(
                f"{TARGET.relative_to(REPO)} is out of date; "
                f"run: python tools/gen_bench_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{TARGET.relative_to(REPO)} is up to date")
        return 0
    TARGET.parent.mkdir(exist_ok=True)
    TARGET.write_text(text, encoding="utf-8")
    print(f"wrote {TARGET.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
