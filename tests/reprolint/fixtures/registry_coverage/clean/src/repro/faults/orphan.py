"""Fixture: registers a fault the package aggregator imports."""

from .base import Fault, register_fault


@register_fault
class OrphanFault(Fault):
    spec = "orphan"
