"""Query-path index benchmark (ROADMAP "fast as the hardware allows").

Populates one host's record store with 10k+ flow records spread across
a 64-switch fabric, then times the two Fig 12 query primitives —
``flows_matching`` and ``top_k_flows`` — through the per-switch
inverted index versus the pre-index linear scan
(:meth:`FlowRecordStore.linear_flows_through`, the old implementation
kept as reference).  Asserts the ≥5× speedup the index exists for, and
that both paths return byte-identical payloads (the equivalence the
property suite checks exhaustively on small cases)."""

import time

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.query import FlowSummary, QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP

from benchmarks.reporting import emit

N_RECORDS = 10_000
N_SWITCHES = 64
PATH_LEN = 3
K = 100
ROUNDS = 3
WINDOWS = [None, EpochRange(0, 9), EpochRange(40, 49)]


def build_store() -> FlowRecordStore:
    store = FlowRecordStore("bench-host")
    for i in range(N_RECORDS):
        first = i % (N_SWITCHES - PATH_LEN + 1)
        path = [f"S{first + j}" for j in range(PATH_LEN)]
        lo = (i * 7) % 50
        ranges = {sw: EpochRange(lo + j, lo + j + 1)
                  for j, sw in enumerate(path)}
        store.ingest(
            FlowKey(f"src{i}", f"dst{i % 96}", 1000 + i % 5000, 9,
                    PROTO_UDP),
            nbytes=100 + (i * 37) % 9000, t=1e-6 * i, priority=i % 3,
            ranges=ranges, switch_path=path,
            observed_epoch=lo)
    return store


def linear_flows_matching(store, switch, epochs):
    """The pre-index implementation of the §3 header filter."""
    return [FlowSummary.of(r)
            for r in store.linear_flows_through(switch, epochs)]


def linear_top_k(store, k, switch, epochs):
    """The pre-index implementation: full scan + full sort."""
    matches = store.linear_flows_through(switch, epochs)
    top = sorted(matches, key=lambda r: (-r.bytes, r.flow))[:k]
    return [FlowSummary.of(r) for r in top]


def time_queries(fn) -> float:
    """Seconds for one sweep of every (switch, window) combination."""
    start = time.perf_counter()
    for s in range(N_SWITCHES):
        for win in WINDOWS:
            fn(f"S{s}", win)
    return time.perf_counter() - start


def run_bench():
    store = build_store()
    engine = QueryEngine(store)
    # warm the per-switch sorted caches once, as a live system would be
    time_queries(lambda sw, win: engine.flows_matching(sw, win))

    indexed_match = min(time_queries(
        lambda sw, win: engine.flows_matching(sw, win))
        for _ in range(ROUNDS))
    linear_match = min(time_queries(
        lambda sw, win: linear_flows_matching(store, sw, win))
        for _ in range(ROUNDS))
    indexed_topk = min(time_queries(
        lambda sw, win: engine.top_k_flows(K, switch=sw, epochs=win))
        for _ in range(ROUNDS))
    linear_topk = min(time_queries(
        lambda sw, win: linear_top_k(store, K, sw, win))
        for _ in range(ROUNDS))
    return store, engine, (indexed_match, linear_match,
                           indexed_topk, linear_topk)


@pytest.mark.benchmark(group="query_index")
def test_query_index_speedup(benchmark):
    store, engine, times = benchmark.pedantic(run_bench, rounds=1,
                                              iterations=1)
    indexed_match, linear_match, indexed_topk, linear_topk = times
    match_speedup = linear_match / indexed_match
    topk_speedup = linear_topk / indexed_topk
    emit("query_index", [
        f"records per host: {len(store)}   switches: {N_SWITCHES}   "
        f"windows per sweep: {len(WINDOWS)}",
        f"flows_matching  linear: {linear_match * 1e3:8.2f} ms   "
        f"indexed: {indexed_match * 1e3:8.2f} ms   "
        f"speedup: {match_speedup:6.1f}x",
        f"top_{K}_flows    linear: {linear_topk * 1e3:8.2f} ms   "
        f"indexed: {indexed_topk * 1e3:8.2f} ms   "
        f"speedup: {topk_speedup:6.1f}x",
        "(index: per-switch buckets + sorted-by-epoch bisect; "
        "top-k on a bounded heap)"],
        data={
            "records": len(store),
            "switches": N_SWITCHES,
            "indexed_match_ms": round(indexed_match * 1e3, 3),
            "linear_match_ms": round(linear_match * 1e3, 3),
            "indexed_topk_ms": round(indexed_topk * 1e3, 3),
            "linear_topk_ms": round(linear_topk * 1e3, 3),
            "match_speedup": round(match_speedup, 2),
            "topk_speedup": round(topk_speedup, 2),
        })

    assert len(store) == N_RECORDS
    assert match_speedup >= 5, match_speedup
    assert topk_speedup >= 5, topk_speedup


@pytest.mark.benchmark(group="query_index")
def test_query_index_equivalence_at_scale(benchmark):
    """Byte-identical payloads, indexed vs linear, at the 10k scale."""

    def run():
        store = build_store()
        engine = QueryEngine(store)
        mismatches = 0
        for s in range(0, N_SWITCHES, 7):
            for win in WINDOWS:
                sw = f"S{s}"
                a = [x._astuple()
                     for x in engine.flows_matching(sw, win).payload]
                b = [x._astuple()
                     for x in linear_flows_matching(store, sw, win)]
                if a != b:
                    mismatches += 1
                ta = [x._astuple() for x in
                      engine.top_k_flows(K, switch=sw,
                                         epochs=win).payload]
                tb = [x._astuple()
                      for x in linear_top_k(store, K, sw, win)]
                if ta != tb:
                    mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0