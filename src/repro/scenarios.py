"""Reusable experiment scenarios — one per paper figure.

Each function builds the topology, instruments it with SwitchPointer,
runs the workload, and returns a result object holding the measured
series plus the live deployment (so callers can go on to run diagnoses).
Examples, tests, and the benchmark harness all share these definitions,
guaranteeing the numbers in EXPERIMENTS.md come from the same code the
test suite validates.

Scenario ↔ figure map
---------------------
========================================  ==========================
:func:`run_contention_scenario`           Fig 2(a)/2(b), Fig 7
:func:`run_red_lights_scenario`           Fig 3  (and §5.2 diagnosis)
:func:`run_cascades_scenario`             Fig 4  (and §5.3 diagnosis)
:func:`run_load_imbalance_scenario`       Fig 8  (§5.4 diagnosis)
========================================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .analyzer.apps import Verdict
from .deployment import SwitchPointerDeployment
from .hostd.triggers import VictimAlert
from .simnet.engine import Simulator
from .simnet.packet import PRIO_HIGH, PRIO_LOW, PRIO_MEDIUM, FlowKey
from .simnet.queues import DropTailFIFO, StrictPriorityQueue
from .simnet.stats import InterArrivalProbe, ThroughputProbe, attach_flow_tap
from .simnet.topology import Network
from .simnet.traffic import (TcpBulkTransfer, TcpTimedFlow, UdpCbrSource,
                             UdpSink, schedule_burst_batches)

#: Pica8-class deep shared buffer (the paper's testbed switch family has
#: multi-MB packet memory; a shallow buffer would clip the starvation
#: episodes that Fig 2 shows at m = 8, 16).
DEEP_BUFFER_BYTES = 4 * 1024 * 1024
GBPS = 1e9


def _priority_queue() -> StrictPriorityQueue:
    return StrictPriorityQueue(levels=3, capacity_bytes=DEEP_BUFFER_BYTES)


def _fifo_queue() -> DropTailFIFO:
    return DropTailFIFO(capacity_bytes=DEEP_BUFFER_BYTES)


# ---------------------------------------------------------------------------
# Fig 2 / Fig 7: too much traffic (priority + microburst contention)
# ---------------------------------------------------------------------------

@dataclass
class ContentionResult:
    """Output of one Fig 2 run (a single burst size m)."""

    m_flows: int
    discipline: str
    throughput: ThroughputProbe
    interarrival: InterArrivalProbe
    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    burst_start: float
    burst_duration: float
    alerts: list[VictimAlert] = field(default_factory=list)
    tcp_timeouts: int = 0

    def starvation_ms(self) -> float:
        """Length of the post-burst window with ~zero victim throughput."""
        zero = 0.0
        for t, gbps in self.throughput.series():
            if t < self.burst_start:
                continue
            if gbps < 0.02:
                zero += self.throughput.window
        return zero * 1000

    def max_gap_ms(self) -> float:
        """Largest victim inter-packet gap around the burst."""
        return self.interarrival.max_gap_in(
            self.burst_start, self.burst_start + 0.040) * 1000


def run_contention_scenario(m_flows: int, *, discipline: str = "priority",
                            duration: float = 0.100,
                            burst_start: float = 0.030,
                            burst_duration: float = 0.001,
                            alpha_ms: int = 10, k: int = 3,
                            epsilon_ms: float = 1.0, delta_ms: float = 2.0,
                            watch: bool = True) -> ContentionResult:
    """One Fig 2 cell: a victim TCP flow vs an m-flow UDP burst.

    Topology: dumbbell — senders behind S1, receivers behind S2, all
    burst flows have distinct source-destination pairs and share the
    S1→S2 trunk with the victim (Fig 1(a)).  ``discipline`` selects
    strict priority (Fig 2a) or FIFO (Fig 2b).
    """
    if discipline not in ("priority", "fifo"):
        raise ValueError("discipline must be 'priority' or 'fifo'")
    qf = _priority_queue if discipline == "priority" else _fifo_queue
    net = _build_dumbbell(m_flows, queue_factory=qf)
    deploy = SwitchPointerDeployment(net, alpha_ms=alpha_ms, k=k,
                                     epsilon_ms=epsilon_ms,
                                     delta_ms=delta_ms)
    sim = net.sim

    tput = ThroughputProbe(window=0.001)
    ia = InterArrivalProbe()

    def on_payload(pkt, t):
        tput.on_packet(pkt, t)
        ia.on_packet(pkt, t)

    victim_app = TcpTimedFlow(sim, net.hosts["h1_0"], net.hosts["h2_0"],
                              duration=duration, sport=100, dport=200,
                              priority=PRIO_LOW, on_payload=on_payload)
    victim = victim_app.sender.flow
    trigger = deploy.watch_flow(victim) if watch else None

    burst_prio = PRIO_HIGH if discipline == "priority" else PRIO_LOW
    senders = [net.hosts[f"h1_{j}"] for j in range(1, m_flows + 1)]
    receivers = [f"h2_{j}" for j in range(1, m_flows + 1)]
    for j in range(1, m_flows + 1):
        UdpSink(net.hosts[f"h2_{j}"], 7000)
    schedule_burst_batches(sim, senders, receivers, flow_counts=[m_flows],
                           first_start=burst_start,
                           burst_duration=burst_duration,
                           priority=burst_prio)
    net.run(until=duration + 0.050)
    if trigger is not None:
        trigger.stop()
    return ContentionResult(
        m_flows=m_flows, discipline=discipline, throughput=tput,
        interarrival=ia, deployment=deploy, network=net, victim=victim,
        burst_start=burst_start, burst_duration=burst_duration,
        alerts=list(deploy.alerts()),
        tcp_timeouts=victim_app.sender.timeouts)


def _build_dumbbell(m_flows: int, *, queue_factory) -> Network:
    """S1—S2 trunk; m+1 sender/receiver pairs on opposite sides."""
    net = Network()
    s1 = net.add_switch("S1")
    s2 = net.add_switch("S2")
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=queue_factory)
    for i in range(m_flows + 1):
        a = net.add_host(f"h1_{i}")
        b = net.add_host(f"h2_{i}")
        net.connect(a, s1, rate_bps=GBPS, queue_factory=queue_factory)
        net.connect(b, s2, rate_bps=GBPS, queue_factory=queue_factory)
    net.compute_routes()
    return net


# ---------------------------------------------------------------------------
# Fig 3: too many red lights
# ---------------------------------------------------------------------------

@dataclass
class RedLightsResult:
    """Output of the Fig 3 run."""

    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    tput_at_s1: ThroughputProbe      # victim throughput leaving S1
    tput_at_s2: ThroughputProbe      # victim throughput leaving S2
    tput_at_dst: ThroughputProbe
    alerts: list[VictimAlert] = field(default_factory=list)
    burst1: tuple[float, float] = (0.0, 0.0)   # (start, duration) at S1
    burst2: tuple[float, float] = (0.0, 0.0)   # at S2


def build_red_lights_network() -> Network:
    """Fig 1(b): A,B—S1—S2—S3—E,F with C,D on S2."""
    net = Network()
    s1, s2, s3 = (net.add_switch(n) for n in ("S1", "S2", "S3"))
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=_priority_queue)
    net.connect(s2, s3, rate_bps=GBPS, queue_factory=_priority_queue)
    placement = {"A": s1, "B": s1, "C": s2, "D": s2, "E": s3, "F": s3}
    for name, sw in placement.items():
        host = net.add_host(name)
        net.connect(host, sw, rate_bps=GBPS,
                    queue_factory=_priority_queue)
    net.compute_routes()
    return net


def run_red_lights_scenario(*, burst_duration: float = 0.0004,
                            first_burst: float = 0.005,
                            tcp_duration: float = 0.010,
                            alpha_ms: int = 10, k: int = 3,
                            epsilon_ms: float = 1.0,
                            delta_ms: float = 2.0) -> RedLightsResult:
    """Fig 1(b)/Fig 3: sequential 400 µs red lights at S1 then S2.

    Low-priority TCP A→F crosses S1,S2,S3.  High-priority UDP B→D hits
    the S1→S2 trunk for 400 µs; as it ends, UDP C→E hits the S2→S3
    trunk for another 400 µs.  The victim's throughput degrades at S1
    and again, cumulatively, at S2.
    """
    net = build_red_lights_network()
    deploy = SwitchPointerDeployment(net, alpha_ms=alpha_ms, k=k,
                                     epsilon_ms=epsilon_ms,
                                     delta_ms=delta_ms)
    sim = net.sim

    tput_dst = ThroughputProbe(window=0.0005)
    victim_app = TcpTimedFlow(sim, net.hosts["A"], net.hosts["F"],
                              duration=tcp_duration, sport=100, dport=200,
                              priority=PRIO_LOW,
                              on_payload=tput_dst.on_packet)
    victim = victim_app.sender.flow
    deploy.watch_flow(victim, window=0.001)

    tput_s1 = ThroughputProbe(window=0.0005)
    tput_s2 = ThroughputProbe(window=0.0005)
    attach_flow_tap(net.link_between("S1", "S2").iface_of(
        net.switches["S1"]), victim, tput_s1)
    attach_flow_tap(net.link_between("S2", "S3").iface_of(
        net.switches["S2"]), victim, tput_s2)

    UdpSink(net.hosts["D"], 7100)
    UdpSink(net.hosts["E"], 7200)
    second_burst = first_burst + burst_duration
    UdpCbrSource(sim, net.hosts["B"], "D", sport=7100, dport=7100,
                 rate_bps=GBPS, priority=PRIO_HIGH, start=first_burst,
                 duration=burst_duration)
    UdpCbrSource(sim, net.hosts["C"], "E", sport=7200, dport=7200,
                 rate_bps=GBPS, priority=PRIO_HIGH, start=second_burst,
                 duration=burst_duration)
    net.run(until=tcp_duration + 0.020)
    return RedLightsResult(
        deployment=deploy, network=net, victim=victim,
        tput_at_s1=tput_s1, tput_at_s2=tput_s2, tput_at_dst=tput_dst,
        alerts=list(deploy.alerts()),
        burst1=(first_burst, burst_duration),
        burst2=(second_burst, burst_duration))


# ---------------------------------------------------------------------------
# Fig 4: traffic cascades
# ---------------------------------------------------------------------------

@dataclass
class CascadesResult:
    """Output of one Fig 4 run (with or without the cascade)."""

    cascaded: bool
    deployment: SwitchPointerDeployment
    network: Network
    tput_bd: ThroughputProbe
    tput_af: ThroughputProbe
    tput_ce: ThroughputProbe
    flow_bd: FlowKey
    flow_af: FlowKey
    flow_ce: FlowKey
    ce_completed_at: Optional[float]
    alerts: list[VictimAlert] = field(default_factory=list)


def build_cascades_network(*, reroute_bd: bool) -> Network:
    """Fig 1(c) topology; ``reroute_bd`` gives B a bypass to S2.

    With the bypass (the no-cascade baseline), flow B→D reaches D via
    S1b→S2 without touching the S1→S2 trunk — standing in for "B-D on a
    different path" before the failure reroutes it.
    """
    net = Network()
    s1, s2, s3 = (net.add_switch(n) for n in ("S1", "S2", "S3"))
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=_priority_queue)
    net.connect(s2, s3, rate_bps=GBPS, queue_factory=_priority_queue)
    placement = {"A": s1, "C": s2, "D": s2, "E": s3, "F": s3}
    if reroute_bd:
        s1b = net.add_switch("S1b")
        net.connect(s1b, s2, rate_bps=GBPS, queue_factory=_priority_queue)
        placement["B"] = s1b
    else:
        placement["B"] = s1
    for name, sw in placement.items():
        host = net.add_host(name)
        net.connect(host, sw, rate_bps=GBPS,
                    queue_factory=_priority_queue)
    net.compute_routes()
    return net


def run_cascades_scenario(*, cascaded: bool = True,
                          udp_duration: float = 0.010,
                          ce_bytes: int = 2_000_000,
                          ce_start: float = 0.012,
                          alpha_ms: int = 10, k: int = 3,
                          epsilon_ms: float = 1.0,
                          delta_ms: float = 2.0) -> CascadesResult:
    """Fig 1(c)/Fig 4: B→D (high) delays A→F (middle) delays C→E (low).

    ``cascaded=False`` reroutes B→D off the S1→S2 trunk, so A→F drains
    on time and C→E finds an idle S2→S3 trunk (Fig 4(a)); with
    ``cascaded=True`` the chain of delays forms (Fig 4(b)).
    """
    net = build_cascades_network(reroute_bd=not cascaded)
    deploy = SwitchPointerDeployment(net, alpha_ms=alpha_ms, k=k,
                                     epsilon_ms=epsilon_ms,
                                     delta_ms=delta_ms)
    sim = net.sim

    tput_bd = ThroughputProbe(window=0.001)
    tput_af = ThroughputProbe(window=0.001)
    tput_ce = ThroughputProbe(window=0.001)

    UdpSink(net.hosts["D"], 7100,
            on_packet=tput_bd.on_packet)
    UdpSink(net.hosts["F"], 7300,
            on_packet=tput_af.on_packet)

    src_bd = UdpCbrSource(sim, net.hosts["B"], "D", sport=7100, dport=7100,
                          rate_bps=GBPS, priority=PRIO_HIGH, start=0.0,
                          duration=udp_duration)
    src_af = UdpCbrSource(sim, net.hosts["A"], "F", sport=7300, dport=7300,
                          rate_bps=GBPS, priority=PRIO_MEDIUM, start=0.0,
                          duration=udp_duration)
    ce_app = TcpBulkTransfer(sim, net.hosts["C"], net.hosts["E"],
                             nbytes=ce_bytes, sport=100, dport=200,
                             priority=PRIO_LOW, start=ce_start,
                             on_payload=tput_ce.on_packet)
    flow_ce = ce_app.sender.flow
    deploy.watch_flow(flow_ce, window=0.001)

    net.run(until=0.080)
    return CascadesResult(
        cascaded=cascaded, deployment=deploy, network=net,
        tput_bd=tput_bd, tput_af=tput_af, tput_ce=tput_ce,
        flow_bd=src_bd.flow, flow_af=src_af.flow, flow_ce=flow_ce,
        ce_completed_at=ce_app.completed_at,
        alerts=list(deploy.alerts()))


# ---------------------------------------------------------------------------
# Fig 8 / §5.4: load imbalance
# ---------------------------------------------------------------------------

@dataclass
class LoadImbalanceResult:
    """Output of one Fig 8 run (n servers with relevant flows)."""

    n_servers: int
    deployment: SwitchPointerDeployment
    network: Network
    suspect_switch: str
    flow_sizes: dict[FlowKey, int]
    small_egress: str
    large_egress: str
    last_epoch: int


def build_load_imbalance_network(n_servers: int) -> Network:
    """Senders behind S1; S1 reaches S2 via two spines (two egresses).

    Trunk links are fat (100 Gbps) on purpose: the §5.4 experiment is
    about the *forwarding split*, not congestion — at 96 concurrent
    flows the aggregate must not saturate the spines, or drops would
    blur the received-size separation the diagnosis looks for.
    """
    net = Network()
    s1 = net.add_switch("S1")
    spine_a = net.add_switch("SPA")
    spine_b = net.add_switch("SPB")
    s2 = net.add_switch("S2")
    for spine in (spine_a, spine_b):
        net.connect(s1, spine, rate_bps=100 * GBPS,
                    queue_factory=_fifo_queue)
        net.connect(spine, s2, rate_bps=100 * GBPS,
                    queue_factory=_fifo_queue)
    for i in range(n_servers):
        tx = net.add_host(f"tx{i}")
        rx = net.add_host(f"rx{i}")
        net.connect(tx, s1, rate_bps=10 * GBPS, queue_factory=_fifo_queue)
        net.connect(rx, s2, rate_bps=10 * GBPS, queue_factory=_fifo_queue)
    net.compute_routes()
    return net


def run_load_imbalance_scenario(n_servers: int, *,
                                small_bytes: int = 500_000,
                                large_bytes: int = 2_000_000,
                                size_threshold: int = 1_000_000,
                                alpha_ms: int = 10,
                                k: int = 3) -> LoadImbalanceResult:
    """§5.4: a malfunctioning switch splits flows by size across egresses.

    ``n_servers`` flows (alternating small/large), each to a distinct
    receiver — the Fig 8 x-axis is exactly the number of servers holding
    relevant flow records.
    """
    if n_servers < 2:
        raise ValueError("need at least two servers for two size classes")
    net = build_load_imbalance_network(n_servers)
    deploy = SwitchPointerDeployment(net, alpha_ms=alpha_ms, k=k)
    sim = net.sim
    s1 = net.switches["S1"]

    flow_sizes: dict[FlowKey, int] = {}
    sources: list[UdpCbrSource] = []
    for i in range(n_servers):
        UdpSink(net.hosts[f"rx{i}"], 7000)
        nbytes = small_bytes if i % 2 == 0 else large_bytes
        rate = 2 * GBPS
        duration = nbytes * 8 / rate
        src = UdpCbrSource(sim, net.hosts[f"tx{i}"], f"rx{i}", sport=7000,
                           dport=7000, rate_bps=rate, packet_size=1500,
                           priority=PRIO_LOW, start=0.0,
                           duration=duration)
        flow_sizes[src.flow] = nbytes
        sources.append(src)

    # The malfunction: flows under the threshold exit via spine A,
    # the rest via spine B (the paper's misconfigured interface split).
    iface_a = net.link_between("S1", "SPA").iface_of(s1)
    iface_b = net.link_between("S1", "SPB").iface_of(s1)

    def malfunction(pkt, candidates):
        if iface_a not in candidates or iface_b not in candidates:
            return None
        size = flow_sizes.get(pkt.flow)
        if size is None:
            return None
        return iface_a if size < size_threshold else iface_b

    s1.forwarding_override = malfunction
    net.run(until=0.050)
    last_epoch = deploy.datapaths["S1"].clock.epoch_of(sim.now)
    return LoadImbalanceResult(
        n_servers=n_servers, deployment=deploy, network=net,
        suspect_switch="S1", flow_sizes=flow_sizes,
        small_egress="SPA", large_egress="SPB", last_epoch=last_epoch)
