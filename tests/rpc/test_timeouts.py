"""Timeout/retry/backoff: partial answers instead of hangs.

A fan-out server that fails the ``responsive`` predicate burns a
bounded retry budget and is simply absent from the result dict; the
budget is the closed form of ``timeout_retry_cost`` and is paid
*concurrently* by however many servers are down.
"""

import pytest

from repro.hostd.query import QueryResult
from repro.rpc.fabric import LatencyModel, RpcFabric
from repro.simnet.engine import Simulator


def result(scanned=10):
    return QueryResult(payload=None, records_scanned=scanned)


class TestRetryBudget:
    def test_closed_form(self):
        """(1 + retries) timeouts plus the exponential backoff series."""
        model = LatencyModel(timeout_s=0.020, retries=2,
                             backoff_s=0.005, backoff_factor=2.0)
        rpc = RpcFabric(model)
        assert rpc.timeout_retry_cost() == pytest.approx(
            3 * 0.020 + 0.005 + 0.010)

    def test_no_retries_is_a_single_timeout(self):
        rpc = RpcFabric(LatencyModel(retries=0))
        assert rpc.timeout_retry_cost() == pytest.approx(
            rpc.model.timeout_s)


class TestUnresponsiveServers:
    def test_dead_server_absent_not_hanging(self):
        rpc = RpcFabric()
        results, _ = rpc.fanout_query(
            ["up", "down"], lambda s: result(),
            responsive=lambda s: s != "down")
        assert set(results) == {"up"}
        assert rpc.timeouts == 1
        assert rpc.attempts_wasted == 1 + rpc.model.retries

    def test_dead_server_query_never_executes(self):
        rpc = RpcFabric()
        called = []

        def execute(s):
            called.append(s)
            return result()

        rpc.fanout_query(["a", "b"], execute,
                         responsive=lambda s: s == "a")
        assert called == ["a"]

    def test_retry_storm_is_bounded_and_concurrent(self):
        """Three dead servers cost one retry budget, not three."""
        one, three = RpcFabric(), RpcFabric()
        _, bd1 = one.fanout_query(
            ["up", "d1"], lambda s: result(),
            responsive=lambda s: s == "up")
        _, bd3 = three.fanout_query(
            ["up", "d1", "d2", "d3"], lambda s: result(),
            responsive=lambda s: s == "up")
        assert bd3.parts["timeout_retry"] == pytest.approx(
            bd1.parts["timeout_retry"])
        assert three.timeouts == 3
        assert three.attempts_wasted == 3 * (1 + three.model.retries)

    def test_timeout_phase_is_only_the_overhang(self):
        """The dead server's clock runs concurrently with the live
        answers; only the part outliving them is extra latency."""
        rpc = RpcFabric()
        _, bd = rpc.fanout_query(
            ["up", "down"], lambda s: result(),
            responsive=lambda s: s == "up")
        tail = bd.parts["query_execution"] + bd.parts["response"]
        assert bd.parts["timeout_retry"] == pytest.approx(
            rpc.timeout_retry_cost() - tail)

    def test_all_dead_yields_empty_partial_answer(self):
        rpc = RpcFabric()
        results, bd = rpc.fanout_query(
            ["a", "b"], lambda s: result(), responsive=lambda s: False)
        assert results == {}
        assert rpc.timeouts == 2
        assert bd.parts["timeout_retry"] > 0


class TestSimBoundClock:
    def test_bound_fabric_charges_simulated_time(self):
        sim = Simulator()
        rpc = RpcFabric()
        rpc.bind(sim)
        _, bd = rpc.fanout_query(
            ["up", "down"], lambda s: result(),
            responsive=lambda s: s == "up")
        assert sim.now == pytest.approx(bd.total)

    def test_unbound_fabric_is_pure_accounting(self):
        sim = Simulator()
        rpc = RpcFabric()
        _, bd = rpc.fanout_query(["a"], lambda s: result())
        assert sim.now == 0.0
        assert bd.total > 0

    def test_hop_count_adds_wire_cost(self):
        sim = Simulator()
        rpc = RpcFabric()
        rpc.bind(sim, hops_to=lambda s: 4)
        _, bd = rpc.fanout_query(["a"], lambda s: result())
        m = rpc.model
        assert bd.parts["query_execution"] == pytest.approx(
            m.exec_base_s + 10 * m.per_record_s + 4 * m.per_hop_s)

    def test_with_extra_slows_every_wire_constant(self):
        base, slow = LatencyModel(), LatencyModel().with_extra(2e-3)
        assert slow.alert_rtt_s == pytest.approx(base.alert_rtt_s + 2e-3)
        assert slow.pointer_pull_s == pytest.approx(
            base.pointer_pull_s + 2e-3)
        assert slow.request_s == pytest.approx(base.request_s + 2e-3)
        assert slow.per_record_s == base.per_record_s

    def test_with_extra_validates(self):
        with pytest.raises(ValueError):
            LatencyModel().with_extra(-1e-3)
        assert LatencyModel().with_extra(0.0) is not None
