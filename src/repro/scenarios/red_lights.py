"""Fig 3: too many red lights (sequential per-switch contention)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_red_lights
from ..deployment import SwitchPointerDeployment
from ..hostd.triggers import VictimAlert
from ..simnet.packet import PRIO_HIGH, PRIO_LOW, FlowKey
from ..simnet.stats import ThroughputProbe, attach_flow_tap
from ..simnet.topology import Network
from ..simnet.traffic import TcpTimedFlow, UdpCbrSource, UdpSink
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS, priority_queue


@dataclass
class RedLightsResult:
    """Output of the Fig 3 run."""

    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    tput_at_s1: ThroughputProbe      # victim throughput leaving S1
    tput_at_s2: ThroughputProbe      # victim throughput leaving S2
    tput_at_dst: ThroughputProbe
    alerts: list[VictimAlert] = field(default_factory=list)
    burst1: tuple[float, float] = (0.0, 0.0)   # (start, duration) at S1
    burst2: tuple[float, float] = (0.0, 0.0)   # at S2


def build_red_lights_network() -> Network:
    """Fig 1(b): A,B—S1—S2—S3—E,F with C,D on S2."""
    net = Network()
    s1, s2, s3 = (net.add_switch(n) for n in ("S1", "S2", "S3"))
    net.connect(s1, s2, rate_bps=GBPS, queue_factory=priority_queue)
    net.connect(s2, s3, rate_bps=GBPS, queue_factory=priority_queue)
    placement = {"A": s1, "B": s1, "C": s2, "D": s2, "E": s3, "F": s3}
    for name, sw in placement.items():
        host = net.add_host(name)
        net.connect(host, sw, rate_bps=GBPS,
                    queue_factory=priority_queue)
    net.compute_routes()
    return net


@register
class RedLightsScenario(Scenario):
    """Fig 1(b)/Fig 3: sequential 400 µs red lights at S1 then S2.

    Low-priority TCP A→F crosses S1,S2,S3.  High-priority UDP B→D hits
    the S1→S2 trunk for 400 µs; as it ends, UDP C→E hits the S2→S3
    trunk for another 400 µs.  The victim's throughput degrades at S1
    and again, cumulatively, at S2.
    """

    spec = ScenarioSpec(
        name="red-lights",
        summary="back-to-back bursts delay one victim at successive "
                "switches",
        paper_ref="Fig 1(b), Fig 3; §5.2 'too many red lights'",
        expected_diagnosis="too-many-red-lights",
        knobs={
            "burst_duration": Knob(0.0004, "length of each burst (s)"),
            "first_burst": Knob(0.005, "onset of the S1→S2 burst (s)"),
            "tcp_duration": Knob(0.010, "victim TCP flow duration (s)"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            "epsilon_ms": Knob(1.0, "clock-skew bound ε (ms)"),
            "delta_ms": Knob(2.0, "one-hop-delay bound Δ (ms)"),
        },
        aliases=("fig3",),
        smoke_knobs={},
    )

    def build(self) -> None:
        p = self.p
        net = build_red_lights_network()
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"],
            epsilon_ms=p["epsilon_ms"], delta_ms=p["delta_ms"])
        self.network, self.deployment = net, deploy

        self.tput_dst = ThroughputProbe(window=0.0005)
        victim_app = TcpTimedFlow(
            net.sim, net.hosts["A"], net.hosts["F"],
            duration=p["tcp_duration"], sport=100, dport=200,
            priority=PRIO_LOW, on_payload=self.tput_dst.on_packet)
        self.victim = victim_app.sender.flow
        deploy.watch_flow(self.victim, window=0.001)

        self.tput_s1 = ThroughputProbe(window=0.0005)
        self.tput_s2 = ThroughputProbe(window=0.0005)
        attach_flow_tap(net.link_between("S1", "S2").iface_of(
            net.switches["S1"]), self.victim, self.tput_s1)
        attach_flow_tap(net.link_between("S2", "S3").iface_of(
            net.switches["S2"]), self.victim, self.tput_s2)

        UdpSink(net.hosts["D"], 7100)
        UdpSink(net.hosts["E"], 7200)
        self.second_burst = p["first_burst"] + p["burst_duration"]
        UdpCbrSource(net.sim, net.hosts["B"], "D", sport=7100, dport=7100,
                     rate_bps=GBPS, priority=PRIO_HIGH,
                     start=p["first_burst"],
                     duration=p["burst_duration"])
        UdpCbrSource(net.sim, net.hosts["C"], "E", sport=7200, dport=7200,
                     rate_bps=GBPS, priority=PRIO_HIGH,
                     start=self.second_burst,
                     duration=p["burst_duration"])

    def run(self) -> None:
        self.network.run(until=self.p["tcp_duration"] + 0.020)

    def collect(self) -> dict:
        p = self.p
        self.payload = RedLightsResult(
            deployment=self.deployment, network=self.network,
            victim=self.victim, tput_at_s1=self.tput_s1,
            tput_at_s2=self.tput_s2, tput_at_dst=self.tput_dst,
            alerts=list(self.deployment.alerts()),
            burst1=(p["first_burst"], p["burst_duration"]),
            burst2=(self.second_burst, p["burst_duration"]))
        return {
            "alerts": len(self.payload.alerts),
            "victim_bytes": self.tput_dst.total_bytes,
        }

    def diagnose(self) -> list[Verdict]:
        alerts = self.deployment.alerts()
        if not alerts:
            return []
        return [diagnose_red_lights(self.deployment.analyzer, alerts[0])]


def run_red_lights_scenario(*, burst_duration: float = 0.0004,
                            first_burst: float = 0.005,
                            tcp_duration: float = 0.010,
                            alpha_ms: int = 10, k: int = 3,
                            epsilon_ms: float = 1.0,
                            delta_ms: float = 2.0) -> RedLightsResult:
    """Fig 3 run (functional entry point kept for examples/tests)."""
    sc = RedLightsScenario(
        burst_duration=burst_duration, first_burst=first_burst,
        tcp_duration=tcp_duration, alpha_ms=alpha_ms, k=k,
        epsilon_ms=epsilon_ms, delta_ms=delta_ms)
    sc.build()
    sc.run()
    sc.collect()
    return sc.payload
