"""Render ``docs/SWEEPS.md`` from the sweep registry metadata.

Same one-source-of-truth idiom as the scenario catalogue: the page and
``python -m repro.cli sweep list`` render identical
:class:`~repro.sweep.registry.SweepSpec` objects.  Refresh with::

    python tools/gen_sweep_docs.py

A tier-1 test (and the CI docs job) asserts the checked-in page matches
this renderer's output.
"""

from __future__ import annotations

from typing import Sequence

from .registry import SWEEPS, SweepSpec
from .report import SCHEMA

_PREAMBLE = """\
# Scale sweeps

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_sweep_docs.py -->

A *sweep* executes one registered scenario across a parameter grid —
the thousand-host **fabric** axis and the thousand-flow **traffic**
axis that the single-run scenario catalogue
([SCENARIOS.md](SCENARIOS.md)) does not cover.  Run one with

```sh
python -m repro.cli sweep run <sweep> [--grid axis=v1,v2,...] ...
```

and list the registered sweeps with `python -m repro.cli sweep list`.
Sweeps are registered under their own names: several sweeps may
exercise the same scenario along different axes (`incast` scales the
fabric population, `incast-scale` the concurrent-flow population).

## Grid syntax

Each `--grid` flag takes one or more `axis=v1,v2,...` expressions and
may repeat — `--grid hosts=256 flows=2000` and
`--grid hosts=256 --grid flows=2000` are the same grid; values are
coerced to bool/int/float/str.  The sweep runs the cartesian product of
all axes in row-major order (last axis fastest).  Axes are declared per
sweep (tables below) and bind to scenario knobs; anything not on an
axis can still be pinned for every point with `--knob key=value`.

The shared `flows` axis drives the synthetic background flow
population ([WORKLOADS.md](WORKLOADS.md)): hundreds to thousands of
concurrent flows planned in batches and emitted by one heap-driven
source, so the diagnosis layers are stressed by traffic scale, not the
generator.

## Worker model and seeds

Grid points are independent experiments: they execute in
`multiprocessing` workers (`--workers N`, default = CPU count capped at
the point count; `1` = inline, no pool).  Every point derives a stable
seed from `(base seed, point index)` via CRC32, applied before the
scenario builds — so any point reproduces bit-for-bit, regardless of
worker count or completion order, by replaying its recorded `knobs`
and `seed` from the report:
`python -m repro.cli run <scenario> --seed <seed> --knob key=value ...`

## The nightly driver

```sh
python -m repro.cli sweep nightly [--out-dir DIR] [--workers N]
                                  [--seed N] [--only NAME ...]
```

expands **every registered sweep** at its reduced nightly grid and
writes one `sweep_nightly_<name>.json` report per sweep — the
registry-driven replacement for hard-coding one CI step per sweep.
Registration requires a nightly grid, so a new sweep joins the
scheduled CI run (and its artifact upload) automatically.  Exit status
is non-zero if any sweep had an errored or misdiagnosed point.

## Report schema (`{schema}`)

`sweep run` writes one JSON document (default `results/sweep_<name>.json`):

| field | meaning |
|---|---|
| `schema` | schema id, currently `{schema}` |
| `sweep` | registry name of the sweep that produced the report |
| `scenario`, `expect_problem` | what ran and the verdict that counts as correct |
| `base_seed`, `workers`, `grid` | reproduction identity |
| `points[]` | one entry per grid point (below) |
| `summary` | point/ok/error counts, max peak records, max flow count, total wall time |

Each point carries `index`, `params` (axis values), `knobs` (resolved
scenario knobs), `seed`, `ok` / `diagnosis_ok`, `problems` / `suspects`
(analyzer verdicts), `wall_time_s` + per-phase `phase_s`, `sim_time_s`,
`flow_count` (concurrent flows the point drove, scenario + background),
`peak_records` / `total_records` / `evicted_records` (host record-table
footprint), `ingest_records_per_s` (decoded packets folded into host
record tables per wall-clock second of the run phase), scenario
`measurements`, and `error` (null unless the point raised).
`repro.sweep.validate_report` checks the structure — including
rejecting unknown top-level fields, so a typo in a hand-edited report
fails loudly — and the CI benchmark-regression gate
(`tools/check_bench_regression.py`) validates before trusting any
number.
"""


def _grid_cell(values: Sequence[object]) -> str:
    return ",".join(str(v) for v in values) if values else "(not swept)"


def _spec_markdown(spec: SweepSpec) -> str:
    lines = [f"## `{spec.name}`", "", spec.summary, ""]
    lines.append(f"- **Scenario:** `{spec.scenario}` (see SCENARIOS.md)")
    correct = f"`{spec.expect_problem}`"
    if spec.expect_suspect_knob:
        correct += f" naming the `{spec.expect_suspect_knob}` knob's value"
    lines.append(f"- **Correct diagnosis:** {correct}")
    if spec.base_knobs:
        pinned = ", ".join(f"`{k}={v!r}`" for k, v in sorted(spec.base_knobs.items()))
        lines.append(f"- **Pinned knobs:** {pinned}")
    lines.append(f"- **Run:** `{spec.cli_example}`")
    lines.append("")
    lines.append("| axis | binds knob | default grid | nightly grid |")
    lines.append("|---|---|---|---|")
    for axis, knob in spec.axes.items():
        default = _grid_cell(spec.default_grid.get(axis))
        nightly = _grid_cell(spec.nightly_grid.get(axis))
        lines.append(f"| `{axis}` | `{knob}` | `{default}` | `{nightly}` |")
    if spec.nightly_points:
        points = "; ".join(
            "`" + " ".join(f"{a}={v}" for a, v in point.items()) + "`"
            for point in spec.nightly_points
        )
        lines.append("")
        lines.append(f"Extra nightly point(s) beyond the cartesian grid: {points}.")
    if spec.budget_note:
        lines.append("")
        lines.append(f"**Wall-time budget:** {spec.budget_note}")
    return "\n".join(lines) + "\n"


def sweeps_markdown() -> str:
    """The full ``docs/SWEEPS.md`` body."""
    sections = [_PREAMBLE.replace("{schema}", SCHEMA)]
    sections.extend(_spec_markdown(spec) for spec in SWEEPS.specs())
    return "\n".join(sections)
