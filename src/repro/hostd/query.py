"""Host-side query engine (§4.2.2, §5.4, §6.2).

The analyzer sends hosts queries over the agent RPC; these are the query
implementations PathDump/SwitchPointer hosts execute locally:

* :meth:`QueryEngine.top_k_flows` — the Fig 12 "top-100 flows at a
  switch" query.
* :meth:`QueryEngine.flow_size_distribution` — the §5.4 load-imbalance
  query, grouped by the egress interface (next hop after the suspect
  switch).
* :meth:`QueryEngine.flows_matching` — the generic (switchID, epochID)
  header filter of §3.
* :meth:`QueryEngine.flow_details` — telemetry for one flow (priority,
  per-epoch bytes) used during contention diagnosis (§5.1).

Every method reports ``records_scanned`` so the RPC latency model can
charge execution cost proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey
from .records import FlowRecord, FlowRecordStore


@dataclass
class QueryResult:
    """Query payload + the execution-cost accounting the RPC model uses."""

    payload: object
    records_scanned: int = 0
    records_returned: int = 0


@dataclass
class FlowSummary:
    """Wire form of one flow's telemetry sent back to the analyzer."""

    flow: FlowKey
    bytes: int
    packets: int
    priority: int
    switch_path: list[str] = field(default_factory=list)
    epoch_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    bytes_by_epoch: dict[int, int] = field(default_factory=dict)

    @classmethod
    def of(cls, rec: FlowRecord) -> "FlowSummary":
        return cls(flow=rec.flow, bytes=rec.bytes, packets=rec.packets,
                   priority=rec.priority,
                   switch_path=list(rec.switch_path),
                   epoch_ranges={sw: (r.lo, r.hi)
                                 for sw, r in rec.epoch_ranges.items()},
                   bytes_by_epoch=dict(rec.bytes_by_epoch))

    def epochs_at(self, switch: str) -> Optional[EpochRange]:
        pair = self.epoch_ranges.get(switch)
        return EpochRange(*pair) if pair else None


class QueryEngine:
    """Executes analyzer queries against one host's record store."""

    def __init__(self, store: FlowRecordStore):
        self.store = store
        self.queries_served = 0

    def _scan(self, switch: Optional[str],
              epochs: Optional[EpochRange]) -> tuple[list[FlowRecord], int]:
        scanned = len(self.store)
        if switch is None:
            return list(self.store), scanned
        return self.store.flows_through(switch, epochs), scanned

    def top_k_flows(self, k: int, *, switch: Optional[str] = None,
                    epochs: Optional[EpochRange] = None) -> QueryResult:
        """The ``k`` largest flows (by bytes) seen through ``switch``."""
        if k < 1:
            raise ValueError("k must be >= 1")
        self.queries_served += 1
        matches, scanned = self._scan(switch, epochs)
        top = sorted(matches, key=lambda r: (-r.bytes, r.flow))[:k]
        payload = [FlowSummary.of(r) for r in top]
        return QueryResult(payload=payload, records_scanned=scanned,
                           records_returned=len(payload))

    def flow_size_distribution(self, *, switch: str,
                               epochs: Optional[EpochRange] = None
                               ) -> QueryResult:
        """Flow sizes grouped by the next hop after ``switch``.

        The next hop identifies the egress interface the suspect switch
        used, which is exactly what the §5.4 imbalance diagnosis
        compares across interfaces.
        """
        self.queries_served += 1
        matches, scanned = self._scan(switch, epochs)
        dist: dict[str, list[int]] = {}
        for rec in matches:
            nxt = self._next_hop_after(rec, switch)
            dist.setdefault(nxt, []).append(rec.bytes)
        return QueryResult(payload=dist, records_scanned=scanned,
                           records_returned=len(matches))

    def _next_hop_after(self, rec: FlowRecord, switch: str) -> str:
        path = rec.switch_path
        if switch in path:
            idx = path.index(switch)
            if idx + 1 < len(path):
                return path[idx + 1]
        return rec.flow.dst  # switch was the last hop: egress to the host

    def all_flows(self) -> QueryResult:
        """Every record on this host (path-conformance sweeps)."""
        self.queries_served += 1
        payload = [FlowSummary.of(r) for r in self.store]
        return QueryResult(payload=payload,
                           records_scanned=len(self.store),
                           records_returned=len(payload))

    def flows_matching(self, switch: str,
                       epochs: Optional[EpochRange] = None) -> QueryResult:
        """All flows whose headers match the (switchID, epochID) filter."""
        self.queries_served += 1
        matches, scanned = self._scan(switch, epochs)
        payload = [FlowSummary.of(r) for r in matches]
        return QueryResult(payload=payload, records_scanned=scanned,
                           records_returned=len(payload))

    def flow_details(self, flow: FlowKey) -> QueryResult:
        """Telemetry for one flow (None payload when unknown here)."""
        self.queries_served += 1
        rec = self.store.get(flow)
        payload = FlowSummary.of(rec) if rec else None
        return QueryResult(payload=payload, records_scanned=1,
                           records_returned=1 if rec else 0)
