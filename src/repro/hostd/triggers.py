"""End-host event triggers (§4.2.2, §5.1).

The paper instruments hosts with "a simple trigger that detects drastic
throughput changes: it measures throughput every 1 ms and generates an
alert to the analyzer if throughput drop is more than 50%".  The alert
carries ``<switchID, list of epochIDs, byte counts per epoch>`` tuples
assembled from the victim's flow record.

:class:`ThroughputDropTrigger` reproduces that heuristic with a
simulator-driven 1 ms evaluation timer (packet-driven evaluation alone
would sleep through total starvation — precisely the event we must
catch).  :class:`TcpTimeoutTrigger` fires on retransmission timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.epoch import EpochRange
from ..simnet.engine import PeriodicTimer, Simulator
from ..simnet.packet import FlowKey, Packet
from ..simnet.tcp import TcpSender
from .records import FlowRecord, FlowRecordStore


@dataclass
class SwitchEpochTuple:
    """One per-switch entry of an alert (§5.1's alert payload)."""

    switch: str
    epochs: EpochRange
    bytes_by_epoch: dict[int, int] = field(default_factory=dict)


@dataclass
class VictimAlert:
    """What a host sends the analyzer when a trigger fires."""

    flow: FlowKey
    host: str
    time: float
    kind: str                      # "throughput-drop" | "tcp-timeout" | ...
    drop_ratio: float = 0.0
    rate_before_gbps: float = 0.0
    rate_after_gbps: float = 0.0
    tuples: list[SwitchEpochTuple] = field(default_factory=list)

    @property
    def switch_path(self) -> list[str]:
        return [t.switch for t in self.tuples]


def alert_tuples_from_record(rec: FlowRecord,
                             restrict: Optional[EpochRange] = None
                             ) -> list[SwitchEpochTuple]:
    """Assemble the alert payload from a victim's flow record.

    ``restrict`` narrows each per-switch range to the epochs around the
    triggering event (the paper's alert reports "when and where packets
    of the TCP flow visit" — the *when* is the drop window, not the
    flow's whole lifetime).  A switch whose recorded range misses the
    restriction entirely keeps its recorded range: conservative, never
    empty.
    """
    out = []
    for sw in rec.switch_path:
        rng = rec.epochs_at(sw)
        if rng is None:
            continue
        if restrict is not None and rng.intersects(restrict):
            rng = EpochRange(max(rng.lo, restrict.lo),
                             min(rng.hi, restrict.hi))
        out.append(SwitchEpochTuple(switch=sw, epochs=rng,
                                    bytes_by_epoch=dict(rec.bytes_by_epoch)))
    return out


AlertSink = Callable[[VictimAlert], None]


class ThroughputDropTrigger:
    """Per-flow 1 ms throughput watchdog.

    Fires when the last completed window's rate fell below
    ``(1 − drop_threshold)`` of the reference rate (the max over the
    recent past, so a gradual multi-window collapse still triggers
    once), provided the flow was running above ``floor_gbps`` first.
    A refractory period avoids alert storms for one event.
    """

    def __init__(self, sim: Simulator, flow: FlowKey, host_name: str,
                 store: FlowRecordStore, sink: AlertSink, *,
                 window: float = 0.001, drop_threshold: float = 0.5,
                 floor_gbps: float = 0.05, refractory: float = 0.005,
                 clock=None, slack_epochs: int = 1,
                 lookback_windows: int = 2):
        if not 0 < drop_threshold < 1:
            raise ValueError("drop_threshold must be in (0, 1)")
        self.sim = sim
        self.flow = flow
        self.host_name = host_name
        self.store = store
        self.sink = sink
        self.window = window
        self.drop_threshold = drop_threshold
        self.floor_gbps = floor_gbps
        self.refractory = refractory
        #: Optional host EpochClock: when present, alert epoch ranges are
        #: restricted to the drop window ± slack instead of the flow's
        #: whole recorded history.
        self.clock = clock
        self.slack_epochs = slack_epochs
        self.lookback_windows = lookback_windows
        self.alerts_fired = 0
        self.last_fired: Optional[float] = None
        self._window_bytes = 0
        self._reference_gbps = 0.0
        self._timer = PeriodicTimer(sim, window, self._close_window)

    def on_packet(self, pkt: Packet, now: float) -> None:
        """Wire to the receiver's payload callback."""
        if pkt.flow == self.flow:
            self._window_bytes += pkt.size

    def stop(self) -> None:
        self._timer.stop()

    # -- evaluation -----------------------------------------------------------

    def _close_window(self) -> None:
        rate = self._window_bytes * 8 / self.window / 1e9
        self._window_bytes = 0
        ref = self._reference_gbps
        if (ref > self.floor_gbps
                and rate < ref * (1 - self.drop_threshold)
                and self._out_of_refractory()):
            self._fire(ref, rate)
        # Reference tracks the running rate but decays after a collapse so
        # a recovered-then-degraded flow can trigger again.
        self._reference_gbps = max(rate, ref * 0.5)

    def _out_of_refractory(self) -> bool:
        return (self.last_fired is None
                or self.sim.now - self.last_fired >= self.refractory)

    def _fire(self, ref: float, rate: float) -> None:
        self.alerts_fired += 1
        self.last_fired = self.sim.now
        # store.get flushes any batched-ingest buffer (before_read), so
        # the alert's tuples see every packet sniffed so far
        rec = self.store.get(self.flow)
        restrict = None
        if self.clock is not None:
            onset = self.sim.now - self.lookback_windows * self.window
            restrict = EpochRange(
                self.clock.epoch_of(max(0.0, onset)) - self.slack_epochs,
                self.clock.epoch_of(self.sim.now) + self.slack_epochs)
        tuples = alert_tuples_from_record(rec, restrict) if rec else []
        self.sink(VictimAlert(
            flow=self.flow, host=self.host_name, time=self.sim.now,
            kind="throughput-drop",
            drop_ratio=1 - (rate / ref if ref > 0 else 0.0),
            rate_before_gbps=ref, rate_after_gbps=rate, tuples=tuples))


class TcpTimeoutTrigger:
    """Alerts on TCP retransmission timeouts (the §2 extreme symptom).

    Polls the sender's timeout counter once per window; an increment
    produces one alert.  Lives at the *source* host (that is where RTOs
    are visible), but carries the destination-side record if provided.
    """

    def __init__(self, sim: Simulator, sender: TcpSender, host_name: str,
                 sink: AlertSink, *, store: Optional[FlowRecordStore] = None,
                 window: float = 0.001):
        self.sim = sim
        self.sender = sender
        self.host_name = host_name
        self.sink = sink
        self.store = store
        self.alerts_fired = 0
        self._seen_timeouts = 0
        self._timer = PeriodicTimer(sim, window, self._poll)

    def stop(self) -> None:
        self._timer.stop()

    def _poll(self) -> None:
        current = self.sender.timeouts
        if current > self._seen_timeouts:
            self._seen_timeouts = current
            self.alerts_fired += 1
            rec = (self.store.get(self.sender.flow)
                   if self.store is not None else None)
            tuples = alert_tuples_from_record(rec) if rec else []
            self.sink(VictimAlert(
                flow=self.sender.flow, host=self.host_name,
                time=self.sim.now, kind="tcp-timeout", tuples=tuples))
