"""ECMP hash polarization: a port-blind hash collapses multipath onto
one egress.

The classic polarization bug: a switch whose ECMP hash ignores the L4
ports (or reuses the exact function of the tier above it) sends every
flow of a host pair down the same spine, no matter how many connections
they open.  Utilization collapses to 1/n of the fabric while the other
spines idle.  The analyzer diagnoses it from host telemetry alone: the
per-egress flow census at the branch switch concentrates on one egress
even though the topology offers several — and the observed trajectories
deviate from the paths a healthy hash would have assigned (path
non-conformance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_polarization
from ..analyzer.netdebug import check_path_conformance
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..simnet.packet import PRIO_LOW, PROTO_UDP, FlowKey
from ..simnet.topology import Network, build_leaf_spine
from ..simnet.traffic import UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register
from .common import (background_knobs, fault_knobs, install_fault_knobs,
                     launch_background, sport_for_side)


@dataclass
class PolarizationResult:
    """Output of one polarization run."""

    deployment: SwitchPointerDeployment
    network: Network
    polarized: bool
    branch_switch: str
    flows: list[FlowKey] = field(default_factory=list)
    #: healthy-hash spine assignment (what ECMP *should* have done)
    expected_spine: dict[FlowKey, str] = field(default_factory=dict)
    spine_tx_bytes: dict[str, int] = field(default_factory=dict)
    off_policy_flows: int = 0


@register
class PolarizationScenario(Scenario):
    """Many connections of one host pair, one (buggy) hashing leaf.

    ``n_flows`` UDP flows run h0_0→h1_0 over a 2-leaf/2-spine fabric,
    with source ports chosen so a *healthy* 5-tuple hash splits them
    evenly across the spines.  With ``polarized=True`` the source leaf
    gets the port-blind hash and every flow lands on one spine.
    """

    spec = ScenarioSpec(
        name="polarization",
        summary="a port-blind ECMP hash sends every flow of a host pair "
                "down one spine",
        paper_ref="§2.4 extended use case; ECMP hash-polarization "
                  "faults in multi-tier clos fabrics",
        expected_diagnosis="ecmp-polarization (suspect: the overloaded "
                           "spine)",
        knobs={
            "n_flows": Knob(8, "parallel connections h0_0→h1_0"),
            "polarized": Knob(True, "install the port-blind hash on "
                                    "leaf0 (False = healthy control)"),
            "duration": Knob(0.030, "per-flow CBR duration (s)"),
            "rate_mbps": Knob(50.0, "per-flow CBR rate (Mbit/s)"),
            "skew_threshold": Knob(0.8, "egress share that counts as "
                                        "polarized"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            **background_knobs(),
            **fault_knobs(),
        },
        aliases=("ecmp-polarization",),
        smoke_knobs={"n_flows": 4, "duration": 0.020},
        faults=("ecmp-polarization",),
    )

    def build(self) -> None:
        p = self.p
        n = p["n_flows"]
        # the background population needs endpoints of its own: grow the
        # fabric (extra leaves + hosts) only when it is requested, so
        # the historical minimal two-leaf shape stays bit-identical
        if p["bg_flows"] > 0:
            net = build_leaf_spine(n_leaves=4, n_spines=2,
                                   hosts_per_leaf=4)
        else:
            net = build_leaf_spine(n_leaves=2, n_spines=2,
                                   hosts_per_leaf=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy
        self.branch_switch = "leaf0"
        src, dst = "h0_0", "h1_0"

        # ECMP candidate order at leaf0 follows link creation order:
        # spine0 first, then spine1 (see Network.compute_routes).
        spines = ("spine0", "spine1")

        # Pick source ports whose *healthy* hash alternates spines, so
        # the control run is provably balanced and the polarized run's
        # skew is entirely the bad hash's doing.
        self.flows: list[FlowKey] = []
        self.expected_spine: dict[FlowKey, str] = {}
        sport = 9000
        rate = p["rate_mbps"] * 1e6
        for i in range(n):
            want = i % 2
            sport = sport_for_side(src, dst, want, start=sport)
            flow = FlowKey(src, dst, sport, sport, PROTO_UDP)
            UdpSink(self.network.hosts[dst], sport)
            UdpCbrSource(net.sim, net.hosts[src], dst, sport=sport,
                         dport=sport, rate_bps=rate,
                         packet_size=1500, priority=PRIO_LOW,
                         start=0.0, duration=p["duration"])
            self.flows.append(flow)
            self.expected_spine[flow] = spines[want]
            sport += 1

        if p["polarized"]:
            # the fault, declared through the registry: leaf0's hash
            # goes port-blind at t=0 (before the first packet)
            self.add_fault("ecmp-polarization",
                           switch=self.branch_switch)
        # ambient stressor knobs; leaf0 is both the branch under test
        # and the CherryPick embedder for the victim pair, so partial
        # deployment always spares it
        install_fault_knobs(self, extra_spare=(self.branch_switch,))

        # the background flow population (the sweep flows= axis): kept
        # entirely off the polarized branch — its endpoints exclude
        # every leaf0-attached host, so the per-egress census at leaf0
        # counts only the parallel connections under test and the
        # diagnosis threshold is never diluted by bystander traffic
        self.background = launch_background(
            net, p, duration=p["duration"],
            exclude=[h for h in net.host_names
                     if self.branch_switch in net.graph()[h]])

    def run(self) -> None:
        self.network.run(until=self.p["duration"] + 0.010)

    def collect(self) -> dict:
        net = self.network
        leaf0 = net.switches["leaf0"]
        spine_bytes = {
            sp: net.link_between("leaf0", sp).iface_of(leaf0).tx_bytes
            for sp in ("spine0", "spine1")}
        # cross-check: observed trajectories vs the healthy assignment
        expected_paths = {
            flow: ["leaf0", spine, "leaf1"]
            for flow, spine in self.expected_spine.items()}
        conformance = check_path_conformance(
            self.deployment.analyzer, expected_paths=expected_paths)
        self.payload = PolarizationResult(
            deployment=self.deployment, network=net,
            polarized=self.p["polarized"],
            branch_switch=self.branch_switch, flows=list(self.flows),
            expected_spine=dict(self.expected_spine),
            spine_tx_bytes=spine_bytes,
            off_policy_flows=len(conformance.violations))
        bg = self.background
        return {
            "spine_tx_bytes": spine_bytes,
            "off_policy_flows": self.payload.off_policy_flows,
            "flow_count": len(self.flows) +
                          (bg.n_flows if bg is not None else 0),
            "bg_packets_delivered": (bg.delivered
                                     if bg is not None else 0),
        }

    def diagnose(self) -> list[Verdict]:
        deploy = self.deployment
        last_epoch = deploy.datapaths["leaf0"].clock.epoch_of(
            self.network.sim.now)
        return [diagnose_polarization(
            deploy.analyzer, self.branch_switch,
            epochs=EpochRange(0, last_epoch),
            skew_threshold=self.p["skew_threshold"])]


register_sweep(SweepSpec(
    scenario="polarization",
    summary="port-blind hash skew flagged as connection count and the "
            "background flow population scale",
    expect_problem="ecmp-polarization",
    axes={
        "conns": "n_flows",
        "flows": "bg_flows",
        "mix": "bg_mix",
        "flow_kb": "bg_flow_kb",
        "alpha_ms": "alpha_ms",
        "rate_mbps": "rate_mbps",
    },
    default_grid={"conns": (8, 32, 128), "flows": (0, 200)},
    nightly_grid={"conns": (8, 32), "flows": (0, 200)},
))
