"""End-to-end wiring: instrument a simulated network with SwitchPointer.

:class:`SwitchPointerDeployment` is the one-stop constructor the
examples, tests, and benchmarks use: given a :class:`repro.simnet.Network`
it builds the host directory (MPHF), installs a datapath + control-plane
agent on every switch, a telemetry agent on every host, and an analyzer
on top — the full system of §3.
"""

from __future__ import annotations

from typing import Callable, Optional

from .analyzer.analyzer import Analyzer
from .core.epoch import EpochClock, EpochRangeEstimator
from .core.mphf import HostDirectory
from .core.pointer import HierarchicalPointerStore
from .directory import make_directory_set, resolve_directory
from .hostd.agent import HostAgent
from .hostd.triggers import ThroughputDropTrigger, VictimAlert
from .rpc.fabric import LatencyModel, RpcFabric
from .simnet.packet import FlowKey
from .simnet.topology import Network
from .switchd.agent import ControlPlaneStore, SwitchAgent
from .switchd.cherrypick import CherryPickPlanner
from .switchd.datapath import MODE_VLAN, SwitchPointerDatapath
from .switchd.rules import RuleTable

#: Default configuration, following the paper's running example:
#: α = 10 ms, k = 3 levels, ε = α, Δ = 2α (§4.2.1).
DEFAULT_ALPHA_MS = 10
DEFAULT_K = 3


class SwitchPointerDeployment:
    """A fully instrumented network.

    Parameters
    ----------
    network:
        The simulated topology (routes must already be computed).
    alpha_ms:
        Epoch duration α — also the hierarchy fan-out (integer, ≥ 2).
    k:
        Hierarchy depth.
    epsilon_ms / delta_ms:
        Skew and one-hop-delay bounds for epoch-range extrapolation;
        default to α and 2α (the paper's example values).
    mode:
        Telemetry embedding: ``"vlan"`` (default), ``"int"``, ``"none"``.
    skew_of:
        Optional callable node-name → clock skew in seconds, to exercise
        the asynchrony handling.  Skews must respect |skew(a)−skew(b)| ≤ ε.
    enforce_commodity_limit:
        Refuse α below the 15 ms OpenFlow rule-update floor (off by
        default — the simulated switches are not so constrained).
    records_per_host / record_shards / ingest_batch:
        Host-agent storage knobs for scale sweeps: the per-host record
        bound (None = unbounded), the number of record-store shards
        (>1 = :class:`~repro.hostd.sharded.ShardedRecordStore`), and the
        sniffed-packet batch size for deferred-eviction ingestion.
    record_backend:
        Which record-store backend every host agent builds
        (:mod:`repro.hostd.backends`): ``"flat"``, ``"sharded"``,
        ``"columnar"``, or ``"auto"`` (historical default, override-able
        process-wide).  All backends are query-equivalent.
    directory_backend / directory_bits / directory_hashes:
        Which directory-set backend every switch's pointer hierarchy
        builds (:mod:`repro.directory`): ``"exact"``, ``"bloom"``,
        ``"lsh"``, or ``"auto"`` (exact unless overridden process-wide),
        with the per-set bit budget (0 = saturating, exact-equivalent)
        and hash count for the sketches.  Sketches answer with
        *supersets* of the truth — diagnosis can degrade with the bit
        budget, never silently miss evidence.
    """

    def __init__(self, network: Network, *,
                 alpha_ms: int = DEFAULT_ALPHA_MS, k: int = DEFAULT_K,
                 epsilon_ms: Optional[float] = None,
                 delta_ms: Optional[float] = None,
                 mode: str = MODE_VLAN,
                 skew_of: Optional[Callable[[str], float]] = None,
                 rpc: Optional[RpcFabric] = None,
                 latency_model: Optional[LatencyModel] = None,
                 enforce_commodity_limit: bool = False,
                 records_per_host: Optional[int] = None,
                 record_shards: int = 1,
                 ingest_batch: int = 1,
                 record_backend: str = "auto",
                 directory_backend: str = "auto",
                 directory_bits: int = 0,
                 directory_hashes: int = 4):
        self.network = network
        self.alpha_ms = alpha_ms
        self.k = k
        self.mode = mode
        self.epsilon_ms = alpha_ms if epsilon_ms is None else epsilon_ms
        self.delta_ms = 2 * alpha_ms if delta_ms is None else delta_ms
        skew = skew_of if skew_of is not None else (lambda _name: 0.0)

        self.directory = HostDirectory(network.host_names)
        self.directory_backend = resolve_directory(directory_backend)
        self.directory_bits = directory_bits
        self.directory_hashes = directory_hashes
        n_slots = self.directory.n
        backend = self.directory_backend
        bits, hashes = directory_bits, directory_hashes

        def _set_factory():
            return make_directory_set(backend, n_slots,
                                      bits=bits, hashes=hashes)

        self._set_factory = _set_factory
        self.planner = CherryPickPlanner(network)
        self.estimator = EpochRangeEstimator(
            alpha_ms=alpha_ms, epsilon_ms=self.epsilon_ms,
            delta_ms=self.delta_ms)
        self.control_store = ControlPlaneStore()

        self.datapaths: dict[str, SwitchPointerDatapath] = {}
        self.switch_agents: dict[str, SwitchAgent] = {}
        self.rule_tables: dict[str, RuleTable] = {}
        for name, sw in network.switches.items():
            clock = EpochClock(alpha_ms, skew_s=skew(name))
            store = HierarchicalPointerStore(self.directory.n,
                                             alpha=alpha_ms, k=k,
                                             set_factory=self._set_factory)
            dp = SwitchPointerDatapath(sw, clock, self.directory.mphf,
                                       store, planner=self.planner,
                                       mode=mode)
            table = None
            if mode == MODE_VLAN:
                table = RuleTable(
                    switch_name=name, port_count=max(1, sw.port_count),
                    alpha_ms=float(alpha_ms),
                    enforce_commodity_limit=enforce_commodity_limit)
                self.rule_tables[name] = table
            agent = SwitchAgent(name, clock, store, rule_table=table)
            self._wire_push(agent, store, name)
            self.datapaths[name] = dp
            self.switch_agents[name] = agent

        self.host_agents: dict[str, HostAgent] = {}
        for name, host in network.hosts.items():
            clock = EpochClock(alpha_ms, skew_s=skew(name))
            self.host_agents[name] = HostAgent(
                host, clock=clock, planner=self.planner,
                estimator=self.estimator,
                max_records=records_per_host,
                record_shards=record_shards,
                ingest_batch=ingest_batch,
                record_backend=record_backend)

        #: stripped-switch stash: name -> (datapath, agent), maintained
        #: by uninstrument_switch/reinstrument_switch
        self._stripped: dict[str, tuple[SwitchPointerDatapath,
                                        SwitchAgent]] = {}

        rpc_fabric = rpc if rpc is not None else RpcFabric(latency_model)
        self.analyzer = Analyzer(
            network=network, directory=self.directory,
            switch_agents=self.switch_agents,
            host_agents=self.host_agents, rpc=rpc_fabric,
            control_store=self.control_store,
            directory_backend=self.directory_backend)

    def _wire_push(self, agent: SwitchAgent,
                   store: HierarchicalPointerStore, name: str) -> None:
        original = agent._on_push

        def on_push(snap, _orig=original, _name=name):
            _orig(snap)
            self.control_store.ingest(_name, snap)

        store.on_push = on_push

    # -- partial deployment (the partial-deployment fault) ---------------------

    def uninstrument_switch(self, name: str) -> None:
        """Strip SwitchPointer off one switch: detach the datapath hook
        and withdraw the control-plane agent.

        The analyzer sees the withdrawal immediately (it shares the
        ``switch_agents`` dict) and falls back to host-only evidence for
        this switch.  The stripped objects are stashed so
        :meth:`reinstrument_switch` can restore them exactly.
        """
        if name in self._stripped:
            raise ValueError(f"switch {name!r} is already uninstrumented")
        dp = self.datapaths.pop(name)
        agent = self.switch_agents.pop(name)
        self.network.switches[name].pipeline.remove(dp._hook)
        self._stripped[name] = (dp, agent)

    def reinstrument_switch(self, name: str) -> None:
        """Reinstall a switch stripped by :meth:`uninstrument_switch`."""
        try:
            dp, agent = self._stripped.pop(name)
        except KeyError:
            raise ValueError(
                f"switch {name!r} was not uninstrumented") from None
        self.network.switches[name].pipeline.append(dp._hook)
        self.datapaths[name] = dp
        self.switch_agents[name] = agent

    @property
    def uninstrumented_switches(self) -> list[str]:
        """Switches currently running without SwitchPointer."""
        return sorted(self._stripped)

    # -- conveniences ----------------------------------------------------------

    def watch_flow(self, flow: FlowKey, **kwargs) -> ThroughputDropTrigger:
        """Install the §5.1 throughput trigger at the flow's destination,
        alerting the analyzer."""
        agent = self.host_agents[flow.dst]
        return agent.watch_flow(flow, self.analyzer.ingest_alert, **kwargs)

    def alerts(self) -> list[VictimAlert]:
        return self.analyzer.alerts

    def flush_all_tops(self) -> None:
        """Force-push every switch's top-level pointer (end of run)."""
        for dp in self.datapaths.values():
            dp.store.flush_top()

    def total_pointer_memory_bits(self) -> int:
        return sum(dp.store.memory_bits for dp in self.datapaths.values())

    def record_stats(self) -> dict[str, int]:
        """Aggregate host record-table counters (sweep measurements)."""
        peak = total = evicted = spilled = ingested = 0
        for agent in self.host_agents.values():
            # drain any batched-ingest buffer first: hosts the analyzer
            # never queried would otherwise under-report their footprint
            agent.flush_ingest()
            store = agent.store
            peak = max(peak, store.peak_records)
            total += len(store)
            evicted += store.evicted
            spilled += store.spilled
            ingested += store.ingested
        return {"peak_records": peak, "total_records": total,
                "evicted_records": evicted, "spilled_records": spilled,
                "ingested_records": ingested}
