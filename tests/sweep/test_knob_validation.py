"""Registration-time knob validation: misuse fails at import time,
naming the offender — the runtime complement to reprolint's
``knob-declaration`` rule (which catches the same drift statically).
"""

import pytest

from repro.scenarios import REGISTRY as SCENARIOS
from repro.sweep import SweepError, SweepSpec
from repro.sweep.registry import SweepRegistry


def _spec(**overrides):
    base = dict(
        name="probe",
        scenario="incast",
        summary="s",
        expect_problem="none",
        axes={"senders": "n_senders"},
        default_grid={"senders": (2, 4)},
        nightly_grid={"senders": (2,)},
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture
def registry():
    return SweepRegistry()


def test_valid_bindings_register(registry):
    assert "n_senders" in SCENARIOS.get("incast").spec.knobs
    registry.register(_spec())
    assert "probe" in registry


def test_axis_bound_to_undeclared_knob_fails(registry):
    with pytest.raises(SweepError, match=(
            r"sweep 'probe': axis 'senders' binds knob 'sender_count', "
            r"which scenario 'incast' does not declare")):
        registry.register(_spec(axes={"senders": "sender_count"}))


def test_base_knob_naming_undeclared_knob_fails(registry):
    with pytest.raises(SweepError,
                       match="base_knobs names knob 'not_a_knob'"):
        registry.register(_spec(base_knobs={"not_a_knob": 3}))


def test_expect_suspect_knob_must_be_declared(registry):
    with pytest.raises(SweepError,
                       match="expect_suspect_knob names knob 'ghost'"):
        registry.register(_spec(expect_suspect_knob="ghost"))


def test_unknown_scenario_skips_binding_validation(registry):
    # nothing to validate against; reprolint's knob-declaration rule
    # still covers literal SweepSpec declarations statically
    registry.register(_spec(scenario="not-registered"))
    assert "probe" in registry


def test_every_registered_sweep_passed_validation():
    """The import-time catalogue re-validates cleanly (no legacy escape)."""
    from repro.sweep import SWEEPS

    for name in SWEEPS.names():
        SweepRegistry._validate_knob_bindings(SWEEPS.get(name))
