"""Unit tests for the flow-record store."""

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.records import FlowRecord, FlowRecordStore
from repro.simnet.packet import FlowKey, PROTO_TCP


def key(i=0, proto=PROTO_TCP):
    return FlowKey(f"src{i}", f"dst{i}", 100 + i, 200 + i, proto)


def observe(rec, *, nbytes=100, t=0.0, priority=0,
            path=("S1", "S2"), ranges=None, epoch=5):
    if ranges is None:
        ranges = {"S1": EpochRange(4, 6), "S2": EpochRange(5, 7)}
    rec.observe(nbytes=nbytes, t=t, priority=priority,
                switch_path=list(path), ranges=ranges,
                observed_epoch=epoch)


class TestFlowRecord:
    def test_accumulates_bytes_and_packets(self):
        rec = FlowRecord(flow=key())
        observe(rec, nbytes=100, t=0.001)
        observe(rec, nbytes=200, t=0.002)
        assert rec.bytes == 300
        assert rec.packets == 2
        assert rec.first_seen == 0.001
        assert rec.last_seen == 0.002

    def test_epoch_ranges_union(self):
        rec = FlowRecord(flow=key())
        observe(rec, ranges={"S1": EpochRange(4, 6)})
        observe(rec, ranges={"S1": EpochRange(8, 9)})
        assert rec.epochs_at("S1") == EpochRange(4, 9)

    def test_bytes_by_epoch(self):
        rec = FlowRecord(flow=key())
        observe(rec, nbytes=100, epoch=5)
        observe(rec, nbytes=50, epoch=5)
        observe(rec, nbytes=30, epoch=6)
        assert rec.bytes_by_epoch == {5: 150, 6: 30}

    def test_traversed(self):
        rec = FlowRecord(flow=key())
        observe(rec)
        assert rec.traversed("S1") and rec.traversed("S2")
        assert not rec.traversed("S9")

    def test_priority_tracks_latest(self):
        rec = FlowRecord(flow=key())
        observe(rec, priority=2)
        assert rec.priority == 2

    def test_json_roundtrip(self):
        rec = FlowRecord(flow=key())
        observe(rec, nbytes=123, t=0.5, priority=1, epoch=9)
        clone = FlowRecord.from_json(rec.to_json())
        assert clone.flow == rec.flow
        assert clone.bytes == 123
        assert clone.epoch_ranges == rec.epoch_ranges
        assert clone.bytes_by_epoch == rec.bytes_by_epoch
        assert clone.priority == 1


class TestFlowRecordStore:
    def test_record_for_creates_once(self):
        store = FlowRecordStore("h1")
        a = store.record_for(key())
        b = store.record_for(key())
        assert a is b
        assert len(store) == 1

    def test_get_unknown_returns_none(self):
        store = FlowRecordStore("h1")
        assert store.get(key()) is None

    def test_flows_through_switch_filter(self):
        store = FlowRecordStore("h1")
        observe(store.record_for(key(0)),
                ranges={"S1": EpochRange(1, 2)}, path=("S1",))
        observe(store.record_for(key(1)),
                ranges={"S2": EpochRange(1, 2)}, path=("S2",))
        hits = store.flows_through("S1")
        assert [r.flow for r in hits] == [key(0)]

    def test_flows_through_epoch_filter(self):
        store = FlowRecordStore("h1")
        observe(store.record_for(key(0)),
                ranges={"S1": EpochRange(1, 2)}, path=("S1",))
        observe(store.record_for(key(1)),
                ranges={"S1": EpochRange(8, 9)}, path=("S1",))
        hits = store.flows_through("S1", EpochRange(2, 4))
        assert [r.flow for r in hits] == [key(0)]

    def test_iteration(self):
        store = FlowRecordStore("h1")
        for i in range(3):
            observe(store.record_for(key(i)))
        assert len(list(store)) == 3


class TestDiskSpill:
    def test_flush_and_load_roundtrip(self, tmp_path):
        spill = tmp_path / "records.jsonl"
        store = FlowRecordStore("h1", spill_path=spill)
        for i in range(4):
            observe(store.record_for(key(i)), nbytes=100 * (i + 1))
        assert store.flush_to_disk() == 4
        loaded = FlowRecordStore.load_from_disk("h1", spill)
        assert len(loaded) == 4
        assert loaded.get(key(2)).bytes == 300

    def test_flush_without_path_raises(self):
        store = FlowRecordStore("h1")
        with pytest.raises(RuntimeError):
            store.flush_to_disk()
