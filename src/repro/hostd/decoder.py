"""Destination-side telemetry decoding (§4.2.1).

When a packet arrives, the host extracts the telemetry header and turns
it into a flow-record update:

* **VLAN mode** — the two tags give (linkID, epochID mod 4096).  The
  full path is reconstructed from (src, dst, linkID) via CherryPick; the
  epoch tag is unwrapped against the host's own epoch estimate; and the
  §4.2.1 range extrapolation assigns every switch on the path an epoch
  range around the embedder's observed epoch.
* **INT mode** — each hop carried its own (switchID, epochID); ranges
  collapse to the observed epoch ± the skew allowance.
* **No telemetry** — counted (``undecodable``); nothing is invented.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.epoch import (EpochClock, EpochRange, EpochRangeEstimator,
                          unwrap_epoch)
from ..core.headers import IntStack, VlanDoubleTag
from ..simnet.host import Host
from ..simnet.packet import Packet
from ..switchd.cherrypick import CherryPickPlanner
from .records import FlowRecordStore


class TelemetryDecoder:
    """Per-host decoder feeding a :class:`FlowRecordStore`.

    Parameters
    ----------
    host_clock:
        The host's epoch clock — used as the unwrap reference for the
        12-bit epoch tag.  Its skew participates in the same ε bound as
        the switches'.
    planner:
        Topology knowledge for path reconstruction (PathDump hosts hold
        the network map).
    estimator:
        The §4.2.1 range estimator (α, ε, Δ).
    """

    def __init__(self, store: FlowRecordStore, host_clock: EpochClock,
                 planner: CherryPickPlanner,
                 estimator: EpochRangeEstimator):
        self.store = store
        self.host_clock = host_clock
        self.planner = planner
        self.estimator = estimator
        self.decoded = 0
        self.undecodable = 0
        #: (src, dst, linkID) -> (switch path, [(switch, dlo, dhi)]):
        #: the VLAN parse minus the observed epoch.  Every epoch range
        #: is ``observed + (dlo, dhi)`` where the offsets depend only on
        #: hop distance from the embedder, so one entry serves every
        #: epoch.  Valid as long as routes and (α, ε, Δ) stay fixed —
        #: the same static-rules assumption the planner's own permanent
        #: reconstruct_path cache already makes.
        self._vlan_offsets: dict[tuple[str, str, int],
                                 tuple[list[str],
                                       list[tuple[str, int, int]]]] = {}

    # -- sniffer entry point --------------------------------------------------

    def on_packet(self, host: Host, pkt: Packet, now: float) -> None:
        """Host sniffer hook: decode ``pkt`` and update the record."""
        telemetry = pkt.telemetry
        if isinstance(telemetry, VlanDoubleTag):
            switches, ranges, observed = self._parse_vlan(pkt, telemetry,
                                                          now)
        elif isinstance(telemetry, IntStack):
            switches, ranges, observed = self._parse_int(telemetry)
        else:
            self.undecodable += 1
            return
        self._update(pkt, now, switches, ranges, observed)

    def decode_batch(self, batch: list) -> list:
        """Decode a buffered sniffer batch into store ingest entries.

        Returns one ``(flow, nbytes, t, priority, switch_path, pairs,
        observed_epoch)`` tuple per decodable packet — the batch ABI of
        :meth:`ColumnarRecordStore.ingest_batch`, with epoch ranges as
        plain ``{switch: (lo, hi)}`` int pairs instead of per-packet
        :class:`EpochRange` objects.  The VLAN parse (path
        reconstruction, embedder search, range extrapolation) reduces
        to ``observed + offsets`` with the offsets memoized per
        ``(src, dst, linkID)`` across flushes (see ``_vlan_offsets``);
        the built pairs dicts (epoch unwrap included) are memoized
        within the flush so repeated packets of a flow inside an epoch
        share one pairs object.  All of this is exact, not approximate — the
        offsets are epoch-independent by construction and every other
        parse input is constant for the duration of one flush.  The
        ``decoded``/``undecodable`` counters advance exactly as the
        per-packet path would have at this flush boundary.
        """
        entries = []
        append = entries.append
        memo: dict = {}
        offsets = self._vlan_offsets
        clock = self.host_clock
        alpha_s = clock.alpha_s
        skew_s = clock.skew_s
        floor = math.floor
        vlan = VlanDoubleTag
        decoded = 0
        for _host, pkt, now in batch:
            telemetry = pkt.telemetry
            if type(telemetry) is vlan:
                key = pkt.flow
                # inlined clock.epoch_of(now) — skew cannot change
                # mid-flush (single-threaded, no reentrant callbacks)
                reference = floor((now + skew_s) / alpha_s + 1e-9)
                link_id = telemetry.link_id
                # one probe resolves unwrap + parse: (tag, reference)
                # determines the observed epoch, which with the flow
                # triple determines the pairs dict
                mkey = (key.src, key.dst, link_id,
                        telemetry.epoch_tag, reference)
                hit = memo.get(mkey)
                if hit is None:
                    observed = unwrap_epoch(telemetry.epoch_tag,
                                            reference)
                    okey = (key.src, key.dst, link_id)
                    off = offsets.get(okey)
                    if off is None:
                        off = offsets[okey] = self._vlan_offsets_for(
                            key.src, key.dst, link_id)
                    switches, offs = off
                    hit = memo[mkey] = (
                        switches,
                        {sw: (observed + dlo, observed + dhi)
                         for sw, dlo, dhi in offs},
                        observed)
                decoded += 1
                append((key, pkt.size, now, pkt.priority,
                        hit[0], hit[1], hit[2]))
            elif isinstance(telemetry, IntStack):
                switches, ranges, observed = self._parse_int(telemetry)
                decoded += 1
                append(
                    (pkt.flow, pkt.size, now, pkt.priority, switches,
                     {sw: (r.lo, r.hi) for sw, r in ranges.items()},
                     observed))
            else:
                self.undecodable += 1
        self.decoded += decoded
        return entries

    def flush_batch(self, batch: list) -> int:
        """Decode a sniffer batch and fold it straight into the store.

        The fused fast path: one loop performs the memoized decode of
        :meth:`decode_batch` *and* the per-flow grouping of
        :meth:`ColumnarRecordStore.ingest_batch`, so the per-packet
        entry tuples never materialize, then hands the groups to
        :meth:`ColumnarRecordStore.apply_groups`.  Semantically
        identical to ``store.ingest_batch(self.decode_batch(batch))``
        — same group contents, same creation order, same update
        watermarks, same counters.  Requires a store exposing
        ``apply_groups`` (the columnar backend).  Returns the number of
        packets folded.
        """
        groups: dict = {}
        get = groups.get
        offsets = self._vlan_offsets
        clock = self.host_clock
        alpha_s = clock.alpha_s
        skew_s = clock.skew_s
        floor = math.floor
        vlan = VlanDoubleTag
        count = 0
        for _host, pkt, now in batch:
            telemetry = pkt.telemetry
            if type(telemetry) is vlan:
                count += 1
                nbytes = pkt.size
                key = pkt.flow
                tag = telemetry.epoch_tag
                # inlined clock.epoch_of(now) — skew cannot change
                # mid-flush (single-threaded, no reentrant callbacks)
                reference = floor((now + skew_s) / alpha_s + 1e-9)
                g = get(key)
                if g is not None and g[10] == tag and g[11] == reference:
                    # the flow's previous packet decoded this exact
                    # (tag, reference): same observed epoch, and its
                    # pairs are already absorbed into the group, so the
                    # fold is pure accumulation
                    g[0] += nbytes
                    g[1] += 1
                    g[3] = now
                    g[4] = pkt.priority
                    be = g[7]
                    epoch = g[12]
                    be[epoch] = be.get(epoch, 0) + nbytes
                    g[8] = count
                    continue
                # inlined unwrap_epoch(tag, reference): pick the epoch
                # congruent to the 12-bit tag nearest the reference
                # (ties resolved exactly as unwrap_epoch's min does)
                d = (tag & 4095) - (reference & 4095)
                observed = reference - (reference & 4095) + (tag & 4095)
                if d >= 2048:
                    observed -= 4096
                elif d < -2048:
                    observed += 4096
                link_id = telemetry.link_id
                okey = (key.src, key.dst, link_id)
                off = offsets.get(okey)
                if off is None:
                    off = offsets[okey] = self._vlan_offsets_for(
                        key.src, key.dst, link_id)
                switches, offs = off
                pairs = {sw: (observed + dlo, observed + dhi)
                         for sw, dlo, dhi in offs}
                if g is None:
                    groups[key] = [
                        nbytes, 1, now, now, pkt.priority,
                        switches if switches else None, dict(pairs),
                        {observed: nbytes}, count, pairs,
                        tag, reference, observed,
                    ]
                else:
                    g[0] += nbytes
                    g[1] += 1
                    g[3] = now
                    g[4] = pkt.priority
                    if switches:
                        g[5] = switches
                    rd = g[6]
                    for sw, pair in pairs.items():
                        cur = rd.get(sw)
                        if cur is None:
                            rd[sw] = pair
                        elif pair != cur:
                            lo, hi = pair
                            clo, chi = cur
                            if lo < clo or hi > chi:
                                rd[sw] = (
                                    lo if lo < clo else clo,
                                    hi if hi > chi else chi,
                                )
                    g[9] = pairs
                    be = g[7]
                    be[observed] = be.get(observed, 0) + nbytes
                    g[8] = count
                    g[10] = tag
                    g[11] = reference
                    g[12] = observed
            elif isinstance(telemetry, IntStack):
                count += 1
                nbytes = pkt.size
                path, ranges, epoch = self._parse_int(telemetry)
                pairs = {sw: (r.lo, r.hi) for sw, r in ranges.items()}
                g = get(pkt.flow)
                if g is None:
                    be = {}
                    if epoch is not None:
                        be[epoch] = nbytes
                    groups[pkt.flow] = [
                        nbytes, 1, now, now, pkt.priority,
                        path if path else None, dict(pairs), be, count,
                        pairs, None, None, None,
                    ]
                else:
                    g[0] += nbytes
                    g[1] += 1
                    g[3] = now
                    g[4] = pkt.priority
                    if path:
                        g[5] = path
                    rd = g[6]
                    for sw, pair in pairs.items():
                        cur = rd.get(sw)
                        if cur is None:
                            rd[sw] = pair
                        elif pair != cur:
                            lo, hi = pair
                            clo, chi = cur
                            if lo < clo or hi > chi:
                                rd[sw] = (
                                    lo if lo < clo else clo,
                                    hi if hi > chi else chi,
                                )
                    g[9] = pairs
                    if epoch is not None:
                        be = g[7]
                        be[epoch] = be.get(epoch, 0) + nbytes
                    g[8] = count
                    # an INT packet invalidates the VLAN decode cache
                    # for this flow (slots 10-12) conservatively
                    g[10] = None
            else:
                self.undecodable += 1
        self.decoded += count
        return self.store.apply_groups(groups, count)

    def _vlan_offsets_for(self, src: str, dst: str, link_id: int
                          ) -> tuple[list[str],
                                     list[tuple[str, int, int]]]:
        """Epoch-independent VLAN parse: path + per-switch offsets.

        ``range_for(observed, d)`` is ``observed`` plus bounds that
        depend only on the hop distance ``d`` (and the fixed α, ε, Δ),
        so the ranges for any epoch are the observed=0 ranges shifted
        by the observed epoch.
        """
        path_nodes = self.planner.reconstruct_path(src, dst, link_id)
        switches = [n for n in path_nodes
                    if n in self.planner.network.switches]
        embedder = self._embedding_switch(path_nodes, link_id)
        ranges = self.estimator.ranges_for_path(
            switches, switches.index(embedder), 0)
        return switches, [(sw, r.lo, r.hi) for sw, r in ranges.items()]

    # -- VLAN double tag -----------------------------------------------------

    def _parse_vlan(self, pkt: Packet, tag: VlanDoubleTag, now: float
                    ) -> tuple[list[str], dict[str, EpochRange],
                               Optional[int]]:
        key = pkt.flow
        path_nodes = self.planner.reconstruct_path(key.src, key.dst,
                                                   tag.link_id)
        switches = [n for n in path_nodes
                    if n in self.planner.network.switches]
        embedder = self._embedding_switch(path_nodes, tag.link_id)
        embed_index = switches.index(embedder)
        reference = self.host_clock.epoch_of(now)
        observed = unwrap_epoch(tag.epoch_tag, reference)
        ranges = self.estimator.ranges_for_path(switches, embed_index,
                                                observed)
        return switches, ranges, observed

    def _embedding_switch(self, path_nodes: list[str],
                          link_id: int) -> str:
        """The upstream endpoint of the picked link along the path."""
        link = self.planner.network.link_by_vlan(link_id)
        a, b = link.a.name, link.b.name
        for here, nxt in zip(path_nodes, path_nodes[1:]):
            if {here, nxt} == {a, b}:
                return here
        raise ValueError(
            f"link {link.endpoints} not on reconstructed path {path_nodes}")

    # -- INT stack -----------------------------------------------------------

    def _parse_int(self, stack: IntStack
                   ) -> tuple[list[str], dict[str, EpochRange],
                              Optional[int]]:
        switches = stack.switch_path()
        eps = self.estimator.range_for(0, 0)  # ± skew allowance around 0
        ranges = {}
        observed = None
        for hop in stack.hops:
            ranges[hop.switch_id] = EpochRange(hop.epoch + eps.lo,
                                               hop.epoch + eps.hi)
            observed = hop.epoch  # last hop's epoch keys byte counts
        return switches, ranges, observed

    # -- shared --------------------------------------------------------------

    def _update(self, pkt: Packet, now: float, switches: list[str],
                ranges: dict[str, EpochRange],
                observed: Optional[int]) -> None:
        self.store.ingest(pkt.flow, nbytes=pkt.size, t=now,
                          priority=pkt.priority, switch_path=switches,
                          ranges=ranges, observed_epoch=observed)
        self.decoded += 1
