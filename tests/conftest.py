"""Shared test configuration.

Hypothesis runs derandomized so the property suite is reproducible —
every run explores the same example sequence, and a failure in CI is a
failure locally.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
