"""Network container and topology builders.

:class:`Network` owns the simulator, nodes and links, and computes
forwarding tables.  Builders cover the topologies the paper uses:

* :func:`build_linear` — the 3-switch chain of Figs 1(b)/1(c), used by
  the "too many red lights" and "traffic cascades" scenarios.
* :func:`build_star` — m hosts behind one switch, the Fig 1(a)
  "too much traffic" scenario.
* :func:`build_leaf_spine` — standard 2-tier clos.
* :func:`build_fat_tree` — the k-ary fat-tree of the CherryPick
  discussion in §4.1.3 (5-hop paths, one aggregate-core link pins the
  whole path).

All builders accept a ``queue_factory`` so a single switch flag flips the
whole fabric between FIFO (microburst) and strict-priority experiments.
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx

from .engine import AlternatingTimer, Simulator
from .link import Link, Node
from .queues import PacketQueue
from .device import Switch
from .host import Host

QueueFactory = Callable[[], PacketQueue]


class TopologyError(Exception):
    """Raised for malformed topologies or unknown nodes."""


class Network:
    """A simulated network: nodes + links + routing.

    The node namespace is flat; host and switch names must be unique.
    """

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim if sim is not None else Simulator()
        self.hosts: dict[str, Host] = {}
        self.switches: dict[str, Switch] = {}
        self.links: list[Link] = []
        self._graph: Optional[nx.Graph] = None
        #: switch-induced subgraph + per-pair shortest-path memo; both
        #: derive from the static physical graph, so they reset exactly
        #: where ``_graph`` does (topology edits, not link flaps)
        self._switch_graph: Optional[nx.Graph] = None
        self._hosts_single_homed = False
        self._spaths: dict[tuple[str, str], list[list[str]]] = {}

    # -- construction --------------------------------------------------------

    def add_host(self, name: str) -> Host:
        self._check_fresh_name(name)
        host = Host(self.sim, name)
        self.hosts[name] = host
        self._invalidate_graph()
        return host

    def add_switch(self, name: str) -> Switch:
        self._check_fresh_name(name)
        sw = Switch(self.sim, name)
        self.switches[name] = sw
        self._invalidate_graph()
        return sw

    def connect(self, a: Node, b: Node, *, rate_bps: float = 1e9,
                propagation_delay: float = 2e-6,
                queue_factory: Optional[QueueFactory] = None) -> Link:
        """Create a full-duplex link and register its interfaces."""
        link = Link(self.sim, a, b, rate_bps=rate_bps,
                    propagation_delay=propagation_delay,
                    queue_factory=queue_factory)
        for node, iface in ((a, link.iface_a), (b, link.iface_b)):
            node.attach(iface)
        link.vlan_id = len(self.links)  # network-local 12-bit wire id
        self.links.append(link)
        self._invalidate_graph()
        return link

    def _invalidate_graph(self) -> None:
        self._graph = None
        self._switch_graph = None
        self._hosts_single_homed = False
        self._spaths.clear()

    def _check_fresh_name(self, name: str) -> None:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"duplicate node name {name!r}")

    # -- lookup ----------------------------------------------------------------

    def node(self, name: str) -> Node:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise TopologyError(f"unknown node {name!r}")

    def link_between(self, a: str, b: str) -> Link:
        for link in self.links:
            if {link.a.name, link.b.name} == {a, b}:
                return link
        raise TopologyError(f"no link between {a!r} and {b!r}")

    def link_by_id(self, link_id: int) -> Link:
        for link in self.links:
            if link.link_id == link_id:
                return link
        raise TopologyError(f"no link with id {link_id}")

    def link_by_vlan(self, vlan_id: int) -> Link:
        """Resolve a network-local wire id (what VLAN tags carry)."""
        if 0 <= vlan_id < len(self.links):
            return self.links[vlan_id]
        raise TopologyError(f"no link with vlan id {vlan_id}")

    @property
    def host_names(self) -> list[str]:
        return sorted(self.hosts)

    @property
    def switch_names(self) -> list[str]:
        return sorted(self.switches)

    # -- graph & paths -----------------------------------------------------

    def graph(self) -> nx.Graph:
        """The *physical* topology as a networkx graph (nodes are names).

        Down links stay in this graph: cabling does not disappear when a
        port flaps, and the analyzer's policy checks compare against the
        physical design.  Routing uses :meth:`live_graph` instead.
        """
        if self._graph is None:
            g = nx.Graph()
            for name in self.hosts:
                g.add_node(name, kind="host")
            for name in self.switches:
                g.add_node(name, kind="switch")
            for link in self.links:
                g.add_edge(link.a.name, link.b.name, link=link)
            self._graph = g
            sub = nx.Graph()
            sub.add_nodes_from(self.switches)
            for link in self.links:
                if link.a.name in self.switches and link.b.name in self.switches:
                    sub.add_edge(link.a.name, link.b.name)
            self._switch_graph = sub
            self._hosts_single_homed = all(
                g.degree(h) == 1 and next(iter(g[h])) in self.switches
                for h in self.hosts
            )
        return self._graph

    def live_graph(self) -> nx.Graph:
        """The topology restricted to links that are currently up.

        Built fresh on every call (liveness changes do not version the
        cached physical graph); used by :meth:`compute_routes`.
        """
        g = nx.Graph()
        for name in self.hosts:
            g.add_node(name, kind="host")
        for name in self.switches:
            g.add_node(name, kind="switch")
        for link in self.links:
            if link.up:
                g.add_edge(link.a.name, link.b.name, link=link)
        return g

    def shortest_paths(self, src: str, dst: str) -> list[list[str]]:
        """All shortest src→dst node-name paths (deterministic order).

        Host→host queries decompose through the switch fabric: when
        every host hangs off exactly one switch (true for all the
        builders here), a degree-1 host can never be a transit node, so
        each shortest path is exactly ``[src] + P + [dst]`` with ``P``
        ranging over the shortest paths between the two attachment
        switches in the switch-only subgraph.  That turns a BFS over the
        whole fabric (65k+ nodes on large leaf-spines) into one over the
        few dozen switches.  Multi-homed or host-to-switch queries fall
        back to the full-graph enumeration.  Results are memoized per
        (src, dst); topology edits reset the memo along with the cached
        physical graph.
        """
        key = (src, dst)
        cached = self._spaths.get(key)
        if cached is None:
            cached = self._spaths[key] = self._shortest_paths_uncached(src, dst)
        return [list(p) for p in cached]

    def _shortest_paths_uncached(self, src: str, dst: str) -> list[list[str]]:
        g = self.graph()  # also (re)builds the switch subgraph caches
        if (self._hosts_single_homed and src != dst
                and src in self.hosts and dst in self.hosts):
            sa = next(iter(g[src]))
            sb = next(iter(g[dst]))
            if sa == sb:
                return [[src, sa, dst]]
            assert self._switch_graph is not None
            middles = nx.all_shortest_paths(self._switch_graph, sa, sb)
            return sorted([src, *p, dst] for p in middles)
        return sorted(nx.all_shortest_paths(g, src, dst))

    def path_through_link(self, src: str, dst: str,
                          link: Link) -> Optional[list[str]]:
        """The unique shortest src→dst path crossing ``link``, if any.

        This is the CherryPick reconstruction primitive: on clos fabrics
        one picked link disambiguates the end-to-end path.  Returns None
        when no shortest path through the link exists; raises
        :class:`TopologyError` when more than one does (topology is not
        CherryPick-compatible for this pair).
        """
        matches = []
        a, b = link.a.name, link.b.name
        for path in self.shortest_paths(src, dst):
            hops = list(zip(path, path[1:]))
            if (a, b) in hops or (b, a) in hops:
                matches.append(path)
        if not matches:
            return None
        if len(matches) > 1:
            raise TopologyError(
                f"link {link.endpoints} does not pin the {src}->{dst} path")
        return matches[0]

    # -- routing ---------------------------------------------------------------

    def compute_routes(self) -> None:
        """Install ECMP forwarding state for every host destination.

        For each switch and destination host, every neighbor on some
        shortest *live* path toward the destination contributes one
        candidate egress interface.  Down links contribute nothing, so
        re-running this after a link event models routing reconvergence.

        Cost is O(S·E) BFS plus O(H · Σ switch-degree) rule installs —
        distances are only ever needed *from switches* (hosts never
        forward: a host neighbor qualifies as next hop exactly when it
        is the destination itself, one dict probe), which is what keeps
        multi-thousand-host fabrics buildable in seconds where the old
        all-pairs × all-links scan took minutes.

        When every host is single-homed (all the builders), the
        dedicated fast path below cuts this further — switch-only BFS
        and one shared ECMP candidate tuple per (switch, attach-switch)
        pair — which is what makes 65536-host fabrics routable in
        seconds.  Both paths install identical candidate sets in
        identical order.
        """
        if self._compute_routes_fast():
            return
        g = self.live_graph()
        dist = {name: nx.single_source_shortest_path_length(g, name)
                for name in self.switches}
        # per-switch live links in global creation order, so the ECMP
        # candidate order is identical to the previous all-links scan
        to_switch: dict[str, list[tuple[str, Link]]] = \
            {name: [] for name in self.switches}
        to_host: dict[str, dict[str, list[Link]]] = \
            {name: {} for name in self.switches}
        for link in self.links:
            if not link.up:
                continue
            for node, peer in ((link.a, link.b), (link.b, link.a)):
                if node.name not in self.switches:
                    continue
                if peer.name in self.switches:
                    to_switch[node.name].append((peer.name, link))
                else:
                    to_host[node.name].setdefault(peer.name,
                                                  []).append(link)
        for sw_name, sw in self.switches.items():
            sw.clear_routes()
            d_sw = dist[sw_name]
            host_links = to_host[sw_name]
            switch_links = to_switch[sw_name]
            for dst in self.hosts:
                d_here = d_sw.get(dst)
                if d_here is None:
                    continue
                if d_here == 1:
                    for link in host_links.get(dst, ()):
                        sw.install_route(dst, link.iface_of(sw))
                    continue
                for peer, link in switch_links:
                    if dist[peer].get(dst) == d_here - 1:
                        sw.install_route(dst, link.iface_of(sw))

    def _compute_routes_fast(self) -> bool:
        """Single-homed fast path for :meth:`compute_routes`.

        Applies when no host has more than one live link and no link
        joins two hosts (true of every builder).  Then a host is a leaf
        of the graph — never an interior node of a shortest path — so
        switch-to-switch distances fully determine routing, and every
        destination behind the same attach switch shares one ECMP
        candidate set per forwarding switch.  Installs exactly what the
        generic path would: same candidates, same creation order.
        Returns False (installing nothing) when the precondition fails.
        """
        switches = self.switches
        #: host -> (attach switch, link); live links only, like the
        #: generic path's live_graph
        attach: dict[str, tuple[str, Link]] = {}
        sw_adj: dict[str, list[tuple[str, Link]]] = \
            {name: [] for name in switches}
        for link in self.links:
            if not link.up:
                continue
            an, bn = link.a.name, link.b.name
            a_is_sw = an in switches
            b_is_sw = bn in switches
            if a_is_sw and b_is_sw:
                sw_adj[an].append((bn, link))
                sw_adj[bn].append((an, link))
            elif a_is_sw or b_is_sw:
                hname, swname = (bn, an) if a_is_sw else (an, bn)
                if hname in attach:
                    return False  # multi-homed host
                attach[hname] = (swname, link)
            else:
                return False  # host-host link
        by_switch: dict[str, list[str]] = {}
        for host in self.hosts:
            info = attach.get(host)
            if info is not None:
                by_switch.setdefault(info[0], []).append(host)
        # BFS over the switch subgraph only
        sdist: dict[str, dict[str, int]] = {}
        for name in switches:
            d = {name: 0}
            frontier = [name]
            hops = 0
            while frontier:
                hops += 1
                nxt = []
                for u in frontier:
                    for v, _ in sw_adj[u]:
                        if v not in d:
                            d[v] = hops
                            nxt.append(v)
                frontier = nxt
            sdist[name] = d
        for sw_name, sw in switches.items():
            sw.clear_routes()
            d_sw = sdist[sw_name]
            adj = sw_adj[sw_name]
            for leaf, dsts in by_switch.items():
                if leaf == sw_name:
                    for dst in dsts:
                        sw.set_routes(dst,
                                      [attach[dst][1].iface_of(sw)])
                    continue
                d_leaf = d_sw.get(leaf)
                if d_leaf is None:
                    continue
                want = d_leaf - 1
                shared = tuple(
                    link.iface_of(sw) for peer, link in adj
                    if sdist[peer].get(leaf) == want)
                if shared:
                    sw._fib.update(dict.fromkeys(dsts, shared))
        return True

    def set_link_state(self, a: str, b: str, up: bool, *,
                       reconverge: bool = True) -> Link:
        """Take the a—b link down (or up), optionally recomputing routes.

        With ``reconverge=False`` the forwarding state keeps pointing at
        the dead link until :meth:`compute_routes` runs — the blackhole
        window between a physical failure and control-plane convergence.
        """
        link = self.link_between(a, b)
        if up:
            link.set_up()
        else:
            link.set_down()
        if reconverge:
            self.compute_routes()
        return link

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


class LinkFlapper:
    """Periodically takes one link down and back up (fault injector).

    Each transition flips the physical state immediately; the routing
    reconvergence that follows is delayed by ``reconverge_delay`` —
    packets sent into the dead link during that window are lost, which
    is what drives the cascaded retransmits the flap scenario studies.

    Parameters
    ----------
    down_for / up_for:
        Dwell times of the two states, in seconds.
    start_delay:
        When the first down transition fires.
    reconverge_delay:
        Control-plane convergence lag after each transition.
    """

    def __init__(self, net: Network, a: str, b: str, *,
                 down_for: float, up_for: float, start_delay: float,
                 reconverge_delay: float = 0.0):
        self.net = net
        self.link = net.link_between(a, b)
        self.endpoints = (a, b)
        self.reconverge_delay = reconverge_delay
        self.downs = 0
        self.ups = 0
        self._timer = AlternatingTimer(
            net.sim, down_for, self._go_down, up_for, self._go_up,
            start_delay=start_delay)

    def _go_down(self) -> None:
        self.downs += 1
        self._transition(up=False)

    def _go_up(self) -> None:
        self.ups += 1
        self._transition(up=True)

    def _transition(self, *, up: bool) -> None:
        a, b = self.endpoints
        self.net.set_link_state(a, b, up, reconverge=False)
        if self.reconverge_delay > 0:
            self.net.sim.schedule(self.reconverge_delay,
                                  self.net.compute_routes)
        else:
            self.net.compute_routes()

    @property
    def flaps(self) -> int:
        """Completed down/up cycles."""
        return self.ups

    def stop(self) -> None:
        self._timer.stop()


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def build_star(n_hosts: int, *, rate_bps: float = 1e9,
               queue_factory: Optional[QueueFactory] = None,
               sim: Optional[Simulator] = None,
               switch_name: str = "S1",
               host_prefix: str = "h") -> Network:
    """``n_hosts`` hosts behind a single switch (Fig 1(a) fan-in)."""
    if n_hosts < 1:
        raise TopologyError("need at least one host")
    net = Network(sim)
    sw = net.add_switch(switch_name)
    for i in range(n_hosts):
        host = net.add_host(f"{host_prefix}{i}")
        net.connect(host, sw, rate_bps=rate_bps, queue_factory=queue_factory)
    net.compute_routes()
    return net


def build_linear(n_switches: int = 3, hosts_per_switch: int = 2, *,
                 rate_bps: float = 1e9,
                 queue_factory: Optional[QueueFactory] = None,
                 sim: Optional[Simulator] = None) -> Network:
    """Chain of switches S1-S2-...-Sn, each with its own hosts.

    With the defaults this is exactly the Fig 1(b)/(c) topology: hosts
    ``h{s}_{i}`` attach to switch ``S{s}``.
    """
    if n_switches < 1:
        raise TopologyError("need at least one switch")
    net = Network(sim)
    switches = [net.add_switch(f"S{i + 1}") for i in range(n_switches)]
    for left, right in zip(switches, switches[1:]):
        net.connect(left, right, rate_bps=rate_bps,
                    queue_factory=queue_factory)
    for s, sw in enumerate(switches, start=1):
        for i in range(hosts_per_switch):
            host = net.add_host(f"h{s}_{i}")
            net.connect(host, sw, rate_bps=rate_bps,
                        queue_factory=queue_factory)
    net.compute_routes()
    return net


def build_leaf_spine(n_leaves: int = 4, n_spines: int = 2,
                     hosts_per_leaf: int = 4, *, rate_bps: float = 1e9,
                     queue_factory: Optional[QueueFactory] = None,
                     sim: Optional[Simulator] = None) -> Network:
    """Two-tier clos: every leaf connects to every spine."""
    if n_leaves < 1 or n_spines < 1:
        raise TopologyError("need at least one leaf and one spine")
    net = Network(sim)
    leaves = [net.add_switch(f"leaf{i}") for i in range(n_leaves)]
    spines = [net.add_switch(f"spine{i}") for i in range(n_spines)]
    for leaf in leaves:
        for spine in spines:
            net.connect(leaf, spine, rate_bps=rate_bps,
                        queue_factory=queue_factory)
    for li, leaf in enumerate(leaves):
        for i in range(hosts_per_leaf):
            host = net.add_host(f"h{li}_{i}")
            net.connect(host, leaf, rate_bps=rate_bps,
                        queue_factory=queue_factory)
    net.compute_routes()
    return net


def build_fat_tree(k: int = 4, *, rate_bps: float = 1e9,
                   queue_factory: Optional[QueueFactory] = None,
                   sim: Optional[Simulator] = None,
                   hosts_per_edge: Optional[int] = None,
                   n_pods: Optional[int] = None,
                   total_hosts: Optional[int] = None) -> Network:
    """k-ary fat-tree (k even): k pods, k²/4 cores, k/2 hosts per edge.

    Node names: ``core{c}``, ``agg{p}_{a}``, ``edge{p}_{e}``,
    ``h{p}_{e}_{i}`` — pod p, position within pod, host index.

    ``n_pods`` overrides the classic pod count (each pod is k/2 aggs ×
    k/2 edges regardless, and agg position ``a`` of every pod uplinks
    to core group ``a``, so any pod count ≥ 1 stays CherryPick-pinnable
    — one agg-core link still fixes the inter-pod path).
    ``total_hosts`` caps how many hosts are attached overall (the last
    edges are left short/empty), letting sweeps hit exact populations.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError("fat-tree arity k must be even and >= 2")
    pods = k if n_pods is None else n_pods
    if pods < 1:
        raise TopologyError("fat-tree needs at least one pod")
    net = Network(sim)
    half = k // 2
    n_hosts_edge = half if hosts_per_edge is None else hosts_per_edge
    cores = [net.add_switch(f"core{c}") for c in range(half * half)]
    hosts_left = (pods * half * n_hosts_edge
                  if total_hosts is None else total_hosts)
    for p in range(pods):
        aggs = [net.add_switch(f"agg{p}_{a}") for a in range(half)]
        edges = [net.add_switch(f"edge{p}_{e}") for e in range(half)]
        for a, agg in enumerate(aggs):
            for edge in edges:
                net.connect(agg, edge, rate_bps=rate_bps,
                            queue_factory=queue_factory)
            # agg a connects to cores [a*half, (a+1)*half)
            for c in range(a * half, (a + 1) * half):
                net.connect(agg, cores[c], rate_bps=rate_bps,
                            queue_factory=queue_factory)
        for e, edge in enumerate(edges):
            for i in range(min(n_hosts_edge, hosts_left)):
                host = net.add_host(f"h{p}_{e}_{i}")
                net.connect(host, edge, rate_bps=rate_bps,
                            queue_factory=queue_factory)
            hosts_left -= min(n_hosts_edge, hosts_left)
    net.compute_routes()
    return net


def build_fat_tree_for_hosts(n_hosts: int, *, k: int = 8,
                             max_pods: Optional[int] = None,
                             rate_bps: float = 1e9,
                             queue_factory: Optional[QueueFactory] = None,
                             sim: Optional[Simulator] = None) -> Network:
    """A multi-pod fat-tree sized from the host count (scale sweeps).

    Keeps the switching fabric fixed at arity ``k`` and grows along two
    axes: pods first (up to ``max_pods``, default the classic bound k),
    then hosts per edge — so a 64-host and a 4096-host point share the
    same fabric shape and differ only in population, which is exactly
    what the thousand-host sweeps need (switch count stays O(k²) while
    hosts scale).  Attaches exactly ``n_hosts`` hosts.
    """
    if n_hosts < 1:
        raise TopologyError("need at least one host")
    if k < 2 or k % 2 != 0:
        raise TopologyError("fat-tree arity k must be even and >= 2")
    half = k // 2
    pod_budget = k if max_pods is None else max_pods
    if pod_budget < 1:
        raise TopologyError("max_pods must be >= 1")
    hosts_per_edge = max(half, -(-n_hosts // (pod_budget * half)))
    n_pods = min(pod_budget, -(-n_hosts // (half * hosts_per_edge)))
    return build_fat_tree(k, rate_bps=rate_bps,
                          queue_factory=queue_factory, sim=sim,
                          hosts_per_edge=hosts_per_edge, n_pods=n_pods,
                          total_hosts=n_hosts)
