"""Network-wide aggregation queries over host records.

PathDump's query surface (which SwitchPointer inherits, §4.2.2) goes
beyond per-flow lookups: operators ask for traffic matrices, per-link
heavy hitters, and per-flow activity over time.  These aggregators run
analyzer-side over the per-host :class:`QueryResult` payloads so the
hosts keep doing only cheap local scans.

All functions take the ``{host: QueryResult}`` mapping returned by
:meth:`repro.analyzer.analyzer.Analyzer.consult_hosts` (or the PathDump
fan-out) so they compose with either system's collection strategy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey
from .query import FlowSummary, QueryResult


def _summaries(results: Mapping[str, QueryResult]):
    for host, res in results.items():
        for summary in res.payload:
            yield host, summary


def traffic_matrix(results: Mapping[str, QueryResult]
                   ) -> dict[tuple[str, str], int]:
    """Bytes exchanged per (source host, destination host) pair."""
    matrix: dict[tuple[str, str], int] = defaultdict(int)
    for _, summary in _summaries(results):
        matrix[(summary.flow.src, summary.flow.dst)] += summary.bytes
    return dict(matrix)


def bytes_per_switch(results: Mapping[str, QueryResult]
                     ) -> dict[str, int]:
    """Total recorded bytes that crossed each switch."""
    per_switch: dict[str, int] = defaultdict(int)
    for _, summary in _summaries(results):
        for sw in summary.switch_path:
            per_switch[sw] += summary.bytes
    return dict(per_switch)


def heavy_hitters_per_link(results: Mapping[str, QueryResult], *,
                           top: int = 3
                           ) -> dict[tuple[str, str], list[FlowSummary]]:
    """The ``top`` largest flows per traversed (switch, next-hop) link.

    The link is identified by consecutive switch-path entries (the last
    hop toward the destination host included), matching how the §5.4
    imbalance query groups by egress.
    """
    per_link: dict[tuple[str, str], list[FlowSummary]] = defaultdict(list)
    for _, summary in _summaries(results):
        nodes = list(summary.switch_path) + [summary.flow.dst]
        for a, b in zip(nodes, nodes[1:]):
            per_link[(a, b)].append(summary)
    return {
        link: sorted(flows, key=lambda s: (-s.bytes, s.flow))[:top]
        for link, flows in per_link.items()
    }


def epoch_activity(results: Mapping[str, QueryResult], *,
                   epochs: Optional[EpochRange] = None
                   ) -> dict[int, int]:
    """Bytes per (embedder-observed) epoch across all flows.

    The per-epoch byte counts come straight from the flow records'
    ``bytes_by_epoch`` — the same data the §5.1 alert carries.
    """
    activity: dict[int, int] = defaultdict(int)
    for _, summary in _summaries(results):
        for epoch, nbytes in summary.bytes_by_epoch.items():
            if epochs is not None and epoch not in epochs:
                continue
            activity[epoch] += nbytes
    return dict(activity)


def flows_sharing_epoch(results: Mapping[str, QueryResult], switch: str,
                        epoch: int) -> list[FlowSummary]:
    """All flows whose epoch range at ``switch`` contains ``epoch`` —
    the §5.2 'at least one common epochID' correlation primitive."""
    out = []
    for _, summary in _summaries(results):
        rng = summary.epochs_at(switch)
        if rng is not None and epoch in rng:
            out.append(summary)
    return sorted(out, key=lambda s: s.flow)


def contention_groups(results: Mapping[str, QueryResult], switch: str
                      ) -> list[list[FlowKey]]:
    """Cluster flows at ``switch`` into groups with pairwise epoch
    overlap — each group is a candidate contention event."""
    entries = []
    for _, summary in _summaries(results):
        rng = summary.epochs_at(switch)
        if rng is not None:
            entries.append((summary.flow, rng))
    entries.sort(key=lambda e: (e[1].lo, e[1].hi, e[0]))
    groups: list[list] = []
    current: list = []
    current_hi = None
    for flow, rng in entries:
        if current and current_hi is not None and rng.lo > current_hi:
            groups.append([f for f, _ in current])
            current = []
            current_hi = None
        current.append((flow, rng))
        current_hi = rng.hi if current_hi is None else max(current_hi,
                                                           rng.hi)
    if current:
        groups.append([f for f, _ in current])
    return groups
