"""Fixture: draws through the interpreter-global random module."""

import random
from random import randrange


def pick(n: int) -> int:
    random.seed(7)
    return random.randint(0, n)


def pick_imported(n: int) -> int:
    return randrange(n)
