#!/usr/bin/env python3
"""Run every documentation check in one pass (CI's docs job).

One registry of checks replaces the copy-pasted per-generator CI steps:
adding a generated page means adding one entry here, and the docs job,
the tier-1 sync test, and a local ``python tools/check_docs.py`` all
pick it up.

Exit code 0 when everything is in sync, 1 otherwise (every failing
check is reported, not just the first).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: (label, argv) — every check the docs job runs, in order.
CHECKS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("intra-repo markdown links", ("tools/check_links.py",)),
    (
        "docs/SCENARIOS.md vs scenario registry",
        ("tools/gen_scenario_docs.py", "--check"),
    ),
    ("docs/FAULTS.md vs fault registry", ("tools/gen_fault_docs.py", "--check")),
    (
        "docs/DIRECTORIES.md vs directory-backend registry",
        ("tools/gen_directory_docs.py", "--check"),
    ),
    ("docs/SWEEPS.md vs sweep registry", ("tools/gen_sweep_docs.py", "--check")),
    (
        "docs/EXPERIMENTS.md vs experiment registry",
        ("tools/gen_experiment_docs.py", "--check"),
    ),
    (
        "results/figures vs committed experiment reports",
        ("tools/plot_experiments.py", "--check"),
    ),
    (
        "docs/BENCHMARKS.md vs committed baselines",
        ("tools/gen_bench_docs.py", "--check"),
    ),
    (
        "docs/LINTING.md vs reprolint rule registry",
        ("tools/gen_lint_docs.py", "--check"),
    ),
)


def _unregistered_generators() -> list[str]:
    """Every ``tools/gen_*_docs.py`` must appear in :data:`CHECKS`.

    A generated page whose generator never joined the registry would
    pass CI while drifting silently; this self-check turns the omission
    into a hard failure.
    """
    registered = {args[0] for _, args in CHECKS}
    return sorted(
        f"tools/{path.name}"
        for path in (REPO / "tools").glob("gen_*_docs.py")
        if f"tools/{path.name}" not in registered
    )


def main(argv: list[str]) -> int:
    missing = _unregistered_generators()
    if missing:
        print(
            "check_docs: generator(s) not registered in CHECKS: "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    failed = []
    for label, args in CHECKS:
        proc = subprocess.run(
            [sys.executable, str(REPO / args[0]), *args[1:]],
            capture_output=True,
            text=True,
        )
        status = "ok" if proc.returncode == 0 else "FAIL"
        print(f"[{status}] {label}")
        if proc.returncode != 0:
            failed.append(label)
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
    if failed:
        print(
            f"check_docs: {len(failed)}/{len(CHECKS)} check(s) failed: "
            + "; ".join(failed),
            file=sys.stderr,
        )
        return 1
    print(f"check_docs: all {len(CHECKS)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
