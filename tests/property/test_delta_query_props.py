"""Property tests: merged delta queries equal the one-shot answer.

The incremental analyzer's evidence model: a reader issuing
``since_seq`` delta rounds against a store that keeps ingesting,
merging newer summaries over older ones by flow, must converge on
exactly what a single query at the final watermark returns — for the
flat and the sharded store alike, for any interleaving of ingests and
query rounds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.epoch import EpochRange
from repro.hostd.query import QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.hostd.sharded import ShardedRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP

SWITCH_SETS = (("S1",), ("S2",), ("S1", "S2"))


def flow_key(i: int) -> FlowKey:
    return FlowKey(f"s{i}", "dst", 1000 + i, 9, PROTO_UDP)


@st.composite
def ingest_script(draw):
    """A sequence of (flow, switch set, epoch lo) ingests plus the
    positions at which the incremental reader runs a delta round."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = [
        (draw(st.integers(min_value=0, max_value=7)),
         draw(st.sampled_from(SWITCH_SETS)),
         draw(st.integers(min_value=0, max_value=5)))
        for _ in range(n)
    ]
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=n),
                                min_size=0, max_size=4)))
    return ops, cuts


def _ingest(store, i, switches, lo, t):
    store.ingest(flow_key(i), nbytes=100, t=t, priority=0,
                 switch_path=list(switches),
                 ranges={sw: EpochRange(lo, lo + 1) for sw in switches},
                 observed_epoch=lo)


def _merged_delta_rounds(store, ops, cuts, switch, epochs):
    """Ingest ``ops``, running a delta round at every cut (and once at
    the end); return the reader's merged evidence by flow."""
    engine = QueryEngine(store)
    merged = {}
    since = None
    start = 0
    for cut in cuts + [len(ops)]:
        for t, (i, switches, lo) in enumerate(ops[start:cut], start):
            _ingest(store, i, switches, lo, t=0.001 * (t + 1))
        res = engine.flows_matching(switch, epochs, since_seq=since)
        for summary in res.payload:
            merged[summary.flow] = summary
        assert res.as_of_seq == store.ingested
        since = res.as_of_seq
        start = cut
    return merged


def _one_shot(store_factory, ops, switch, epochs):
    store = store_factory()
    for t, (i, switches, lo) in enumerate(ops):
        _ingest(store, i, switches, lo, t=0.001 * (t + 1))
    res = QueryEngine(store).flows_matching(switch, epochs)
    return {summary.flow: summary for summary in res.payload}


STORES = {
    "flat": lambda: FlowRecordStore("h"),
    "sharded": lambda: ShardedRecordStore("h", n_shards=4),
}


@pytest.mark.parametrize("layout", sorted(STORES))
@pytest.mark.parametrize("epochs", [None, EpochRange(2, 4)],
                         ids=["all-epochs", "windowed"])
@given(script=ingest_script())
@settings(max_examples=40, deadline=None)
def test_delta_rounds_converge_on_the_one_shot_answer(
        layout, epochs, script):
    ops, cuts = script
    factory = STORES[layout]
    merged = _merged_delta_rounds(factory(), ops, cuts, "S1", epochs)
    want = _one_shot(factory, ops, "S1", epochs)
    assert set(merged) == set(want)
    for flow, summary in want.items():
        assert merged[flow] == summary


@pytest.mark.parametrize("layout", sorted(STORES))
def test_since_seq_excludes_older_records(layout):
    store = STORES[layout]()
    _ingest(store, 0, ("S1",), 0, t=0.001)
    seq = QueryEngine(store).flows_matching("S1").as_of_seq
    _ingest(store, 1, ("S1",), 0, t=0.002)
    res = QueryEngine(store).flows_matching("S1", since_seq=seq)
    assert [s.flow for s in res.payload] == [flow_key(1)]


@pytest.mark.parametrize("layout", sorted(STORES))
def test_updated_record_reappears_in_the_next_delta(layout):
    """An update to an already-reported flow crosses the watermark."""
    store = STORES[layout]()
    _ingest(store, 0, ("S1",), 0, t=0.001)
    seq = QueryEngine(store).flows_matching("S1").as_of_seq
    _ingest(store, 0, ("S1",), 3, t=0.002)
    res = QueryEngine(store).flows_matching("S1", since_seq=seq)
    assert [s.flow for s in res.payload] == [flow_key(0)]
    assert res.payload[0].packets == 2
