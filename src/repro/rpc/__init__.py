"""Simulated control-plane RPC (flask/HTTP substitute) with latency model."""

from .fabric import Breakdown, LatencyModel, RpcFabric

__all__ = ["LatencyModel", "RpcFabric", "Breakdown"]
