"""Property tests: TCP conservation and rate invariants.

For arbitrary (bounded) transfer sizes, buffer depths, and competing
load, the Reno model must never invent data: the receiver's contiguous
prefix cannot exceed what the sender offered, completion implies exact
delivery, and the delivered rate never exceeds the line rate.
"""

from hypothesis import given, settings, strategies as st

from repro.simnet.queues import DropTailFIFO, StrictPriorityQueue
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import Network
from repro.simnet.traffic import UdpCbrSource, UdpSink
from repro.simnet.packet import PRIO_HIGH


def dumbbell(capacity_bytes, *, priority_queues):
    qf = (lambda: StrictPriorityQueue(3, capacity_bytes=capacity_bytes)
          ) if priority_queues else (
        lambda: DropTailFIFO(capacity_bytes=capacity_bytes))
    net = Network()
    s1, s2 = net.add_switch("S1"), net.add_switch("S2")
    net.connect(s1, s2, queue_factory=qf)
    for name, sw in (("a", s1), ("c", s1), ("b", s2), ("d", s2)):
        net.connect(net.add_host(name), sw, queue_factory=qf)
    net.compute_routes()
    return net


@settings(max_examples=20, deadline=None)
@given(nbytes=st.integers(min_value=1, max_value=500_000),
       capacity=st.sampled_from([4_000, 16_000, 256 * 1024]))
def test_transfer_conservation_under_drops(nbytes, capacity):
    net = dumbbell(capacity, priority_queues=False)
    sender, receiver = open_tcp_flow(
        net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
        total_bytes=nbytes)
    sender.start()
    net.run(until=3.0)
    # never invent data
    assert receiver.rcv_next <= sender.snd_next
    assert sender.snd_una <= receiver.rcv_next + sender.mss * 4
    # a bounded transfer over a live path eventually completes, exactly
    assert sender.done
    assert receiver.rcv_next == nbytes


@settings(max_examples=15, deadline=None)
@given(nbytes=st.integers(min_value=10_000, max_value=300_000),
       burst_ms=st.integers(min_value=0, max_value=5))
def test_completion_despite_priority_interference(nbytes, burst_ms):
    net = dumbbell(4 * 1024 * 1024, priority_queues=True)
    sender, receiver = open_tcp_flow(
        net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
        total_bytes=nbytes, min_rto=0.010)
    sender.start()
    UdpSink(net.hosts["d"], 7)
    if burst_ms:
        UdpCbrSource(net.sim, net.hosts["c"], "d", sport=7, dport=7,
                     rate_bps=1e9, priority=PRIO_HIGH, start=0.002,
                     duration=burst_ms / 1000.0)
    net.run(until=3.0)
    assert sender.done
    assert receiver.rcv_next == nbytes


@settings(max_examples=15, deadline=None)
@given(nbytes=st.integers(min_value=50_000, max_value=400_000))
def test_rate_never_exceeds_line_rate(nbytes):
    net = dumbbell(256 * 1024, priority_queues=False)
    deliveries = []
    sender, receiver = open_tcp_flow(
        net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
        total_bytes=nbytes,
        on_payload=lambda p, t: deliveries.append((t, p.size)))
    sender.start()
    net.run(until=3.0)
    assert sender.done
    # goodput over the whole transfer is under 1 Gbps (line rate)
    duration = deliveries[-1][0] - deliveries[0][0] if len(
        deliveries) > 1 else 1e-9
    if duration > 1e-6:
        rate = sum(s for _, s in deliveries) * 8 / duration
        assert rate <= 1.05e9
