"""Command-line interface: run scenarios and experiments from the shell.

Usage::

    python -m repro.cli list                     # every registered scenario
    python -m repro.cli run incast               # any name or alias
    python -m repro.cli run gray-failure --knob fault_switch=S2
    python -m repro.cli run fig3                 # fig ids are aliases
    python -m repro.cli sweep list               # registered scale sweeps
    python -m repro.cli sweep run incast --grid hosts=64,256,1024
    python -m repro.cli sweep run incast-scale --grid hosts=256 flows=2000
    python -m repro.cli sweep nightly            # every sweep, reduced grid
    python -m repro.cli experiment list          # registered run-table studies
    python -m repro.cli experiment run skew-degradation --reps 5
    python -m repro.cli experiment nightly       # every experiment
    python -m repro.cli faults list              # registered faults
    python -m repro.cli directory list           # directory-set backends
    python -m repro.cli sizing --hosts 100000 --alpha 10 --k 3

``list``, ``run``, ``sweep``, and ``faults`` are driven entirely by
the scenario, sweep, and fault registries (:mod:`repro.scenarios`,
:mod:`repro.sweep`, :mod:`repro.faults`): registering a new scenario
class, sweep spec, or fault class makes it appear here with no CLI
edits.  The historical figure ids (``fig2a``, ``fig3``,
...) remain available both as registry aliases to ``run`` and as
standalone subcommands that print the original sweep tables.

The heavy lifting lives in :mod:`repro.scenarios`, :mod:`repro.sweep`,
and :mod:`repro.core.sizing`; this module only parses arguments and
prints.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analyzer.apps import (diagnose_contention, diagnose_load_imbalance,
                            diagnose_red_lights, diagnose_cascade)
from .core.epoch import EpochRange
from .core.rng import seed_run
from .core.sizing import (push_bandwidth_bps, recycling_period_ms,
                          total_switch_memory_bytes)
from .experiment import (EXPERIMENTS, Experiment, ExperimentError,
                         validate_experiment_report)
from .faults import FAULTS
from .scenarios import (REGISTRY, ScenarioError, run_cascades_scenario,
                        run_contention_scenario,
                        run_load_imbalance_scenario,
                        run_red_lights_scenario, run_scenario)
from .simnet.engine import SimulationError
from .sweep import (SWEEPS, GridError, Sweep, SweepError, parse_grid,
                    validate_report, DEFAULT_BASE_SEED)

#: Non-scenario commands (the resource-arithmetic calculator).
SIZING_DESC = "Fig 10/11 resource arithmetic for one (n, alpha, k)"

#: Legacy sweep subcommands, kept for scripts that predate the registry.
LEGACY_FIGURES = {
    "fig2a": "priority-based flow contention (victim starvation sweep)",
    "fig2b": "microburst-based flow contention (FIFO sweep)",
    "fig3": "too many red lights (per-switch victim throughput)",
    "fig4": "traffic cascades (with vs without)",
    "fig7": "debugging-time breakdown for priority contention",
    "fig8": "load-imbalance diagnosis latency sweep",
}


# ---------------------------------------------------------------------------
# registry-driven commands
# ---------------------------------------------------------------------------

def cmd_list(_args) -> int:
    print("scenarios (python -m repro.cli run <name>):")
    for spec in REGISTRY.specs():
        aliases = f" [{','.join(spec.aliases)}]" if spec.aliases else ""
        print(f"  {spec.name:15s}{aliases:15s} {spec.summary}")
    print("other commands:")
    print(f"  {'sizing':30s} {SIZING_DESC}")
    return 0


def _coerce(text: str):
    """Best-effort knob value parsing: bool, int, float, then str."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_knobs(pairs: list[str]) -> dict:
    knobs = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --knob expects key=value, got {pair!r}")
        knobs[key] = _coerce(value)
    return knobs


def cmd_run(args) -> int:
    try:
        if args.seed is not None:
            # replay path for sweep points: seed exactly as the sweep
            # worker does, so `run --seed <point seed> --knob ...`
            # reproduces that point bit-for-bit
            seed_run(args.seed)
        result = run_scenario(args.scenario,
                              **_parse_knobs(args.knob))
    except (ScenarioError, ValueError, TypeError, KeyError,
            SimulationError) as exc:
        # registry misses and invalid knob names/values/types land here —
        # a clean message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in result.summary_lines():
        print(line)
    return 0


# ---------------------------------------------------------------------------
# faults (registry-driven, like run/list)
# ---------------------------------------------------------------------------

def cmd_faults_list(_args) -> int:
    print("faults (composable via scenario knobs / FaultPlan; "
          "docs/FAULTS.md):")
    for spec in FAULTS.specs():
        params = ",".join(spec.params) or "-"
        print(f"  {spec.name:20s} params: {params}")
        print(f"  {'':20s} {spec.summary}")
    print(f"{len(FAULTS)} fault(s) registered; every fault also takes "
          f"start= and stop=")
    return 0


# ---------------------------------------------------------------------------
# directory backends (registry-driven, like faults)
# ---------------------------------------------------------------------------

def cmd_directory_list(_args) -> int:
    from .directory import (available_directories, directory_memory_notes,
                            directory_summaries, resolve_directory)
    print("directory backends (scenario knobs directory_backend= / "
          "directory_bits= / directory_hashes=; docs/DIRECTORIES.md):")
    summaries = directory_summaries()
    notes = directory_memory_notes()
    for name in available_directories():
        print(f"  {name:20s} {summaries[name]}")
        print(f"  {'':20s} memory: {notes[name]}")
    print(f"{len(summaries)} backend(s) registered; \"auto\" resolves to "
          f"{resolve_directory('auto')!r} (every sketch is "
          f"superset-checked at registration: no false negatives)")
    return 0


# ---------------------------------------------------------------------------
# scale sweeps (registry-driven, like run/list)
# ---------------------------------------------------------------------------

def cmd_sweep_list(_args) -> int:
    print("sweeps (python -m repro.cli sweep run <name>):")
    for spec in SWEEPS.specs():
        axes = ",".join(spec.axes)
        print(f"  {spec.name:15s} scenario: {spec.scenario}  axes: {axes}")
        print(f"  {'':15s} {spec.summary}")
    return 0


def _show_point(point) -> None:
    """One progress line per finished grid point."""
    params = ", ".join(f"{k}={v}" for k, v in point.params.items())
    if point.error is not None:
        status = f"ERROR: {point.error}"
    elif point.diagnosis_ok:
        suspects = ",".join(point.suspects) or "-"
        status = f"ok [suspect: {suspects}]"
    else:
        status = f"MISDIAGNOSED: {point.problems or 'no verdict'}"
    fresh = (f"  freshness={point.freshness}"
             if point.freshness else "")
    print(f"  point {point.index}: {params}  "
          f"{point.wall_time_s:6.2f}s  "
          f"flows={point.flow_count}  "
          f"peak_records={point.peak_records}{fresh}  {status}")


def _write_report(report, out: Path) -> list[str]:
    """Validate and persist one SweepReport; returns schema problems."""
    doc = report.to_json()
    problems = validate_report(doc)
    if problems:
        # a structurally invalid report is a bug, not a result
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return problems
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    summary = report.summary()
    print(f"{summary['ok']}/{summary['points']} points ok "
          f"({summary['errors']} errors, "
          f"{summary['diagnosis_failures']} misdiagnosed) "
          f"in {summary['wall_time_s']:.2f}s")
    print(f"report: {out}")
    return []


def cmd_sweep_run(args) -> int:
    try:
        spec = SWEEPS.get(args.sweep)
        # --grid accepts several axis expressions per flag and repeats:
        # `--grid hosts=256 flows=2000` == `--grid hosts=256 --grid
        # flows=2000`; argparse hands us one list per flag
        exprs = [expr for group in args.grid for expr in group]
        grid = parse_grid(exprs) if exprs else None
        extra_points = None
        if getattr(args, "nightly", False) and grid is None:
            # registration guarantees every spec declares a nightly grid
            grid = {axis: list(vals)
                    for axis, vals in spec.nightly_grid.items()}
            extra_points = [dict(p) for p in spec.nightly_points]
        sweep = Sweep(spec, grid, workers=args.workers,
                      base_seed=args.seed,
                      extra_knobs=_parse_knobs(args.knob),
                      extra_points=extra_points)
    except (SweepError, GridError, ScenarioError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"sweep {spec.name}: {len(sweep.params)} points, "
          f"{sweep.workers} worker(s)")
    report = sweep.run(on_point=_show_point)
    out = Path(args.out) if args.out else (
        Path("results") / f"sweep_{spec.name}.json")
    if _write_report(report, out):
        return 2
    return 0 if report.all_ok else 1


def cmd_sweep_nightly(args) -> int:
    """Run every registered sweep at its reduced nightly grid.

    The registry-driven replacement for hard-coding one CI step per
    sweep: registering a new ``SweepSpec`` (which must declare a
    nightly grid) is all it takes to join the scheduled run.  One
    report file per sweep lands under ``--out-dir``.
    """
    names = SWEEPS.names()
    if args.only:
        unknown = [n for n in args.only if n not in SWEEPS]
        if unknown:
            print(f"error: no sweep registered for {unknown[0]!r}; "
                  f"known: {', '.join(names)}", file=sys.stderr)
            return 2
        names = [n for n in names if n in set(args.only)]
    out_dir = Path(args.out_dir)
    failed: list[str] = []
    for name in names:
        spec = SWEEPS.get(name)
        grid = {axis: list(vals)
                for axis, vals in spec.nightly_grid.items()}
        try:
            sweep = Sweep(spec, grid, workers=args.workers,
                          base_seed=args.seed,
                          extra_points=[dict(p)
                                        for p in spec.nightly_points])
        except (SweepError, GridError, ScenarioError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            failed.append(name)
            continue
        nightly = " ".join(f"{axis}={','.join(str(v) for v in vals)}"
                           for axis, vals in grid.items())
        extra = "".join(
            " +" + ",".join(f"{a}={v}" for a, v in point.items())
            for point in spec.nightly_points)
        print(f"sweep {name} (nightly grid {nightly}{extra}): "
              f"{len(sweep.params)} points, {sweep.workers} worker(s)")
        report = sweep.run(on_point=_show_point)
        out = out_dir / f"sweep_nightly_{name}.json"
        if _write_report(report, out) or not report.all_ok:
            failed.append(name)
    print(f"nightly: {len(names) - len(failed)}/{len(names)} sweeps ok"
          + (f" (failed: {', '.join(failed)})" if failed else ""))
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# experiments (seeded run tables over registered sweeps)
# ---------------------------------------------------------------------------

def cmd_experiment_list(_args) -> int:
    print("experiments (python -m repro.cli experiment run <name>):")
    for spec in EXPERIMENTS.specs():
        points = 1
        for values in spec.axes.values():
            points *= len(values)
        axes = ",".join(spec.axes)
        print(f"  {spec.name:20s} sweep: {spec.sweep}  axes: {axes}  "
              f"table: {points}x{spec.reps}")
        print(f"  {'':20s} {spec.summary}")
    return 0


def _show_run(run, event) -> None:
    """One progress line per accounted-for (point, rep) run."""
    params = ", ".join(f"{k}={v}" for k, v in run.params.items())
    print(f"  run {run.index} (point {run.point} rep {run.rep}): "
          f"{params}  seed={run.seed}  [{event}]")


def _finish_experiment(experiment, report, out_dir: Path) -> int:
    """Validate, summarise, and grade one completed (or partial) study."""
    if report is None:
        done = sum(1 for p in (out_dir / "runs").glob("point*.json"))
        print(f"incomplete: {done}/{len(experiment.runs)} runs on disk; "
              f"re-invoke to finish (report not written)")
        return 0
    problems = validate_experiment_report(report.to_json())
    if problems:
        # a structurally invalid report is a bug, not a result
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    summary = report.summary()
    print(f"{summary['ok_runs']}/{summary['runs']} runs diagnosed "
          f"correctly across {summary['points']} point(s) "
          f"(mean accuracy {summary['mean_accuracy']:.2f}, "
          f"{summary['errors']} errors, "
          f"{summary['pending_faults']} pending faults)")
    print(f"report: {out_dir / 'report.json'}")
    # misdiagnosis under stress is the measurement; only errors fail
    return 0 if report.error_free else 1


def cmd_experiment_run(args) -> int:
    try:
        spec = EXPERIMENTS.get(args.experiment)
        exprs = [expr for group in args.grid for expr in group]
        grid = parse_grid(exprs) if exprs else None
        experiment = Experiment(spec, grid=grid, reps=args.reps,
                                base_seed=args.seed,
                                extra_knobs=_parse_knobs(args.knob))
    except (ExperimentError, SweepError, GridError, ScenarioError,
            ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir) if args.out_dir else (
        Path("results") / "experiments" / spec.name)
    points = len({run.point for run in experiment.runs})
    print(f"experiment {spec.name}: {points} point(s) x "
          f"{experiment.reps} rep(s) = {len(experiment.runs)} runs")
    try:
        report = experiment.execute(out_dir, workers=args.workers,
                                    max_runs=args.max_runs,
                                    on_run=_show_run)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _finish_experiment(experiment, report, out_dir)


def cmd_experiment_nightly(args) -> int:
    """Run every registered experiment at its declared run table.

    The registry-driven pattern ``sweep nightly`` set: registering an
    ``ExperimentSpec`` is all it takes to join the scheduled run; one
    artifact directory (with its ``report.json``) lands per experiment
    under ``--out-dir``.
    """
    names = EXPERIMENTS.names()
    if args.only:
        unknown = [n for n in args.only if n not in EXPERIMENTS]
        if unknown:
            print(f"error: no experiment registered for {unknown[0]!r}; "
                  f"known: {', '.join(names)}", file=sys.stderr)
            return 2
        names = [n for n in names if n in set(args.only)]
    failed: list[str] = []
    for name in names:
        spec = EXPERIMENTS.get(name)
        experiment = Experiment(spec, base_seed=args.seed)
        out_dir = Path(args.out_dir) / name
        points = len({run.point for run in experiment.runs})
        print(f"experiment {name}: {points} point(s) x "
              f"{experiment.reps} rep(s) = {len(experiment.runs)} runs")
        try:
            report = experiment.execute(out_dir, workers=args.workers,
                                        on_run=_show_run)
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            failed.append(name)
            continue
        if _finish_experiment(experiment, report, out_dir) > 1:
            failed.append(name)
        elif report is not None and not report.error_free:
            failed.append(name)
    print(f"nightly: {len(names) - len(failed)}/{len(names)} "
          f"experiments ok"
          + (f" (failed: {', '.join(failed)})" if failed else ""))
    return 1 if failed else 0


# ---------------------------------------------------------------------------
# legacy figure sweeps
# ---------------------------------------------------------------------------

def cmd_fig2(args, discipline: str) -> int:
    print("m_flows  starvation_ms  max_gap_ms  timeouts")
    for m in args.flows:
        res = run_contention_scenario(m, discipline=discipline,
                                      duration=0.045, watch=False)
        print(f"  {m:5d}  {res.starvation_ms():12.1f}  "
              f"{res.max_gap_ms():9.2f}  {res.tcp_timeouts:8d}")
    return 0


def cmd_fig3(_args) -> int:
    res = run_red_lights_scenario()
    for label, probe in (("S1", res.tput_at_s1), ("S2", res.tput_at_s2)):
        print(f"victim throughput at {label} egress:")
        for t, g in probe.series():
            if t > 0.009:
                break
            print(f"  {t * 1e3:6.2f} ms  {g:5.2f} Gbps")
    if res.alerts:
        v = diagnose_red_lights(res.deployment.analyzer, res.alerts[0])
        print(f"diagnosis: {v.narrative}")
    return 0


def cmd_fig4(_args) -> int:
    for cascaded in (False, True):
        res = run_cascades_scenario(cascaded=cascaded)
        tag = "with cascade" if cascaded else "without cascade"
        print(f"{tag}: C-E completed at "
              f"{res.ce_completed_at * 1e3:.1f} ms")
        if cascaded and res.alerts:
            v = diagnose_cascade(res.deployment.analyzer, res.alerts[0])
            print(f"  {v.narrative}")
    return 0


def cmd_fig7(args) -> int:
    print("m    total_ms  hosts  verdict")
    for m in args.flows:
        res = run_contention_scenario(m, discipline="priority",
                                      duration=0.045)
        if not res.alerts:
            print(f"  {m:3d}  (no alert)")
            continue
        v = diagnose_contention(res.deployment.analyzer, res.alerts[0])
        print(f"  {m:3d}  {v.total_time_s * 1e3:7.1f}  "
              f"{len(v.hosts_consulted):5d}  {v.problem}")
    return 0


def cmd_fig8(args) -> int:
    print("servers  diagnosis_ms  imbalanced")
    for n in args.servers:
        res = run_load_imbalance_scenario(n)
        v = diagnose_load_imbalance(
            res.deployment.analyzer, res.suspect_switch,
            epochs=EpochRange(0, res.last_epoch))
        print(f"  {n:5d}  {v.total_time_s * 1e3:12.1f}  {v.imbalanced}")
    return 0


def cmd_sizing(args) -> int:
    n, alpha, k = args.hosts, args.alpha, args.k
    print(f"n={n}, alpha={alpha} ms, k={k}:")
    print(f"  switch memory: "
          f"{total_switch_memory_bytes(n, alpha, k) / 1e6:.3f} MB")
    print(f"  push bandwidth: "
          f"{push_bandwidth_bps(n, alpha, k) / 1e6:.4f} Mbps")
    for h in range(1, k):
        print(f"  level {h} recycling period: "
              f"{recycling_period_ms(alpha, h):.0f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="SwitchPointer reproduction — experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")
    pr = sub.add_parser("run", help="run one scenario through "
                                    "build/run/collect/diagnose")
    pr.add_argument("scenario",
                    help="registry name or alias (see `list`)")
    pr.add_argument("--knob", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="override a scenario knob (repeatable)")
    pr.add_argument("--seed", type=int, default=None,
                    help="seed the RNG before building (replays a "
                         "sweep point's recorded seed)")

    psweep = sub.add_parser("sweep", help="scale sweeps: run a scenario "
                                          "across a parameter grid")
    sweep_sub = psweep.add_subparsers(dest="sweep_command", required=True)
    sweep_sub.add_parser("list", help="list registered sweeps")
    psr = sweep_sub.add_parser("run", help="run one sweep and write a "
                                           "SweepReport JSON")
    psr.add_argument("sweep", help="sweep registry name (see "
                                   "`sweep list`)")
    psr.add_argument("--grid", action="append", nargs="+", default=[],
                     metavar="AXIS=V1,V2,...",
                     help="grid axes (one or more per flag, flag "
                          "repeatable); default: the sweep's declared "
                          "grid")
    psr.add_argument("--workers", type=int, default=None,
                     help="parallel point workers (default: cpu count)")
    psr.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                     help="base seed for per-point seeds")
    psr.add_argument("--out", default=None,
                     help="report path (default: "
                          "results/sweep_<name>.json)")
    psr.add_argument("--knob", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="pin a scenario knob for every point "
                          "(repeatable)")
    psr.add_argument("--nightly", action="store_true",
                     help="use the sweep's reduced nightly grid")
    psn = sweep_sub.add_parser(
        "nightly", help="run every registered sweep at its reduced "
                        "nightly grid (one report per sweep)")
    psn.add_argument("--out-dir", default="results",
                     help="directory for the per-sweep "
                          "sweep_nightly_<name>.json reports")
    psn.add_argument("--workers", type=int, default=None,
                     help="parallel point workers (default: cpu count)")
    psn.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                     help="base seed for per-point seeds")
    psn.add_argument("--only", action="append", default=[],
                     metavar="NAME",
                     help="restrict to this sweep (repeatable; "
                          "default: all registered)")

    pexp = sub.add_parser("experiment",
                          help="seeded run tables: repeat a sweep's "
                               "points and aggregate degradation curves")
    exp_sub = pexp.add_subparsers(dest="experiment_command", required=True)
    exp_sub.add_parser("list", help="list registered experiments")
    per = exp_sub.add_parser("run", help="run one experiment into a "
                                         "resumable artifact directory")
    per.add_argument("experiment", help="experiment registry name (see "
                                        "`experiment list`)")
    per.add_argument("--grid", action="append", nargs="+", default=[],
                     metavar="AXIS=V1,V2,...",
                     help="override the run-table axes (one or more per "
                          "flag, flag repeatable); default: the "
                          "experiment's declared axes")
    per.add_argument("--reps", type=int, default=None,
                     help="repetitions per grid point (default: the "
                          "experiment's declared reps)")
    per.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                     help="base seed for per-(point,rep) seeds")
    per.add_argument("--out-dir", default=None,
                     help="artifact directory (default: "
                          "results/experiments/<name>)")
    per.add_argument("--workers", type=int, default=1,
                     help="parallel run workers (default: 1, inline)")
    per.add_argument("--max-runs", type=int, default=None,
                     help="execute at most N new runs this invocation "
                          "(study resumes on re-invocation)")
    per.add_argument("--knob", action="append", default=[],
                     metavar="KEY=VALUE",
                     help="pin a scenario knob for every run "
                          "(repeatable)")
    pen = exp_sub.add_parser(
        "nightly", help="run every registered experiment at its "
                        "declared run table (one report per experiment)")
    pen.add_argument("--out-dir", default="results/experiments",
                     help="directory for the per-experiment artifact "
                          "directories")
    pen.add_argument("--workers", type=int, default=1,
                     help="parallel run workers (default: 1, inline)")
    pen.add_argument("--seed", type=int, default=DEFAULT_BASE_SEED,
                     help="base seed for per-(point,rep) seeds")
    pen.add_argument("--only", action="append", default=[],
                     metavar="NAME",
                     help="restrict to this experiment (repeatable; "
                          "default: all registered)")

    pfaults = sub.add_parser("faults", help="composable fault injection: "
                                            "inspect the fault registry")
    faults_sub = pfaults.add_subparsers(dest="faults_command",
                                        required=True)
    faults_sub.add_parser("list", help="list registered faults")

    pdir = sub.add_parser("directory", help="switch directory-set "
                                            "backends: inspect the "
                                            "sketch registry")
    dir_sub = pdir.add_subparsers(dest="directory_command", required=True)
    dir_sub.add_parser("list", help="list registered directory backends")

    for fig in ("fig2a", "fig2b", "fig7"):
        p = sub.add_parser(fig, help=LEGACY_FIGURES[fig])
        p.add_argument("--flows", type=int, nargs="+",
                       default=[1, 2, 4, 8, 16])
    sub.add_parser("fig3", help=LEGACY_FIGURES["fig3"])
    sub.add_parser("fig4", help=LEGACY_FIGURES["fig4"])
    p8 = sub.add_parser("fig8", help=LEGACY_FIGURES["fig8"])
    p8.add_argument("--servers", type=int, nargs="+",
                    default=[4, 8, 16, 32, 64, 96])
    ps = sub.add_parser("sizing", help=SIZING_DESC)
    ps.add_argument("--hosts", type=int, default=100_000)
    ps.add_argument("--alpha", type=int, default=10)
    ps.add_argument("--k", type=int, default=3)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        if args.sweep_command == "list":
            return cmd_sweep_list(args)
        if args.sweep_command == "nightly":
            return cmd_sweep_nightly(args)
        return cmd_sweep_run(args)
    if args.command == "experiment":
        if args.experiment_command == "list":
            return cmd_experiment_list(args)
        if args.experiment_command == "nightly":
            return cmd_experiment_nightly(args)
        return cmd_experiment_run(args)
    if args.command == "faults":
        return cmd_faults_list(args)
    if args.command == "directory":
        return cmd_directory_list(args)
    dispatch = {
        "list": cmd_list,
        "run": cmd_run,
        "fig2a": lambda a: cmd_fig2(a, "priority"),
        "fig2b": lambda a: cmd_fig2(a, "fifo"),
        "fig3": cmd_fig3,
        "fig4": cmd_fig4,
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "sizing": cmd_sizing,
    }
    return dispatch[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
