"""Epoch arithmetic, bounded clock skew, and epoch-range extrapolation.

SwitchPointer switches divide *their local view of time* into epochs of
α ms (§3).  Clocks are not synchronized; the design only assumes the
skew between any two devices is bounded by ε (§4.2.1).  The destination
host observes a single epochID e_i (from the one switch that embedded
it) and must derive, for every other switch on the path, a *range* of
epochs that certainly contains the packet's true epoch there:

* upstream switch, j hops before the embedding switch:
  ``[e_i − (ε + j·Δ)/α,  e_i + ε/α]``
* downstream switch, j hops after:
  ``[e_i − ε/α,  e_i + (ε + j·Δ)/α]``

with Δ the maximum one-hop delay.  Fractions are rounded outward
(ceiling) so the range always covers the truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def ms(x: float) -> float:
    """Milliseconds → seconds."""
    return x / 1000.0


class EpochClock:
    """A device's local epoch counter.

    Parameters
    ----------
    alpha_ms:
        Epoch duration α in milliseconds.
    skew_s:
        This device's constant clock offset from true simulated time, in
        seconds.  The asynchrony model of §4.2.1 only requires that
        ``|skew_a − skew_b| ≤ ε`` for every device pair.
    """

    def __init__(self, alpha_ms: float, skew_s: float = 0.0):
        if alpha_ms <= 0:
            raise ValueError("epoch duration must be positive")
        self.alpha_ms = alpha_ms
        self.skew_s = skew_s

    def set_skew(self, skew_s: float) -> None:
        """Re-offset this clock at runtime (the clock-skew fault hook).

        Every consumer holding the clock — pointer store rotation,
        telemetry decoder, triggers — sees the new offset on its next
        ``epoch_of``/``local_time`` call; nothing is cached.
        """
        if not math.isfinite(skew_s):
            raise ValueError(f"skew must be finite, got {skew_s!r}")
        self.skew_s = skew_s

    @property
    def alpha_s(self) -> float:
        return self.alpha_ms / 1000.0

    def local_time(self, true_time_s: float) -> float:
        return true_time_s + self.skew_s

    def epoch_of(self, true_time_s: float) -> int:
        """EpochID at true simulated time ``true_time_s``.

        A tiny guard absorbs float error at exact epoch boundaries
        (``epoch_start(e)`` must map back to ``e``).
        """
        return math.floor(self.local_time(true_time_s) / self.alpha_s
                          + 1e-9)

    def epoch_start(self, epoch: int) -> float:
        """True time when this device's ``epoch`` begins."""
        return epoch * self.alpha_s - self.skew_s

    def time_into_epoch(self, true_time_s: float) -> float:
        local = self.local_time(true_time_s)
        return local - (local // self.alpha_s) * self.alpha_s


@dataclass(frozen=True)
class EpochRange:
    """Closed integer range of epochIDs ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty epoch range [{self.lo}, {self.hi}]")

    def __contains__(self, epoch: int) -> bool:
        return self.lo <= epoch <= self.hi

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def union(self, other: "EpochRange") -> "EpochRange":
        return EpochRange(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersects(self, other: "EpochRange") -> bool:
        return self.lo <= other.hi and other.lo <= self.hi


class EpochRangeEstimator:
    """Implements the §4.2.1 per-switch epoch-range extrapolation.

    Parameters
    ----------
    alpha_ms:
        Epoch duration α.
    epsilon_ms:
        Bound ε on pairwise clock skew.  Paper example: ε = α.
    delta_ms:
        Bound Δ on one-hop delay (queueing + transmission + propagation).
        Paper example: Δ = 2α; it cites 14 ms max queueing from DCTCP as
        justification that Δ stays within tens of milliseconds.
    """

    def __init__(self, alpha_ms: float, epsilon_ms: float, delta_ms: float):
        if alpha_ms <= 0:
            raise ValueError("alpha must be positive")
        if epsilon_ms < 0 or delta_ms < 0:
            raise ValueError("epsilon and delta cannot be negative")
        self.alpha_ms = alpha_ms
        self.epsilon_ms = epsilon_ms
        self.delta_ms = delta_ms

    def _eps_epochs(self) -> int:
        return math.ceil(self.epsilon_ms / self.alpha_ms)

    def span_epochs(self, j: int) -> int:
        """(ε + j·Δ)/α rounded up — the widening for a j-hop offset."""
        return math.ceil((self.epsilon_ms + j * self.delta_ms)
                         / self.alpha_ms)

    def range_for(self, observed_epoch: int, hop_delta: int) -> EpochRange:
        """Epoch range at a switch ``hop_delta`` hops from the embedder.

        ``hop_delta < 0``: upstream (traversed *before* the embedding
        switch); ``hop_delta > 0``: downstream; ``0``: the embedder
        itself, still widened by ±ε/α = the skew allowance.
        """
        eps = self._eps_epochs()
        if hop_delta == 0:
            return EpochRange(observed_epoch - eps, observed_epoch + eps)
        j = abs(hop_delta)
        span = self.span_epochs(j)
        if hop_delta < 0:
            return EpochRange(observed_epoch - span, observed_epoch + eps)
        return EpochRange(observed_epoch - eps, observed_epoch + span)

    def ranges_for_path(self, switch_path: Sequence[str], embed_index: int,
                        observed_epoch: int) -> dict[str, EpochRange]:
        """Ranges for every switch on the path.

        ``switch_path`` lists switch names in traversal order;
        ``embed_index`` is the position of the switch whose epochID the
        packet carried.
        """
        if not 0 <= embed_index < len(switch_path):
            raise ValueError("embed_index outside the path")
        out = {}
        for pos, name in enumerate(switch_path):
            out[name] = self.range_for(observed_epoch, pos - embed_index)
        return out


def unwrap_epoch(tag_epoch: int, reference_epoch: int,
                 modulus: int = 1 << 12) -> int:
    """Recover an absolute epochID from one carried modulo ``modulus``.

    VLAN tags have 12 bits (§4.1.3), so the wire carries
    ``epoch mod 4096``.  The decoder picks the absolute epoch congruent
    to the tag that lies nearest ``reference_epoch`` (the receiving
    host's own epoch estimate) — valid as long as end-to-end delay plus
    skew stays under half the wrap period, which at α = 10 ms is ~20 s.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    base = reference_epoch - (reference_epoch % modulus) + (
        tag_epoch % modulus)
    candidates = (base - modulus, base, base + modulus)
    return min(candidates, key=lambda e: abs(e - reference_epoch))


def max_pointers_to_examine(max_delay_ms: float, alpha_ms: float) -> int:
    """§4.2.1: "we may need to examine max_delay/α pointers per switch"."""
    if alpha_ms <= 0:
        raise ValueError("alpha must be positive")
    return max(1, math.ceil(max_delay_ms / alpha_ms))
