"""Fig 3 — "too many red lights": cumulative degradation across hops.

Paper: TCP A→F crosses S1, S2, S3; 400 µs high-priority UDP bursts hit
S1 then S2 back to back.  Throughput measured *at S1* dips to ~600 Mbps
and *at S2* to ~200 Mbps — the victim pays at each red light in turn.

Shape checks: both taps dip during the burst window; the S2 dip is at
least as deep as the S1 dip; recovery afterwards.
"""

import pytest

from repro.scenarios import run_red_lights_scenario

from benchmarks.reporting import emit, fmt_series


@pytest.mark.benchmark(group="fig3")
def test_fig3_red_lights(benchmark):
    res = benchmark.pedantic(run_red_lights_scenario, rounds=1,
                             iterations=1)
    window_lo = res.burst1[0] - 0.001
    window_hi = res.burst2[0] + res.burst2[1] + 0.002

    def dip(probe):
        return min(g for t, g in probe.series()
                   if window_lo <= t <= window_hi)

    s1_dip, s2_dip = dip(res.tput_at_s1), dip(res.tput_at_s2)

    lines = ["victim flow A->F throughput at S1 egress:"]
    lines += fmt_series([(t, g) for t, g in res.tput_at_s1.series()
                         if t <= 0.010])
    lines.append("victim flow A->F throughput at S2 egress:")
    lines += fmt_series([(t, g) for t, g in res.tput_at_s2.series()
                         if t <= 0.010])
    lines.append(f"min during bursts: at S1 {s1_dip:.3f} Gbps, "
                 f"at S2 {s2_dip:.3f} Gbps")
    lines.append("(paper: ~0.6 Gbps at S1 vs ~0.2 Gbps at S2 — "
                 "degradation accumulates across red lights)")
    emit("fig3_red_lights", lines)

    assert s1_dip < 0.7          # first red light visibly hurts
    assert s2_dip <= s1_dip      # second hop strictly worse (cumulative)
    # recovery: post-burst the flow returns to near line rate
    tail = [g for t, g in res.tput_at_s2.series()
            if window_hi + 0.001 <= t <= window_hi + 0.003]
    assert max(tail) > 0.9
