#!/usr/bin/env python3
"""Quickstart: deploy SwitchPointer, create contention, debug it.

This is the paper's §3 walkthrough in ~60 lines of API use:

1. build a small network and instrument it with SwitchPointer,
2. run a low-priority TCP flow and slam it with a high-priority burst,
3. watch the destination's trigger fire,
4. let the analyzer walk pointer directory → relevant hosts → culprits.

Run:  python examples/quickstart.py
"""

from repro import SwitchPointerDeployment
from repro.analyzer import diagnose_contention
from repro.simnet import (PRIO_HIGH, PRIO_LOW, TcpTimedFlow, UdpCbrSource,
                          UdpSink)
from repro.simnet.queues import StrictPriorityQueue
from repro.simnet.topology import Network


def build_network() -> Network:
    """Dumbbell: senders behind S1, receivers behind S2, 1 Gbps."""
    net = Network()
    s1, s2 = net.add_switch("S1"), net.add_switch("S2")
    def qf():
        return StrictPriorityQueue(levels=3,
                                   capacity_bytes=4 * 1024 * 1024)
    net.connect(s1, s2, rate_bps=1e9, queue_factory=qf)
    for name, sw in (("alice", s1), ("bursty", s1),
                     ("bob", s2), ("carol", s2)):
        net.connect(net.add_host(name), sw, rate_bps=1e9,
                    queue_factory=qf)
    net.compute_routes()
    return net


def main() -> None:
    net = build_network()
    # Instrument every switch and host: α = 10 ms epochs, 3-level
    # hierarchy, VLAN double-tag telemetry (the paper's defaults).
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2)

    # The victim: a low-priority TCP flow alice -> bob for 60 ms.
    victim = TcpTimedFlow(net.sim, net.hosts["alice"], net.hosts["bob"],
                          duration=0.060, sport=100, dport=200,
                          priority=PRIO_LOW)
    # Watch it at the destination (the §5.1 throughput-drop trigger).
    deploy.watch_flow(victim.sender.flow)

    # The culprit: a 2 ms high-priority UDP burst bursty -> carol that
    # shares the S1->S2 trunk.
    UdpSink(net.hosts["carol"], 7000)
    UdpCbrSource(net.sim, net.hosts["bursty"], "carol", sport=7000,
                 dport=7000, rate_bps=1e9, priority=PRIO_HIGH,
                 start=0.020, duration=0.002)

    net.run(until=0.100)

    alerts = deploy.alerts()
    print(f"alerts fired: {len(alerts)}")
    if not alerts:
        print("no alert — nothing to debug")
        return
    alert = alerts[0]
    print(f"victim {alert.flow.pretty()} alerted at "
          f"{alert.time * 1e3:.1f} ms "
          f"(rate {alert.rate_before_gbps:.2f} -> "
          f"{alert.rate_after_gbps:.2f} Gbps)")
    print(f"alert names switches {alert.switch_path} with epoch ranges "
          f"{[(t.epochs.lo, t.epochs.hi) for t in alert.tuples]}")

    verdict = diagnose_contention(deploy.analyzer, alert)
    print(f"\nverdict: {verdict.problem}")
    print(f"narrative: {verdict.narrative}")
    print(f"hosts consulted: {verdict.hosts_consulted}")
    for c in verdict.culprits:
        print(f"  culprit {c.flow.pretty()} at {c.switch} "
              f"(priority {c.priority}, {c.bytes} B, records at {c.host})")
    print("\nlatency breakdown:")
    for phase, seconds in verdict.breakdown.parts.items():
        print(f"  {phase:20s} {seconds * 1e3:7.2f} ms")
    print(f"  {'TOTAL':20s} {verdict.total_time_s * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
