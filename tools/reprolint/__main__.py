"""CLI for reprolint: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 clean (or all violations baselined), 1 violations or a
stale baseline, 2 usage errors.  ``--fix-baseline`` accepts the current
findings into ``.reprolint-baseline.json`` so a new rule can land
before the tree fully passes it; the committed tree carries none.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from . import (
    BASELINE_NAME,
    RULES,
    LintError,
    load_baseline,
    run_lint,
    write_baseline,
)


def _default_root() -> Path:
    # tools/reprolint/__main__.py -> the repository root two levels up
    return Path(__file__).resolve().parents[2]


def _list_rules() -> None:
    from . import rules as _rules  # noqa: F401  (registers the catalogue)

    for spec in RULES.specs():
        pragma = f"allow[{spec.pragma}]" if spec.pragma else "no pragma"
        print(f"{spec.name:20s} {spec.summary}  ({pragma})")
        print(f"{'':20s} scope: {spec.scope}")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST invariant checks for determinism, registry "
        "conformance, and typed-core completeness.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint, relative to --root "
        "(default: src)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root paths are resolved against (default: the "
        "repository root containing tools/)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help=f"write current violations to {BASELINE_NAME} instead of "
        "failing on them",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_rules()
        return 0

    root = (args.root or _default_root()).resolve()
    if not root.is_dir():
        print(f"reprolint: --root {root} is not a directory", file=sys.stderr)
        return 2
    try:
        violations = run_lint(
            root,
            paths=tuple(args.paths),
            rules=tuple(args.rule) if args.rule else None,
        )
        if args.fix_baseline:
            path = write_baseline(root, violations)
            print(
                f"reprolint: baselined {len(violations)} violation(s) "
                f"in {path}"
            )
            return 0
        baseline = load_baseline(root)
    except LintError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    fresh = [v for v in violations if v.key() not in baseline]
    seen = {v.key() for v in violations}
    stale = sorted(k for k in baseline if k not in seen)

    for violation in fresh:
        print(violation.render())
    for rule, rel, message in stale:
        print(
            f"{rel}: [{rule}] stale baseline entry — the violation is "
            f"gone; remove it from {BASELINE_NAME}: {message}"
        )
    suppressed = len(violations) - len(fresh)
    if fresh or stale:
        summary = f"reprolint: {len(fresh)} violation(s)"
        if suppressed:
            summary += f", {suppressed} baselined"
        if stale:
            summary += f", {len(stale)} stale baseline entr(y/ies)"
        print(summary)
        return 1
    checked = len(RULES.names()) if args.rule is None else len(args.rule)
    print(
        f"reprolint: clean ({checked} rule(s)"
        + (f", {suppressed} baselined" if suppressed else "")
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
