"""Repo tooling: doc generators, CI gates, and the reprolint checker.

The scripts in this directory run standalone (``python tools/<x>.py``);
the ``reprolint`` package runs as a module (``python -m tools.reprolint``)
and is importable for its rule registry and fixture tests.
"""
