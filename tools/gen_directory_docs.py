#!/usr/bin/env python3
"""Generate docs/DIRECTORIES.md from the directory-backend registry.

Usage::

    python tools/gen_directory_docs.py            # (re)write the page
    python tools/gen_directory_docs.py --check    # exit 1 if out of date

The page and ``python -m repro.cli directory list`` render the same
registry metadata, so the catalogue cannot drift from the code.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TARGET = REPO / "docs" / "DIRECTORIES.md"

sys.path.insert(0, str(REPO / "src"))

from repro.directory import directory_markdown  # noqa: E402


def main(argv: list[str]) -> int:
    text = directory_markdown()
    if "--check" in argv:
        current = TARGET.read_text(encoding="utf-8") if TARGET.exists() else ""
        if current != text:
            print(
                f"{TARGET.relative_to(REPO)} is out of date; "
                f"run: python tools/gen_directory_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{TARGET.relative_to(REPO)} is up to date")
        return 0
    TARGET.parent.mkdir(exist_ok=True)
    TARGET.write_text(text, encoding="utf-8")
    print(f"wrote {TARGET.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
