"""Unit tests for the SwitchPointer per-packet pipeline."""

import pytest

from repro.core.epoch import EpochClock
from repro.core.headers import IntStack, VlanDoubleTag
from repro.core.mphf import HostDirectory
from repro.core.pointer import HierarchicalPointerStore
from repro.simnet.packet import PROTO_UDP, make_udp
from repro.simnet.topology import build_linear
from repro.switchd.cherrypick import CherryPickPlanner
from repro.switchd.datapath import (MODE_INT, MODE_NONE, MODE_VLAN,
                                    SwitchPointerDatapath, VanillaDatapath)


def instrumented_linear(mode=MODE_VLAN, alpha_ms=10, k=2):
    net = build_linear(3, 1)
    directory = HostDirectory(net.host_names)
    planner = CherryPickPlanner(net)
    dps = {}
    for name, sw in net.switches.items():
        store = HierarchicalPointerStore(directory.n, alpha=alpha_ms, k=k)
        dps[name] = SwitchPointerDatapath(
            sw, EpochClock(alpha_ms), directory.mphf, store,
            planner=planner, mode=mode)
    return net, directory, dps


class TestPointerUpdates:
    def test_every_forwarded_packet_updates_pointer(self):
        net, directory, dps = instrumented_linear()
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        slot = directory.slot_of("h3_0")
        for name in ("S1", "S2", "S3"):
            assert dps[name].packets_processed == 1
            assert slot in dps[name].store.slots_for_epochs(0, 0)

    def test_slot_matches_directory(self):
        net, directory, dps = instrumented_linear()
        slot = dps["S1"].process_slot_update("h3_0", epoch=0)
        assert slot == directory.slot_of("h3_0")

    def test_epoch_taken_from_switch_clock(self):
        net, directory, dps = instrumented_linear(alpha_ms=10)
        sim = net.sim
        sim.schedule(0.025, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        # 25 ms -> epoch 2
        assert directory.slot_of("h3_0") in \
            dps["S1"].store.slots_for_epochs(2, 2)
        assert not dps["S1"].store.slots_for_epochs(0, 1)


class TestVlanEmbedding:
    def test_single_tag_embedded_at_pinning_hop(self):
        net, _, dps = instrumented_linear(MODE_VLAN)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        tag = got[0].telemetry
        assert isinstance(tag, VlanDoubleTag)
        # total embeds across the path: exactly one
        assert sum(dp.tags_embedded for dp in dps.values()) == 1

    def test_tag_carries_pinning_link_and_epoch(self):
        net, _, dps = instrumented_linear(MODE_VLAN)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.sim.schedule(0.033, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        tag = got[0].telemetry
        link = net.link_by_vlan(tag.link_id)
        assert "S1" in link.endpoints  # first switch's egress pinned
        assert tag.epoch_tag == 3

    def test_downstream_switch_does_not_overwrite(self):
        net, _, dps = instrumented_linear(MODE_VLAN)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        assert dps["S2"].tags_embedded == 0
        assert dps["S3"].tags_embedded == 0

    def test_vlan_mode_requires_planner(self):
        net = build_linear(2, 1)
        directory = HostDirectory(net.host_names)
        store = HierarchicalPointerStore(directory.n, alpha=10, k=2)
        with pytest.raises(ValueError):
            SwitchPointerDatapath(net.switches["S1"], EpochClock(10),
                                  directory.mphf, store, mode=MODE_VLAN)


class TestIntEmbedding:
    def test_every_hop_appends_record(self):
        net, _, dps = instrumented_linear(MODE_INT)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        stack = got[0].telemetry
        assert isinstance(stack, IntStack)
        assert stack.switch_path() == ["S1", "S2", "S3"]

    def test_int_records_per_switch_epochs(self):
        net, _, dps = instrumented_linear(MODE_INT, alpha_ms=10)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.sim.schedule(0.015, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        stack = got[0].telemetry
        assert stack.epoch_at("S1") == 1
        assert stack.epoch_at("S3") == 1


class TestModes:
    def test_none_mode_embeds_nothing(self):
        net, _, dps = instrumented_linear(MODE_NONE)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        assert got[0].telemetry is None
        # pointers still maintained (directory-only deployment)
        assert dps["S1"].store.updates == 1

    def test_unknown_mode_rejected(self):
        net = build_linear(2, 1)
        directory = HostDirectory(net.host_names)
        store = HierarchicalPointerStore(directory.n, alpha=10, k=2)
        with pytest.raises(ValueError):
            SwitchPointerDatapath(net.switches["S1"], EpochClock(10),
                                  directory.mphf, store, mode="bogus")


class TestVanillaBaseline:
    def test_flow_table_probe(self):
        vanilla = VanillaDatapath([f"h{i}" for i in range(100)])
        port = vanilla.process("h5")
        assert isinstance(port, int)
        assert vanilla.packets_processed == 1

    def test_unknown_destination_raises(self):
        vanilla = VanillaDatapath(["h0"])
        with pytest.raises(KeyError):
            vanilla.process("ghost")
