"""Property-based tests: epoch-range extrapolation always covers truth.

The §4.2.1 guarantee: for any bounded clock skews (|skew| ≤ ε/2 so any
pair differs by ≤ ε) and any per-hop delays ≤ Δ, the range computed for
every switch from the single observed epochID contains that switch's
true epoch."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.epoch import (EpochClock, EpochRangeEstimator,
                              unwrap_epoch)

ALPHA_MS = 10.0
EPS_MS = 5.0
DELTA_MS = 8.0


@st.composite
def path_scenario(draw):
    n_switches = draw(st.integers(min_value=1, max_value=6))
    embed_index = draw(st.integers(min_value=0,
                                   max_value=n_switches - 1))
    # per-device skews: any pair differs by at most EPS_MS
    skews = [draw(st.floats(min_value=-EPS_MS / 2, max_value=EPS_MS / 2,
                            allow_nan=False))
             for _ in range(n_switches)]
    # per-hop delays up to DELTA_MS
    hop_delays = [draw(st.floats(min_value=0.0, max_value=DELTA_MS,
                                 allow_nan=False))
                  for _ in range(n_switches - 1)]
    t0 = draw(st.floats(min_value=0.0, max_value=50_000.0,
                        allow_nan=False))
    return n_switches, embed_index, skews, hop_delays, t0


@settings(max_examples=200, deadline=None)
@given(scenario=path_scenario())
def test_ranges_cover_true_epochs(scenario):
    n, embed_index, skews, hop_delays, t0 = scenario
    clocks = [EpochClock(ALPHA_MS, skew_s=s / 1000.0) for s in skews]
    # true arrival time at each switch
    times = [t0]
    for d in hop_delays:
        times.append(times[-1] + d / 1000.0)
    true_epochs = [clocks[i].epoch_of(times[i]) for i in range(n)]
    observed = true_epochs[embed_index]

    est = EpochRangeEstimator(alpha_ms=ALPHA_MS, epsilon_ms=EPS_MS,
                              delta_ms=DELTA_MS)
    path = [f"S{i}" for i in range(n)]
    ranges = est.ranges_for_path(path, embed_index, observed)
    for i in range(n):
        assert true_epochs[i] in ranges[path[i]], (
            i, embed_index, true_epochs, ranges[path[i]])


@settings(max_examples=200, deadline=None)
@given(epoch=st.integers(min_value=0, max_value=10**7),
       drift=st.integers(min_value=-2000, max_value=2000))
def test_unwrap_recovers_absolute_epoch(epoch, drift):
    """As long as the reference is within half the wrap period, the
    12-bit tag unwraps to the exact absolute epoch."""
    reference = max(0, epoch + drift)
    tag = epoch % 4096
    assert unwrap_epoch(tag, reference) == epoch


@settings(max_examples=100, deadline=None)
@given(alpha=st.sampled_from([5.0, 10.0, 20.0]),
       eps=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
       delta=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
       j=st.integers(min_value=0, max_value=5),
       e=st.integers(min_value=100, max_value=10**6))
def test_range_width_matches_formula(alpha, eps, delta, j, e):
    est = EpochRangeEstimator(alpha_ms=alpha, epsilon_ms=eps,
                              delta_ms=delta)
    upstream = est.range_for(e, hop_delta=-j) if j else est.range_for(e, 0)
    eps_epochs = math.ceil(eps / alpha)
    span = math.ceil((eps + j * delta) / alpha) if j else eps_epochs
    assert upstream.lo == e - span
    assert upstream.hi == e + eps_epochs
