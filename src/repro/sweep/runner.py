"""The sweep runner: a parameter grid × a scenario, in parallel.

:class:`Sweep` expands a grid (``grid.py``) against a registered
:class:`~repro.sweep.registry.SweepSpec`, executes every point through
the four-phase scenario protocol, and aggregates the outcomes into one
:class:`~repro.sweep.report.SweepReport`.

Execution model: grid points are independent experiments, so they run
in ``multiprocessing`` workers (forked where available, spawned
otherwise), one point per task, results streamed back as they finish.
Each point gets a stable per-point seed (``grid.point_seed``) applied
before the scenario builds, so any point can be reproduced as a single
run — ``cli run <scenario> --seed <point seed> --knob ...`` with the
point's recorded knobs — bit-for-bit, which is what the sweep
integration test asserts.  ``workers=1`` runs points inline in-process
(no pool), the right mode for tests and one-core CI runners.

Workers return plain :class:`PointResult` payloads — never the network
or deployment objects, which are both huge and unpicklable at
thousand-host scale.  A point that raises is reported as an errored
point (``error`` set, ``ok`` false); it never takes the sweep down.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Optional

from ..core.rng import seed_run
from .grid import GridError, expand_grid, point_seed
from .registry import SweepSpec
from .report import PointResult, SweepReport

DEFAULT_BASE_SEED = 1729

#: (scenario, knobs, seed, expect_problem, expect_suspect, index, params)
_PointPayload = tuple[str, dict, int, str, Optional[str], int, dict]


def execute_point(payload: _PointPayload) -> PointResult:
    """Run one grid point; the multiprocessing task function."""
    scenario, knobs, seed, expect_problem, expect_suspect, index, params = payload
    result = PointResult(index=index, params=params, knobs=knobs, seed=seed)
    seed_run(seed)
    start = time.perf_counter()  # reprolint: allow[wall-clock]
    try:
        # imported here so pool workers (and spawn children) pull in the
        # scenario registry themselves, and so this module never imports
        # scenarios at module scope (scenario modules import the sweep
        # registry to declare their sweeps)
        from ..scenarios import run_scenario

        outcome = run_scenario(scenario, **knobs)
    except Exception as exc:  # noqa: BLE001 - a point must never kill the sweep
        result.error = f"{type(exc).__name__}: {exc}"
        result.wall_time_s = (  # reprolint: allow[wall-clock]
            time.perf_counter() - start)
        return result
    result.wall_time_s = time.perf_counter() - start  # reprolint: allow[wall-clock]
    result.phase_s = dict(outcome.timings)
    result.sim_time_s = outcome.sim_time
    result.diagnosis_latency_sim_s = outcome.diagnosis_latency_sim
    result.freshness = outcome.freshness
    result.problems = [v.problem for v in outcome.verdicts]
    result.suspects = [v.suspect for v in outcome.verdicts if v.suspect]
    result.diagnosis_ok = expect_problem in result.problems and (
        expect_suspect is None or expect_suspect in result.suspects
    )
    result.measurements = dict(outcome.measurements)
    # scenarios that drive a traffic population report it under the
    # shared "flow_count" measurement key (see docs/WORKLOADS.md)
    result.flow_count = int(outcome.measurements.get("flow_count", 0))
    if outcome.deployment is not None:
        stats = outcome.deployment.record_stats()
        result.peak_records = stats["peak_records"]
        result.total_records = stats["total_records"]
        result.evicted_records = stats["evicted_records"]
        run_s = outcome.timings.get("run", 0.0)
        if run_s > 0:
            # decoded packets folded into host record tables per
            # wall-clock second of the run phase — the number the
            # batched-ingestion path is supposed to move
            result.ingest_records_per_s = stats["ingested_records"] / run_s
    return result


def default_workers(n_points: int) -> int:
    return max(1, min(n_points, os.cpu_count() or 1))


class Sweep:
    """One scenario swept across a parameter grid."""

    def __init__(
        self,
        spec: SweepSpec,
        grid: Optional[dict[str, list[Any]]] = None,
        *,
        workers: Optional[int] = None,
        base_seed: int = DEFAULT_BASE_SEED,
        extra_knobs: Optional[dict[str, Any]] = None,
        extra_points: Optional[list[dict[str, Any]]] = None,
    ):
        self.spec = spec
        self.grid = (
            {axis: list(vals) for axis, vals in spec.default_grid.items()}
            if grid is None
            else grid
        )
        self.base_seed = base_seed
        self.extra_knobs = dict(extra_knobs or {})
        swept_axes = set(self.grid) | {
            axis for point in (extra_points or []) for axis in point
        }
        swept = {spec.axes[axis] for axis in swept_axes if axis in spec.axes}
        clash = swept & set(self.extra_knobs)
        if clash:
            raise GridError(
                f"--knob would silently override swept axis knob(s) "
                f"{sorted(clash)}; drop the knob or the axis"
            )
        # explicit points ride along after the cartesian expansion —
        # combined top-end points (hosts=4096 flows=2000) join a run
        # without dragging the whole cross product with them
        self.params = expand_grid(self.grid) + [
            dict(point) for point in (extra_points or [])
        ]
        self.workers = default_workers(len(self.params)) if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        # resolve every point's knobs up front: an unknown axis fails
        # the whole sweep before any point has burned wall time
        self.payloads: list[_PointPayload] = []
        for index, params in enumerate(self.params):
            knobs = spec.knobs_for(params)
            knobs.update(self.extra_knobs)
            self.payloads.append(
                (
                    spec.scenario,
                    knobs,
                    point_seed(base_seed, index),
                    spec.expect_problem,
                    self._expect_suspect(knobs),
                    index,
                    params,
                )
            )

    def _expect_suspect(self, knobs: dict[str, Any]) -> Optional[str]:
        """The suspect a correct point must name, if the spec demands one.

        Resolved from the point's knobs, falling back to the scenario's
        declared default — a sweep never overrides the fault site
        without the expectation following it.
        """
        knob = self.spec.expect_suspect_knob
        if knob is None:
            return None
        if knob in knobs:
            return knobs[knob]
        from ..scenarios import REGISTRY

        return REGISTRY.get(self.spec.scenario).spec.knobs[knob].default

    def run(
        self,
        on_point: Optional[Callable[[PointResult], None]] = None,
    ) -> SweepReport:
        """Execute every point; ``on_point`` observes results as they land."""
        start = time.perf_counter()  # reprolint: allow[wall-clock]
        points: list[PointResult] = []
        if self.workers == 1 or len(self.payloads) <= 1:
            for payload in self.payloads:
                result = execute_point(payload)
                points.append(result)
                if on_point is not None:
                    on_point(result)
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            # ProcessPoolExecutor (not multiprocessing.Pool) so a worker
            # killed outright — OOM, signal — surfaces as
            # BrokenProcessPool on its future instead of hanging the
            # sweep forever; the dead worker's point (and any aborted
            # with it) becomes an errored point like any other failure
            with ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx
            ) as pool:
                futures = {
                    pool.submit(execute_point, payload): payload
                    for payload in self.payloads
                }
                for future in as_completed(futures):
                    try:
                        result = future.result()
                    except Exception as exc:  # noqa: BLE001
                        _, knobs, seed, _, _, index, params = futures[future]
                        result = PointResult(
                            index=index,
                            params=params,
                            knobs=knobs,
                            seed=seed,
                            error=f"worker died: {type(exc).__name__}: {exc}",
                        )
                    points.append(result)
                    if on_point is not None:
                        on_point(result)
        points.sort(key=lambda p: p.index)
        return SweepReport(
            sweep=self.spec.name,
            scenario=self.spec.scenario,
            expect_problem=self.spec.expect_problem,
            base_seed=self.base_seed,
            workers=self.workers,
            grid=self.grid,
            points=points,
            wall_time_s=time.perf_counter() - start,  # reprolint: allow[wall-clock]
        )
