"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main
from repro.faults import FAULTS
from repro.scenarios import REGISTRY


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig2a", "fig3", "fig8", "sizing"):
            assert fig in out

    def test_list_matches_registry(self, capsys):
        """Every registered scenario (and its aliases) appears in
        `list` — the CLI is registry-driven, no hand-kept tables."""
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert len(REGISTRY) >= 8
        for spec in REGISTRY.specs():
            assert spec.name in out
            for alias in spec.aliases:
                assert alias in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestDirectoryCommand:
    def test_directory_list_matches_registry(self, capsys):
        from repro.directory import (available_directories,
                                     directory_summaries)

        assert main(["directory", "list"]) == 0
        out = capsys.readouterr().out
        assert set(available_directories()) >= {"exact", "bloom", "lsh"}
        for name, summary in directory_summaries().items():
            assert name in out
            assert summary.split("(")[0].strip()[:40] in out
        assert "'exact'" in out  # what "auto" resolves to, unoverridden

    def test_directory_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["directory"])


class TestFaultsCommand:
    def test_faults_list_shows_at_least_six_faults(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert len(FAULTS) >= 6
        for spec in FAULTS.specs():
            assert spec.name in out
        assert f"{len(FAULTS)} fault(s) registered" in out

    def test_faults_list_matches_registry_summaries(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for spec in FAULTS.specs():
            assert spec.summary.split("(")[0].strip()[:40] in out

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_run_multi_fault_scenario(self, capsys):
        assert main(["run", "multi-fault",
                     "--knob", "faults=silent-drop+link-flap",
                     "--knob", "slot_flows=4"]) == 0
        out = capsys.readouterr().out
        assert "diagnosis (multi-fault)" in out
        assert "attributed independently" in out


class TestRunCommand:
    def test_run_by_name(self, capsys):
        assert main(["run", "gray-failure", "--knob", "n_flows=2"]) == 0
        out = capsys.readouterr().out
        assert "scenario: gray-failure" in out
        assert "diagnosis (gray-failure) [suspect: S3]" in out

    def test_run_by_alias_with_knobs(self, capsys):
        assert main(["run", "fig8", "--knob", "n_servers=4"]) == 0
        out = capsys.readouterr().out
        assert "scenario: load-imbalance" in out
        assert "clean separation" in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_knob_fails_cleanly(self, capsys):
        assert main(["run", "gray-failure", "--knob", "bogus=1"]) == 2
        assert "unknown knob" in capsys.readouterr().err

    def test_malformed_knob_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gray-failure", "--knob", "not-a-pair"])

    def test_knob_coercion(self, capsys):
        # bools, floats, and strings all arrive typed at the scenario
        assert main(["run", "polarization", "--knob", "polarized=false",
                     "--knob", "n_flows=4", "--knob",
                     "duration=0.02"]) == 0
        out = capsys.readouterr().out
        assert "polarized=False" in out
        assert "no polarization" in out


class TestSizing:
    def test_paper_anchor(self, capsys):
        assert main(["sizing", "--hosts", "1000000", "--alpha", "10",
                     "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "3.325 MB" in out
        assert "90 ms" in out

    def test_defaults(self, capsys):
        assert main(["sizing"]) == 0
        assert "n=100000" in capsys.readouterr().out


class TestScenarios:
    def test_fig2a_single_point(self, capsys):
        assert main(["fig2a", "--flows", "2"]) == 0
        out = capsys.readouterr().out
        assert "starvation_ms" in out

    def test_fig7_single_point(self, capsys):
        assert main(["fig7", "--flows", "2"]) == 0
        out = capsys.readouterr().out
        assert "priority-contention" in out

    def test_fig8_small(self, capsys):
        assert main(["fig8", "--servers", "4"]) == 0
        out = capsys.readouterr().out
        assert "True" in out


class TestScenarioCommands:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "victim throughput at S1" in out
        assert "diagnosis:" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "without cascade" in out
        assert "with cascade" in out
        assert "cascade chain" in out

    def test_fig2b(self, capsys):
        assert main(["fig2b", "--flows", "2"]) == 0
        assert "starvation_ms" in capsys.readouterr().out
