"""SwitchPointer's core data structures — the paper's contribution.

* :mod:`repro.core.mphf` — minimal perfect hash over the end-host set.
* :mod:`repro.core.epoch` — epoch clocks, bounded skew, range
  extrapolation.
* :mod:`repro.core.pointer` — pointer sets and the k-level hierarchical
  directory.
* :mod:`repro.core.headers` — VLAN double-tag and INT telemetry codecs.
* :mod:`repro.core.sizing` — the analytic memory/bandwidth/recycling
  models behind Figs 10 and 11.
"""

from .mphf import HostDirectory, MinimalPerfectHash, MphfBuildError
from .epoch import (EpochClock, EpochRange, EpochRangeEstimator,
                    max_pointers_to_examine, unwrap_epoch)
from .pointer import HierarchicalPointerStore, PointerSet, PointerSnapshot
from .headers import (HeaderError, IntHop, IntStack, VlanDoubleTag,
                      VLAN_ID_MODULUS)
from .sizing import (MPHF_BITS_PER_KEY, SizingPoint, mphf_bytes,
                     pointer_set_bits, pointer_sets_total,
                     push_bandwidth_bps, recycling_period_ms,
                     store_memory_bits, sweep, total_switch_memory_bytes)

__all__ = [
    "MinimalPerfectHash", "HostDirectory", "MphfBuildError",
    "EpochClock", "EpochRange", "EpochRangeEstimator", "unwrap_epoch",
    "max_pointers_to_examine",
    "PointerSet", "PointerSnapshot", "HierarchicalPointerStore",
    "VlanDoubleTag", "IntStack", "IntHop", "HeaderError",
    "VLAN_ID_MODULUS",
    "pointer_set_bits", "pointer_sets_total", "store_memory_bits",
    "mphf_bytes", "total_switch_memory_bytes", "push_bandwidth_bps",
    "recycling_period_ms", "SizingPoint", "sweep", "MPHF_BITS_PER_KEY",
]
