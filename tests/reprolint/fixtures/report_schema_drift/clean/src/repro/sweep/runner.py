"""Fixture: the runner writes only declared point fields."""

from .report import PointResult


def execute_point(index: int) -> PointResult:
    result = PointResult(index=index, extra="x")
    result.extra = "y"
    return result
