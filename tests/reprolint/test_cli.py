"""CLI behaviour: exit codes, baseline ratchet, rule selection."""

import json
import shutil
from pathlib import Path

import pytest

from tools.reprolint import BASELINE_NAME, load_baseline
from tools.reprolint.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def violating_tree(tmp_path):
    """A writable copy of the no-global-rng violating fixture."""
    shutil.copytree(FIXTURES / "no_global_rng" / "violating", tmp_path / "t")
    return tmp_path / "t"


def run(root: Path, *extra: str) -> int:
    return main(["--root", str(root), "--rule", "no-global-rng", *extra])


def test_clean_tree_exits_zero(capsys):
    root = FIXTURES / "no_global_rng" / "clean"
    assert run(root) == 0
    assert "clean" in capsys.readouterr().out


def test_violations_exit_one_with_locations(capsys):
    root = FIXTURES / "no_global_rng" / "violating"
    assert run(root) == 1
    out = capsys.readouterr().out
    assert "src/repro/util.py:" in out
    assert "[no-global-rng]" in out
    assert "3 violation(s)" in out


def test_fix_baseline_then_clean(violating_tree, capsys):
    assert run(violating_tree, "--fix-baseline") == 0
    doc = json.loads((violating_tree / BASELINE_NAME).read_text())
    assert len(doc["suppressions"]) == 3
    capsys.readouterr()
    # same tree now passes: every violation is baselined
    assert run(violating_tree) == 0
    assert "3 baselined" in capsys.readouterr().out


def test_stale_baseline_entry_fails(violating_tree, capsys):
    assert run(violating_tree, "--fix-baseline") == 0
    fixed = (FIXTURES / "no_global_rng" / "clean" / "src" / "repro"
             / "util.py").read_text()
    (violating_tree / "src" / "repro" / "util.py").write_text(fixed)
    capsys.readouterr()
    # the violations are gone, but their baseline entries linger
    assert run(violating_tree) == 1
    out = capsys.readouterr().out
    assert "stale baseline entry" in out
    assert BASELINE_NAME in out


def test_baseline_roundtrip(violating_tree):
    run(violating_tree, "--fix-baseline")
    keys = load_baseline(violating_tree)
    assert len(keys) == 3
    assert all(rule == "no-global-rng" for rule, _, _ in keys)


def test_unknown_rule_exits_two(capsys):
    root = FIXTURES / "no_global_rng" / "clean"
    assert main(["--root", str(root), "--rule", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_prints_catalogue(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "no-wall-clock" in out
    assert "allow[wall-clock]" in out
