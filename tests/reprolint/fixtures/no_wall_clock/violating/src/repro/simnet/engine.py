"""Strict-zone fixture: wall-clock in a simulated-time package."""

import time


def tick() -> float:
    # the pragma must NOT rescue a strict-zone read
    return time.time()  # reprolint: allow[wall-clock]
