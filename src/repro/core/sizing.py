"""Analytic resource models from §4.1.1 and §6.1 (Figs 10, 11).

These closed forms are what the paper plots; the live data structure in
:mod:`repro.core.pointer` is cross-checked against them in tests.

Symbols: n = number of end-hosts (slots), α = epoch duration in ms and
per-level fan-out, k = hierarchy depth, S = pointer-set size = n bits.
"""

from __future__ import annotations

from dataclasses import dataclass

#: §6.1: the FCH perfect hash accounts for ~70 KB at n = 100K and
#: ~700 KB at n = 1M, i.e. 5.6 bits per key of auxiliary state.
MPHF_BITS_PER_KEY = 5.6


def pointer_set_bits(n_hosts: int) -> int:
    """S: one bit per end-host (§4.1.2 — "4-byte IP ... with 1 bit")."""
    if n_hosts <= 0:
        raise ValueError("need at least one host")
    return n_hosts


def pointer_sets_total(alpha: int, k: int) -> int:
    """Number of pointer sets held: α·(k−1) + 1."""
    _check_alpha_k(alpha, k)
    return alpha * (k - 1) + 1


def store_memory_bits(n_hosts: int, alpha: int, k: int) -> int:
    """Switch SRAM for pointers: α·(k−1)·S + S bits (§4.1.1)."""
    return pointer_sets_total(alpha, k) * pointer_set_bits(n_hosts)


def mphf_bytes(n_hosts: int,
               bits_per_key: float = MPHF_BITS_PER_KEY) -> float:
    """Auxiliary perfect-hash state (≈70 KB per 100K hosts, §6.1)."""
    return pointer_set_bits(n_hosts) * bits_per_key / 8


def total_switch_memory_bytes(n_hosts: int, alpha: int, k: int) -> float:
    """Pointers + MPHF: what Fig 10(a) plots.

    Sanity anchors from the paper: (n=1M, α=10, k=3) ≈ 3.45 MB;
    (n=100K, α=10, k=3) ≈ 345 KB; minimum (k=1): 82.5 KB / 825 KB.
    """
    return store_memory_bits(n_hosts, alpha, k) / 8 + mphf_bytes(n_hosts)


def push_bandwidth_bps(n_hosts: int, alpha: int, k: int) -> float:
    """Data-plane → control-plane push rate: S · (10³ / αᵏ) bps.

    Only the top-level set is pushed, once per αᵏ ms; each push moves S
    bits.  Fig 10(b): (n=1M, α=10) drops 100 → 10 Mbps from k=1 → 2.
    """
    _check_alpha_k(alpha, k)
    return pointer_set_bits(n_hosts) * (1000.0 / alpha ** k)


def recycling_period_ms(alpha: int, level: int) -> float:
    """§6.1: pointer at level h is reused after α·(αʰ − 1) ms (h < k).

    α = 10: level 1 → 90 ms, level 2 → 990 ms (the paper's prose rounds
    the latter to 900 ms; the formula it states gives 990).
    """
    if alpha < 2:
        raise ValueError("alpha must be >= 2")
    if level < 1:
        raise ValueError("level must be >= 1")
    return float(alpha * (alpha ** level - 1))


def _check_alpha_k(alpha: int, k: int) -> None:
    if alpha < 2:
        raise ValueError("alpha must be >= 2")
    if k < 1:
        raise ValueError("k must be >= 1")


@dataclass(frozen=True)
class SizingPoint:
    """One (n, α, k) configuration with every derived quantity."""

    n_hosts: int
    alpha: int
    k: int

    @property
    def memory_bytes(self) -> float:
        return total_switch_memory_bytes(self.n_hosts, self.alpha, self.k)

    @property
    def bandwidth_bps(self) -> float:
        return push_bandwidth_bps(self.n_hosts, self.alpha, self.k)

    @property
    def pointer_sets(self) -> int:
        return pointer_sets_total(self.alpha, self.k)

    def as_row(self) -> dict:
        return {
            "n": self.n_hosts,
            "alpha_ms": self.alpha,
            "k": self.k,
            "memory_MB": self.memory_bytes / 1e6,
            "bandwidth_Mbps": self.bandwidth_bps / 1e6,
            "pointer_sets": self.pointer_sets,
        }


def sweep(ns: list[int], alphas: list[int],
          ks: list[int]) -> list[SizingPoint]:
    """The Fig 10 parameter sweep, row-major in (n, α, k)."""
    return [SizingPoint(n, a, k) for n in ns for a in alphas for k in ks]
