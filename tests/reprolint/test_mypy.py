"""mypy over the typed core — the same invocation CI's
static-analysis job runs.  Skipped where mypy is not installed (the
default container image); reprolint's ``typed-defs`` rule covers
annotation *completeness* everywhere, mypy adds consistency in CI.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: One definition of "the typed core", shared with the CI job and the
#: typed-defs rule (tools/reprolint/rules.py TYPED_CORE).
TYPED_CORE = (
    "src/repro/sweep",
    "src/repro/faults",
    "src/repro/analyzer",
    "src/repro/directory",
    "src/repro/scenarios/base.py",
    "src/repro/simnet/workload.py",
    "src/repro/hostd/columnar.py",
    "src/repro/hostd/backends.py",
)


def test_typed_core_matches_rule_definition():
    from tools.reprolint.rules import TYPED_CORE as RULE_CORE

    assert tuple(TYPED_CORE) == tuple(RULE_CORE)


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (CI's static-analysis job runs it)",
)
def test_mypy_typed_core_is_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *TYPED_CORE],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
