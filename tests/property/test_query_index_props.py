"""Property-based tests for the per-switch inverted index (§3 filter).

Core claim: for any interleaving of observations and evictions, the
indexed query path — :meth:`FlowRecordStore.flows_through` and the
heap-based :meth:`QueryEngine.top_k_flows` — is observationally
identical to the O(N) linear scan it replaced: same records, same
order, byte-identical summary payloads."""

from hypothesis import given, settings, strategies as st

from repro.core.epoch import EpochRange
from repro.hostd.query import FlowSummary, QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.hostd.sharded import ShardedRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP

SWITCHES = ["S1", "S2", "S3", "S4", "S5"]


def flow_key(i: int) -> FlowKey:
    return FlowKey(f"s{i}", f"d{i}", 1000 + i, 9, PROTO_UDP)


epoch_range = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
).map(lambda t: EpochRange(min(t), max(t)))

# one observation: (flow id, nbytes, switches touched with their ranges)
observation = st.tuples(
    st.integers(min_value=0, max_value=11),
    st.integers(min_value=1, max_value=10_000),
    st.dictionaries(st.sampled_from(SWITCHES), epoch_range,
                    min_size=1, max_size=len(SWITCHES)),
)

observations = st.lists(observation, min_size=1, max_size=80)


def build(ops, max_records=None, store=None, tie_every=None):
    """Replay ``ops`` into a store (evictions interleave via the bound).

    ``tie_every=k`` gives groups of k consecutive observations the same
    timestamp, covering eviction tie-breaking on equal staleness.
    """
    if store is None:
        store = FlowRecordStore("h", max_records=max_records)
    for i, (fid, nbytes, ranges) in enumerate(ops):
        tick = i if tie_every is None else i // tie_every
        store.ingest(flow_key(fid), nbytes=nbytes, t=0.001 * tick,
                     priority=0, switch_path=sorted(ranges),
                     ranges=ranges, observed_epoch=min(r.lo
                                                       for r in
                                                       ranges.values()))
    return store


def payload_bytes(summaries: list[FlowSummary]) -> list[tuple]:
    """Fully-materialized wire form, for byte-identity comparison."""
    return [s._astuple() for s in summaries]


@settings(max_examples=80, deadline=None)
@given(ops=observations,
       max_records=st.sampled_from([None, 3, 6]),
       window=st.one_of(st.none(), epoch_range))
def test_flows_through_matches_linear_scan(ops, max_records, window):
    store = build(ops, max_records=max_records)
    for sw in SWITCHES:
        indexed = store.flows_through(sw, window)
        linear = store.linear_flows_through(sw, window)
        assert len(indexed) == len(linear)
        # same records, as the same objects, in the same order
        assert all(a is b for a, b in zip(indexed, linear))


@settings(max_examples=60, deadline=None)
@given(ops=observations,
       max_records=st.sampled_from([None, 4]),
       window=st.one_of(st.none(), epoch_range),
       k=st.integers(min_value=1, max_value=8))
def test_top_k_matches_full_sort_payload(ops, max_records, window, k):
    store = build(ops, max_records=max_records)
    engine = QueryEngine(store)
    for sw in SWITCHES:
        res = engine.top_k_flows(k, switch=sw, epochs=window)
        reference = sorted(store.linear_flows_through(sw, window),
                           key=lambda r: (-r.bytes, r.flow))[:k]
        expected = [FlowSummary.of(r) for r in reference]
        assert payload_bytes(res.payload) == payload_bytes(expected)


@settings(max_examples=60, deadline=None)
@given(ops=observations, window=st.one_of(st.none(), epoch_range))
def test_flows_matching_payload_identical(ops, window):
    store = build(ops)
    engine = QueryEngine(store)
    for sw in SWITCHES:
        res = engine.flows_matching(sw, window)
        expected = [FlowSummary.of(r)
                    for r in store.linear_flows_through(sw, window)]
        assert payload_bytes(res.payload) == payload_bytes(expected)


@settings(max_examples=60, deadline=None)
@given(ops=observations, max_records=st.integers(min_value=1, max_value=5))
def test_index_never_resurrects_evicted_records(ops, max_records):
    store = build(ops, max_records=max_records)
    assert len(store) <= max_records
    live = set(id(r) for r in store)
    for sw in SWITCHES:
        for rec in store.flows_through(sw):
            assert id(rec) in live


# -- sharded-store equivalence (shard merge × eviction interleavings) ------

@settings(max_examples=60, deadline=None)
@given(ops=observations,
       max_records=st.sampled_from([None, 3, 6]),
       n_shards=st.sampled_from([2, 4, 7]),
       tie_every=st.sampled_from([None, 1, 4]),
       window=st.one_of(st.none(), epoch_range))
def test_sharded_store_is_flat_store_equivalent(ops, max_records,
                                                n_shards, tie_every,
                                                window):
    """For any interleaving of observations and (global-bound)
    evictions — including ties on last_seen, where victim choice must
    fall back to creation order on both sides — the sharded store's
    merged queries return the same flows in the same order as the flat
    store, and its merged top-k payloads are byte-identical."""
    flat = build(ops, max_records=max_records, tie_every=tie_every)
    sharded = build(ops, tie_every=tie_every,
                    store=ShardedRecordStore(
                        "h", max_records=max_records,
                        n_shards=n_shards))
    assert len(sharded) == len(flat)
    assert [r.flow for r in sharded] == [r.flow for r in flat]
    flat_engine, sharded_engine = QueryEngine(flat), QueryEngine(sharded)
    for sw in SWITCHES:
        a = flat.flows_through(sw, window)
        b = sharded.flows_through(sw, window)
        assert [r.flow for r in a] == [r.flow for r in b]
        ta = flat_engine.top_k_flows(4, switch=sw, epochs=window)
        tb = sharded_engine.top_k_flows(4, switch=sw, epochs=window)
        assert (payload_bytes(ta.payload)
                == payload_bytes(tb.payload))


@settings(max_examples=40, deadline=None)
@given(ops=observations,
       max_records=st.sampled_from([None, 4]),
       n_shards=st.sampled_from([2, 5]),
       reload_bound=st.sampled_from([None, 3]))
def test_sharded_spill_reload_keeps_index_consistent(
        tmp_path_factory, ops, max_records, n_shards, reload_bound):
    """flush → load_from_disk (with or without a reload bound) must
    leave the per-shard inverted indexes exactly describing the live
    table — reloads and evictions never resurrect or strand records."""
    path = tmp_path_factory.mktemp("spill") / "records.jsonl"
    store = build(ops, store=ShardedRecordStore(
        "h", spill_path=path, max_records=max_records,
        n_shards=n_shards))
    store.flush_to_disk()
    again = ShardedRecordStore.load_from_disk(
        "h", path, max_records=reload_bound, n_shards=n_shards)
    if reload_bound is not None:
        assert len(again) <= reload_bound
    elif max_records is None:
        # no mid-run eviction spills: the file is exactly the table
        assert [r.flow for r in again] == [r.flow for r in store]
    else:
        # eviction victims were spilled before the final flush; the
        # reload resurrects them (flat-store semantics), never loses
        # a live record
        reloaded = {r.flow for r in again}
        assert {r.flow for r in store} <= reloaded
    live = {id(r) for r in again}
    for sw in SWITCHES:
        indexed = again.flows_through(sw)
        linear = again.linear_flows_through(sw)
        assert [r.flow for r in indexed] == [r.flow for r in linear]
        for rec in indexed:
            assert id(rec) in live