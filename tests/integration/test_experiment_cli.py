"""Integration: `cli experiment run` produces a schema-valid
ExperimentReport through the resumable artifact directory, the error
paths name their offender (mirroring the sweep CLI coverage), and the
committed studies regenerate bit-identically."""

import json
from pathlib import Path

from repro.cli import main
from repro.experiment import EXPERIMENTS, validate_experiment_report

REPO = Path(__file__).resolve().parent.parent.parent


def run_cli(tmp_path, *extra):
    out_dir = tmp_path / "study"
    code = main(
        ["experiment", "run", "skew-degradation",
         "--grid", "skew_ms=0.0,8.0", "--reps", "2",
         "--out-dir", str(out_dir), *extra])
    return code, out_dir


class TestExperimentCli:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("skew-degradation", "deploy-degradation"):
            assert name in out

    def test_run_writes_schema_valid_report(self, tmp_path, capsys):
        code, out_dir = run_cli(tmp_path)
        assert code == 0
        printed = capsys.readouterr().out
        assert "2 point(s) x 2 rep(s) = 4 runs" in printed
        doc = json.loads(
            (out_dir / "report.json").read_text(encoding="utf-8"))
        assert validate_experiment_report(doc) == []
        assert doc["experiment"] == "skew-degradation"
        assert doc["sweep"] == "clock-skew"
        assert doc["grid"] == {"skew_ms": [0.0, 8.0]}
        assert doc["summary"]["runs"] == 4
        assert (out_dir / "manifest.json").exists()
        assert len(list((out_dir / "runs").glob("point*.json"))) == 4

    def test_max_runs_interrupts_then_resumes(self, tmp_path, capsys):
        code, out_dir = run_cli(tmp_path, "--max-runs", "3")
        assert code == 0
        assert "incomplete: 3/4 runs" in capsys.readouterr().out
        assert not (out_dir / "report.json").exists()
        code, out_dir = run_cli(tmp_path)
        assert code == 0
        assert "[resumed]" in capsys.readouterr().out
        assert (out_dir / "report.json").exists()

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "run", "no-such-study"]) == 2
        err = capsys.readouterr().err
        assert "no experiment registered for 'no-such-study'" in err

    def test_unknown_axis_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["experiment", "run", "skew-degradation",
             "--grid", "bogus=1", "--out-dir", str(tmp_path / "x")])
        assert code == 2
        assert "unknown axis 'bogus'" in capsys.readouterr().err

    def test_zero_reps_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["experiment", "run", "skew-degradation", "--reps", "0",
             "--out-dir", str(tmp_path / "x")])
        assert code == 2
        assert "reps must be >= 1, got 0" in capsys.readouterr().err

    def test_knob_axis_collision_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["experiment", "run", "skew-degradation",
             "--knob", "skew_ms=3.0", "--out-dir", str(tmp_path / "x")])
        assert code == 2
        assert "override swept axis" in capsys.readouterr().err


class TestExperimentNightlyCli:
    def test_nightly_writes_one_directory_per_experiment(
            self, tmp_path, capsys):
        code = main(
            ["experiment", "nightly", "--out-dir", str(tmp_path),
             "--only", "skew-degradation"])
        assert code == 0
        assert "1/1 experiments ok" in capsys.readouterr().out
        doc = json.loads(
            (tmp_path / "skew-degradation" / "report.json").read_text(
                encoding="utf-8"))
        assert validate_experiment_report(doc) == []
        spec = EXPERIMENTS.get("skew-degradation")
        assert doc["grid"] == {
            axis: list(vals) for axis, vals in spec.axes.items()}
        assert doc["reps"] == spec.reps

    def test_nightly_unknown_only_fails_cleanly(self, tmp_path, capsys):
        code = main(["experiment", "nightly",
                     "--out-dir", str(tmp_path),
                     "--only", "no-such-study"])
        assert code == 2
        assert "no experiment registered" in capsys.readouterr().err


class TestCommittedStudies:
    def test_committed_reports_regenerate_bit_identically(self, tmp_path):
        """The checked-in degradation studies are reproducible: the same
        registry spec and default base seed rebuild results/experiments/
        <name>/report.json byte for byte."""
        for name in EXPERIMENTS.names():
            committed = (
                REPO / "results" / "experiments" / name / "report.json")
            assert committed.exists(), committed
            out_dir = tmp_path / name
            assert main(["experiment", "run", name,
                         "--out-dir", str(out_dir)]) in (0, 1)
            assert (out_dir / "report.json").read_bytes() == \
                committed.read_bytes(), name
