"""Tests for the scenario builders themselves (parameters, topology,
invariants) — the experiment definitions must be trustworthy since
examples, tests, and benchmarks all share them."""

import pytest

from repro.baselines.innetwork import PortCounterMonitor
from repro.scenarios import (build_cascades_network,
                             build_load_imbalance_network,
                             build_red_lights_network,
                             run_contention_scenario,
                             run_load_imbalance_scenario)


class TestContentionScenario:
    def test_invalid_discipline_rejected(self):
        with pytest.raises(ValueError):
            run_contention_scenario(2, discipline="wfq")

    def test_burst_flows_have_distinct_pairs(self):
        res = run_contention_scenario(4, duration=0.030,
                                      burst_start=0.005, watch=False)
        # m+1 sender/receiver pairs exist; victim uses pair 0
        assert res.victim.src == "h1_0" and res.victim.dst == "h2_0"
        assert len(res.network.hosts) == 2 * (4 + 1)

    def test_result_metrics_present(self):
        res = run_contention_scenario(2, duration=0.030,
                                      burst_start=0.005, watch=False)
        assert res.starvation_ms() >= 0
        assert res.max_gap_ms() > 0
        assert res.throughput.total_bytes > 0

    def test_no_watch_means_no_alerts(self):
        res = run_contention_scenario(2, duration=0.030, watch=False)
        assert res.alerts == []


class TestRedLightsTopology:
    def test_fig1b_placement(self):
        net = build_red_lights_network()
        # A,B on S1; C,D on S2; E,F on S3
        for host, sw in (("A", "S1"), ("B", "S1"), ("C", "S2"),
                         ("D", "S2"), ("E", "S3"), ("F", "S3")):
            assert net.link_between(host, sw) is not None
        # A->F path crosses all three switches
        assert net.shortest_paths("A", "F") == [
            ["A", "S1", "S2", "S3", "F"]]


class TestCascadesTopology:
    def test_reroute_variant_bypasses_trunk(self):
        net = build_cascades_network(reroute_bd=True)
        paths = net.shortest_paths("B", "D")
        assert paths == [["B", "S1b", "S2", "D"]]

    def test_direct_variant_uses_trunk(self):
        net = build_cascades_network(reroute_bd=False)
        paths = net.shortest_paths("B", "D")
        assert paths == [["B", "S1", "S2", "D"]]


class TestLoadImbalanceScenario:
    def test_needs_two_servers(self):
        with pytest.raises(ValueError):
            run_load_imbalance_scenario(1)

    def test_two_egress_candidates_at_s1(self):
        net = build_load_imbalance_network(4)
        s1 = net.switches["S1"]
        routes = s1.routes_for("rx0")
        assert len(routes) == 2  # SPA and SPB (ECMP set)

    def test_malfunction_splits_cleanly(self):
        res = run_load_imbalance_scenario(6)
        s1 = res.network.switches["S1"]
        spa = res.network.link_between("S1", "SPA").iface_of(s1)
        spb = res.network.link_between("S1", "SPB").iface_of(s1)
        # both egresses carried traffic, split by the override
        assert spa.tx_bytes > 0 and spb.tx_bytes > 0
        # small flows sum < large flows sum per construction
        assert spa.tx_bytes < spb.tx_bytes

    def test_detection_via_interface_counters(self):
        """§5.4: 'detected by monitoring interface byte counts per
        second' — the per-port counters show persistent skew."""
        net = build_load_imbalance_network(6)
        mon = PortCounterMonitor(net.switches["S1"], window=0.005)
        # re-run the traffic portion manually on this instrumented net
        from repro.scenarios import run_load_imbalance_scenario
        # simplest: fresh scenario with its own monitor
        res = run_load_imbalance_scenario(6)
        mon2 = None
        s1 = res.network.switches["S1"]
        spa = res.network.link_between("S1", "SPA").iface_of(s1)
        spb = res.network.link_between("S1", "SPB").iface_of(s1)
        skew = spb.tx_bytes / max(1, spa.tx_bytes)
        assert skew > 1.5  # clearly detectable imbalance
