"""Scenario subsystem: protocol, result base, and registry.

A *scenario* is one reproducible failure experiment: it **builds** a
topology and deploys SwitchPointer on it, **runs** a workload with a
fault injected, **collects** measurements, and **diagnoses** the fault
through the analyzer.  Every scenario — paper figure or extended fault —
implements that four-phase protocol by subclassing :class:`Scenario`
and registering itself with the :data:`REGISTRY` decorator:

    @register
    class IncastScenario(Scenario):
        spec = ScenarioSpec(name="incast", ...)
        def build(self): ...
        def run(self): ...
        def collect(self): ...
        def diagnose(self): ...

Registration is all it takes for the scenario to appear in
``python -m repro.cli list``, be runnable via ``repro.cli run <name>``,
and show up in the generated ``docs/SCENARIOS.md`` catalogue — the CLI
and the docs render the same :class:`ScenarioSpec` metadata.

:meth:`Scenario.execute` is the shared driver: it walks the phases,
wall-clock-times each one, snapshots per-switch dataplane counters, and
returns a :class:`ScenarioResult` carrying the measurements and the
analyzer verdicts.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterator, Optional

from ..analyzer.apps import Verdict
from ..deployment import SwitchPointerDeployment
from ..faults import FAULTS, Fault, FaultContext, FaultPlan
from ..simnet.topology import Network


class ScenarioError(Exception):
    """Raised for registry misuse or invalid scenario parameters."""


@dataclass(frozen=True)
class Knob:
    """One tunable parameter of a scenario."""

    default: Any
    help: str


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry metadata for one scenario.

    This is the single source of truth the CLI ``list`` output and the
    ``docs/SCENARIOS.md`` catalogue are both rendered from.

    Attributes
    ----------
    name:
        Registry key, kebab-case, unique.
    summary:
        One-line description (CLI ``list``).
    paper_ref:
        The paper figure/section reproduced, or the fault modelled.
    expected_diagnosis:
        The ``Verdict.problem`` (and suspect, where applicable) a
        correct run must reach.
    knobs:
        Tunable parameters with defaults and help strings.
    aliases:
        Alternate registry keys (the historical ``fig*`` ids).
    smoke_knobs:
        Knob overrides for a fast round-trip (tests, CI smoke).
    faults:
        Names of the registered faults (``repro.faults``) this scenario
        injects — declared, not open-coded, so the docs catalogue and
        the fault layer stay in sync.  Validated at registration.
    """

    name: str
    summary: str
    paper_ref: str
    expected_diagnosis: str
    knobs: dict[str, Knob] = field(default_factory=dict)
    aliases: tuple[str, ...] = ()
    smoke_knobs: dict[str, Any] = field(default_factory=dict)
    faults: tuple[str, ...] = ()
    #: verdict states this scenario's diagnosis can emit
    #: (:data:`repro.analyzer.session.VERDICT_STATES` subset); scenarios
    #: with an online diagnosis path declare all three, post-mortem
    #: scenarios keep the default
    verdict_states: tuple[str, ...] = ("complete",)

    @property
    def cli_example(self) -> str:
        return f"python -m repro.cli run {self.name}"


@dataclass
class SwitchStats:
    """Per-switch dataplane counters snapshotted after a run."""

    rx_packets: int = 0
    forwarded: int = 0
    no_route_drops: int = 0
    gray_drops: int = 0
    link_down_drops: int = 0


@dataclass
class ScenarioResult:
    """What :meth:`Scenario.execute` returns, for every scenario.

    ``measurements`` holds the scenario-specific series/numbers from the
    collect phase; ``payload`` the scenario's legacy result object where
    one exists (the ``fig*`` dataclasses examples and benchmarks use).
    """

    name: str
    knobs: dict[str, Any]
    timings: dict[str, float] = field(default_factory=dict)  # phase -> s
    sim_time: float = 0.0                # simulated seconds consumed
    switch_stats: dict[str, SwitchStats] = field(default_factory=dict)
    verdicts: list[Verdict] = field(default_factory=list)
    measurements: dict[str, Any] = field(default_factory=dict)
    payload: Any = None
    network: Optional[Network] = None
    deployment: Optional[SwitchPointerDeployment] = None
    #: simulated seconds the diagnosis phase consumed (0.0 when the
    #: analyzer runs post-mortem outside simulated time)
    diagnosis_latency_sim: float = 0.0
    #: decoded records ingested network-wide between the diagnosis
    #: trigger and the verdict — how far the network moved on while
    #: the analyzer was looking at it
    freshness: int = 0

    def verdict(self, problem: str) -> Optional[Verdict]:
        """The first verdict whose ``problem`` matches, if any."""
        for v in self.verdicts:
            if v.problem == problem:
                return v
        return None

    def summary_lines(self) -> list[str]:
        """Human-readable report (the CLI ``run`` output body)."""
        out = [f"scenario: {self.name}"]
        if self.knobs:
            knobs = ", ".join(f"{k}={v}" for k, v in sorted(self.knobs.items()))
            out.append(f"knobs: {knobs}")
        phases = "  ".join(f"{p}={s * 1e3:.0f}ms"
                           for p, s in self.timings.items())
        out.append(f"wall clock: {phases}")
        out.append(f"simulated time: {self.sim_time * 1e3:.1f} ms")
        if self.diagnosis_latency_sim or self.freshness:
            out.append("diagnosis latency (sim): "
                       f"{self.diagnosis_latency_sim * 1e3:.1f} ms")
            out.append(f"freshness: {self.freshness} records ingested "
                       f"during diagnosis")
        for key, value in sorted(self.measurements.items()):
            out.append(f"{key}: {value}")
        drops = {sw: st for sw, st in self.switch_stats.items()
                 if st.gray_drops or st.no_route_drops or st.link_down_drops}
        for sw, st in sorted(drops.items()):
            out.append(f"drops at {sw}: gray={st.gray_drops} "
                       f"no_route={st.no_route_drops} "
                       f"link_down={st.link_down_drops}")
        for v in self.verdicts:
            suspect = f" [suspect: {v.suspect}]" if v.suspect else ""
            status = ""
            if v.status != "complete":
                gaps = (f" missing_hosts={','.join(v.missing_hosts)}"
                        if v.missing_hosts else "")
                status = f" [{v.status}{gaps}]"
            out.append(f"diagnosis ({v.problem}){status}{suspect}: "
                       f"{v.narrative}")
        if not self.verdicts:
            out.append("diagnosis: (none — no verdict produced)")
        return out


class Scenario(abc.ABC):
    """Base class all scenarios implement (build → run → collect → diagnose).

    Subclasses set ``spec`` (a :class:`ScenarioSpec`) and the four phase
    methods.  ``build`` must assign ``self.network`` and
    ``self.deployment``; the other phases may stash whatever state they
    need on ``self``.  Knob values arrive as constructor kwargs and are
    validated against ``spec.knobs``; resolved values live in ``self.p``.
    """

    spec: ClassVar[ScenarioSpec]

    def __init__(self, **knobs: Any):
        unknown = set(knobs) - set(self.spec.knobs)
        if unknown:
            raise ScenarioError(
                f"unknown knob(s) for {self.spec.name!r}: "
                f"{sorted(unknown)}; valid: {sorted(self.spec.knobs)}")
        self.p: dict[str, Any] = {
            name: knobs.get(name, knob.default)
            for name, knob in self.spec.knobs.items()}
        self.network: Optional[Network] = None
        self.deployment: Optional[SwitchPointerDeployment] = None
        #: the fault composition this run injects; build() populates it
        #: (via add_fault) and execute() schedules it after build
        self.faults = FaultPlan()

    def add_fault(self, name: str, **params: Any) -> Fault:
        """Instantiate a registered fault and add it to this run's plan.

        The scenario declares *which* faults it uses in
        ``spec.faults``; build() calls this to bind them to the
        concrete topology (switch names, victim flows, times).
        """
        return self.faults.add_named(name, **params)

    # -- the four phases -----------------------------------------------------

    @abc.abstractmethod
    def build(self) -> None:
        """Construct topology + deployment + workload (no sim time passes)."""

    @abc.abstractmethod
    def run(self) -> None:
        """Advance the simulator through the experiment."""

    @abc.abstractmethod
    def collect(self) -> dict[str, Any]:
        """Gather scenario-specific measurements from the finished run."""

    @abc.abstractmethod
    def diagnose(self) -> list[Verdict]:
        """Run the analyzer app(s) and return their verdicts."""

    # -- driver --------------------------------------------------------------

    def execute(self, *, with_diagnosis: bool = True) -> ScenarioResult:
        """Walk the phases, timing each, and assemble the result."""
        timings: dict[str, float] = {}

        def timed(phase: str, fn: Callable[[], Any]) -> Any:
            # phase wall-clock cost is a *measurement* here, never an
            # input to simulated behaviour
            t0 = time.perf_counter()  # reprolint: allow[wall-clock]
            out = fn()
            timings[phase] = time.perf_counter() - t0  # reprolint: allow[wall-clock]
            return out

        timed("build", self.build)
        if self.network is None or self.deployment is None:
            raise ScenarioError(
                f"{type(self).__name__}.build() must set "
                f"self.network and self.deployment")
        fault_ctx = FaultContext(self.network, self.deployment)
        if self.faults:
            self.faults.schedule(fault_ctx)
        timed("run", self.run)
        if self.faults:
            # stop fault-internal event processes (flappers etc.)
            # without healing — diagnosis sees the faults as-is
            self.faults.finalize(fault_ctx)
        measurements = timed("collect", self.collect) or {}
        plan_status_owned = False
        if self.faults:
            # the composed plan's lifecycle, for reports and sweeps: a
            # fault that never fired (start beyond the run window)
            # shows up as pending instead of silently vanishing
            plan_status_owned = "fault_plan" not in measurements
            measurements.setdefault("fault_plan", self.faults.status())
        verdicts: list[Verdict] = []
        diag_started_sim = self.network.sim.now
        seq_at_trigger = self.deployment.analyzer.ingest_seq()
        if with_diagnosis:
            if self.faults:
                self.faults.mark_diagnosis_start(diag_started_sim)
            verdicts = timed("diagnose", self.diagnose) or []
            if self.faults and plan_status_owned:
                # online diagnosis consumes simulated time: a fault that
                # fired *during* the query window must be re-reported as
                # active-during-diagnosis, not left as the pre-diagnosis
                # pending snapshot
                measurements["fault_plan"] = self.faults.status()
            # sketch-directory accuracy over the pointer queries the
            # diagnosis just issued: 0.0 for the exact backend and for
            # saturating budgets (the directory-bits sweep's y2 axis)
            measurements.setdefault(
                "directory_fpr",
                self.deployment.analyzer.directory_stats()["fpr"])
        return ScenarioResult(
            name=self.spec.name, knobs=dict(self.p), timings=timings,
            sim_time=self.network.sim.now,
            switch_stats=self._switch_stats(),
            verdicts=verdicts, measurements=measurements,
            payload=getattr(self, "payload", None),
            network=self.network, deployment=self.deployment,
            diagnosis_latency_sim=self.network.sim.now - diag_started_sim,
            freshness=(self.deployment.analyzer.ingest_seq()
                       - seq_at_trigger))

    def _switch_stats(self) -> dict[str, SwitchStats]:
        stats = {}
        for name, sw in self.network.switches.items():
            link_down = sum(iface.dropped_link_down
                            for iface in sw.interfaces)
            stats[name] = SwitchStats(
                rx_packets=sw.rx_packets, forwarded=sw.forwarded,
                no_route_drops=sw.no_route_drops,
                gray_drops=sw.gray_drops, link_down_drops=link_down)
        return stats


class ScenarioRegistry:
    """Name → scenario-class registry with alias support."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Scenario]] = {}
        self._aliases: dict[str, str] = {}

    def register(self, cls: type[Scenario]) -> type[Scenario]:
        """Class decorator: add ``cls`` under its spec name and aliases."""
        spec = getattr(cls, "spec", None)
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError(
                f"{cls.__name__} must define a ScenarioSpec 'spec'")
        unknown_faults = [f for f in spec.faults if f not in FAULTS]
        if unknown_faults:
            raise ScenarioError(
                f"{cls.__name__} declares unregistered fault(s) "
                f"{unknown_faults}; known: {', '.join(FAULTS.names())}")
        bad_smoke = sorted(set(spec.smoke_knobs) - set(spec.knobs))
        if bad_smoke:
            raise ScenarioError(
                f"{cls.__name__} smoke_knobs name undeclared knob(s) "
                f"{bad_smoke}; declared: {sorted(spec.knobs)}")
        for key in (spec.name, *spec.aliases):
            if key in self._classes or key in self._aliases:
                raise ScenarioError(
                    f"duplicate scenario name/alias {key!r}")
        self._classes[spec.name] = cls
        for alias in spec.aliases:
            self._aliases[alias] = spec.name
        return cls

    def get(self, name: str) -> type[Scenario]:
        """Resolve a name or alias to its scenario class."""
        canonical = self._aliases.get(name, name)
        try:
            return self._classes[canonical]
        except KeyError:
            raise ScenarioError(
                f"unknown scenario {name!r}; known: "
                f"{', '.join(self.names())}") from None

    def names(self) -> list[str]:
        return sorted(self._classes)

    def specs(self) -> list[ScenarioSpec]:
        return [self._classes[n].spec for n in self.names()]

    def aliases_of(self, name: str) -> tuple[str, ...]:
        return self._classes[name].spec.aliases

    def __contains__(self, name: str) -> bool:
        return name in self._classes or name in self._aliases

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry every scenario module registers into.
REGISTRY = ScenarioRegistry()
register = REGISTRY.register


def run_scenario(name: str, *, with_diagnosis: bool = True,
                 **knobs: Any) -> ScenarioResult:
    """Look up ``name`` (or alias) in the registry and execute it."""
    cls = REGISTRY.get(name)
    return cls(**knobs).execute(with_diagnosis=with_diagnosis)
