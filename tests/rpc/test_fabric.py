"""Unit tests for the latency-modelled RPC fabric."""

import pytest

from repro.hostd.query import QueryResult
from repro.rpc.fabric import Breakdown, LatencyModel, RpcFabric


def result(scanned=10):
    return QueryResult(payload=None, records_scanned=scanned)


class TestBreakdown:
    def test_add_and_total(self):
        bd = Breakdown()
        bd.add("a", 0.001)
        bd.add("a", 0.002)
        bd.add("b", 0.005)
        assert bd.parts["a"] == pytest.approx(0.003)
        assert bd.total == pytest.approx(0.008)

    def test_merged_is_nonmutating(self):
        a, b = Breakdown({"x": 1.0}), Breakdown({"x": 2.0, "y": 3.0})
        merged = a.merged(b)
        assert merged.parts == {"x": 3.0, "y": 3.0}
        assert a.parts == {"x": 1.0}


class TestElementaryCosts:
    def test_alert_cost(self):
        rpc = RpcFabric()
        assert rpc.alert_cost() == pytest.approx(2.5e-3)

    def test_pointer_pull_scales_with_switches(self):
        """§5.1: ~7-8 ms per switch pointer retrieval."""
        rpc = RpcFabric()
        one = rpc.pointer_pull_cost(1)
        assert 7e-3 <= one <= 8e-3
        assert rpc.pointer_pull_cost(3) == pytest.approx(3 * one)

    def test_pointer_pull_validates(self):
        with pytest.raises(ValueError):
            RpcFabric().pointer_pull_cost(-1)

    def test_call_counter(self):
        rpc = RpcFabric()
        rpc.alert_cost()
        rpc.pointer_pull_cost(2)
        assert rpc.calls == 3


class TestFanout:
    def test_connection_initiation_serializes(self):
        """§6.2: per-server connection setup dominates and is linear."""
        rpc = RpcFabric()
        _, bd10 = rpc.fanout_query([f"h{i}" for i in range(10)],
                                   lambda s: result())
        _, bd40 = rpc.fanout_query([f"h{i}" for i in range(40)],
                                   lambda s: result())
        c10 = bd10.parts["connection_initiation"]
        c40 = bd40.parts["connection_initiation"]
        assert c40 == pytest.approx(4 * c10)

    def test_execution_is_parallel_max_not_sum(self):
        rpc = RpcFabric()
        scans = {"a": 10, "b": 10_000}
        _, bd = rpc.fanout_query(
            ["a", "b"], lambda s: result(scanned=scans[s]))
        model = rpc.model
        expected = model.exec_base_s + 10_000 * model.per_record_s
        assert bd.parts["query_execution"] == pytest.approx(expected)

    def test_results_keyed_by_server(self):
        rpc = RpcFabric()
        results, _ = rpc.fanout_query(["x", "y"], lambda s: result())
        assert set(results) == {"x", "y"}

    def test_empty_server_list(self):
        rpc = RpcFabric()
        results, bd = rpc.fanout_query([], lambda s: result())
        assert results == {}
        assert bd.total == 0.0

    def test_pooled_mode_cheaper(self):
        """The §6.2 thread-pool optimization slashes setup cost."""
        servers = [f"h{i}" for i in range(96)]
        on_demand = RpcFabric()
        pooled = RpcFabric(pooled=True)
        _, bd1 = on_demand.fanout_query(servers, lambda s: result())
        _, bd2 = pooled.fanout_query(servers, lambda s: result())
        assert bd2.parts["connection_initiation"] < \
            bd1.parts["connection_initiation"] / 10

    def test_96_server_fanout_near_paper_range(self):
        """PathDump's 96-server top-k lands around 0.3-0.4 s in Fig 12."""
        rpc = RpcFabric()
        servers = [f"h{i}" for i in range(96)]
        _, bd = rpc.fanout_query(servers, lambda s: result(scanned=100))
        assert 0.25 <= bd.total <= 0.45


class TestCustomModel:
    def test_model_overridable(self):
        model = LatencyModel(connection_init_s=1e-3)
        rpc = RpcFabric(model)
        _, bd = rpc.fanout_query(["a"], lambda s: result())
        assert bd.parts["connection_initiation"] == pytest.approx(1e-3)


class TestBatchedFanout:
    def test_concurrency_batches_connection_setup(self):
        """Opening 8 connections at a time costs ceil(96/8) rounds."""
        servers = [f"h{i}" for i in range(96)]
        serial = RpcFabric()
        batched = RpcFabric(concurrency=8)
        _, bd1 = serial.fanout_query(servers, lambda s: result())
        _, bd8 = batched.fanout_query(servers, lambda s: result())
        assert bd8.parts["connection_initiation"] == pytest.approx(
            bd1.parts["connection_initiation"] / 8)

    def test_partial_last_batch_rounds_up(self):
        rpc = RpcFabric(concurrency=10)
        _, bd = rpc.fanout_query([f"h{i}" for i in range(11)],
                                 lambda s: result())
        assert bd.parts["connection_initiation"] == pytest.approx(
            2 * rpc.model.connection_init_s)

    def test_default_concurrency_matches_serial_model(self):
        """§6.2 on-demand behaviour is the default, unchanged."""
        servers = [f"h{i}" for i in range(40)]
        _, bd = RpcFabric().fanout_query(servers, lambda s: result())
        assert bd.parts["connection_initiation"] == pytest.approx(
            40 * LatencyModel().connection_init_s)

    def test_concurrency_validated(self):
        with pytest.raises(ValueError):
            RpcFabric(concurrency=0)
