"""Fixture: every knob access and sweep binding is declared,
including knobs merged in through the shared-helper idiom."""

from typing import Any

from .base import Knob, Scenario, ScenarioSpec, SweepSpec, register_sweep


def shared_knobs() -> dict[str, Knob]:
    return {
        "warmup": Knob(0.0, "warmup length (s)"),
    }


class FxScenario(Scenario):
    spec = ScenarioSpec(
        name="fx",
        knobs={
            "flows": Knob(4, "flow count"),
            "duration": Knob(0.1, "run length (s)"),
            **shared_knobs(),
        },
        smoke_knobs={"flows": 2},
    )

    def build(self) -> None:
        self.p["flows"]

    def execute(self) -> Any:
        p = self.p
        return p["duration"], p.get("warmup")


register_sweep(
    SweepSpec(
        name="fx-sweep",
        scenario="fx",
        axes={"x": "flows"},
        base_knobs={"duration": 0.2},
        expect_suspect_knob="flows",
    )
)
