"""Unit tests for the synthetic workload generator."""

import pytest

from repro.simnet.topology import build_leaf_spine
from repro.simnet.workload import WorkloadGenerator, WorkloadSpec


def fabric():
    return build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=4,
                            rate_bps=10e9)


class TestSpecValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_rate_per_s=0)

    def test_rejects_infinite_mean_tail(self):
        with pytest.raises(ValueError):
            WorkloadSpec(pareto_shape=0.9)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(min_flow_bytes=100, max_flow_bytes=50)


class TestGeneration:
    def test_deterministic_under_seed(self):
        net1, net2 = fabric(), fabric()
        spec = WorkloadSpec(duration_s=0.02, seed=7)
        flows1 = WorkloadGenerator(net1, spec).schedule()
        flows2 = WorkloadGenerator(net2, spec).schedule()
        assert [(f.flow, f.size_bytes, f.start) for f in flows1] == \
            [(f.flow, f.size_bytes, f.start) for f in flows2]

    def test_different_seed_differs(self):
        spec_a = WorkloadSpec(duration_s=0.02, seed=1)
        spec_b = WorkloadSpec(duration_s=0.02, seed=2)
        fa = WorkloadGenerator(fabric(), spec_a).schedule()
        fb = WorkloadGenerator(fabric(), spec_b).schedule()
        assert [f.size_bytes for f in fa] != [f.size_bytes for f in fb]

    def test_arrival_count_near_rate(self):
        spec = WorkloadSpec(arrival_rate_per_s=5000, duration_s=0.1,
                            seed=3)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert 350 < len(flows) < 650  # Poisson(500) +- ~5 sigma

    def test_sizes_within_bounds(self):
        spec = WorkloadSpec(duration_s=0.05, min_flow_bytes=2000,
                            max_flow_bytes=50_000, seed=5)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert flows
        for f in flows:
            assert 2000 <= f.size_bytes <= 50_000

    def test_no_self_flows(self):
        spec = WorkloadSpec(duration_s=0.05, seed=6)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert all(f.flow.src != f.flow.dst for f in flows)

    def test_sender_receiver_scoping(self):
        net = fabric()
        spec = WorkloadSpec(duration_s=0.05, seed=8)
        gen = WorkloadGenerator(net, spec, senders=["h0_0", "h0_1"],
                                receivers=["h1_0"])
        flows = gen.schedule()
        assert {f.flow.src for f in flows} <= {"h0_0", "h0_1"}
        assert {f.flow.dst for f in flows} == {"h1_0"}

    def test_traffic_actually_delivered(self):
        net = fabric()
        spec = WorkloadSpec(arrival_rate_per_s=500, duration_s=0.02,
                            mean_flow_bytes=10_000, seed=9)
        gen = WorkloadGenerator(net, spec)
        flows = gen.schedule()
        net.run(until=0.2)
        delivered = sum(h.rx_packets for h in net.hosts.values())
        assert delivered >= len(flows)  # every flow landed >= 1 packet


class TestHeavyTail:
    def test_elephants_carry_most_bytes(self):
        spec = WorkloadSpec(arrival_rate_per_s=20_000, duration_s=0.05,
                            mean_flow_bytes=100_000, pareto_shape=1.2,
                            seed=11)
        gen = WorkloadGenerator(fabric(), spec)
        gen.schedule()
        p = gen.size_percentiles((50, 99))
        assert p[99] > 10 * p[50]  # heavy tail
        assert gen.elephant_byte_share(500_000) > 0.3

    def test_percentiles_empty(self):
        gen = WorkloadGenerator(fabric(), WorkloadSpec(seed=1))
        assert gen.size_percentiles() == {50: 0, 90: 0, 99: 0}
