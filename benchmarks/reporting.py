"""Shared reporting for the benchmark harness.

Every figure benchmark prints its reproduced rows/series (the same
quantities the paper plots) and appends them to ``results/<name>.txt``
so `pytest benchmarks/ --benchmark-only | tee bench_output.txt` leaves a
persistent record either way.  Benchmarks that pass ``data`` also
persist a machine-readable ``results/<name>.json`` (uploaded by the CI
benchmarks job alongside the text tables).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def emit(name: str, lines: list[str], *,
         data: Optional[dict[str, Any]] = None) -> None:
    """Print a figure's reproduced rows and persist them."""
    banner = f"==== {name} ===="
    text = "\n".join([banner, *lines, ""])
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def fmt_series(series: list[tuple[float, float]], *, t_scale: float = 1e3,
               t_unit: str = "ms", v_unit: str = "Gbps",
               every: int = 1) -> list[str]:
    """Render a (time, value) series as aligned rows."""
    out = []
    for i, (t, v) in enumerate(series):
        if i % every:
            continue
        out.append(f"  {t * t_scale:8.2f} {t_unit}   {v:7.3f} {v_unit}")
    return out
