"""SwitchPointer end-host component (PathDump extended, §4.2)."""

from .records import FlowRecord, FlowRecordStore, SeqCounter
from .sharded import ShardedRecordStore
from .backends import (available_backends, backend_summaries, make_store,
                       register_backend, resolve_backend,
                       set_default_backend, use_backend)
from .columnar import ColumnarRecordStore, ColumnarRecordView
from .decoder import TelemetryDecoder
from .triggers import (SwitchEpochTuple, TcpTimeoutTrigger,
                       ThroughputDropTrigger, VictimAlert,
                       alert_tuples_from_record)
from .query import FlowSummary, QueryEngine, QueryResult
from .agent import HostAgent
from . import aggregate

__all__ = [
    "FlowRecord", "FlowRecordStore", "SeqCounter",
    "ShardedRecordStore",
    "ColumnarRecordStore", "ColumnarRecordView",
    "available_backends", "backend_summaries", "make_store",
    "register_backend", "resolve_backend", "set_default_backend",
    "use_backend",
    "TelemetryDecoder",
    "ThroughputDropTrigger", "TcpTimeoutTrigger", "VictimAlert",
    "SwitchEpochTuple", "alert_tuples_from_record",
    "QueryEngine", "QueryResult", "FlowSummary",
    "HostAgent",
    "aggregate",
]
