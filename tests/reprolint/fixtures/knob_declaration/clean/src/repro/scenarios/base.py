"""Fixture stand-ins for the scenario/sweep declaration surface."""

from typing import Any


class Knob:
    def __init__(self, default: Any, help: str) -> None:
        self.default = default
        self.help = help


class ScenarioSpec:
    def __init__(self, **kw: Any) -> None:
        self.kw = kw


class SweepSpec:
    def __init__(self, **kw: Any) -> None:
        self.kw = kw


class Scenario:
    p: dict[str, Any] = {}


def register_sweep(spec: SweepSpec) -> SweepSpec:
    return spec
