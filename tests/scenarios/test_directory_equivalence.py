"""Scenario-level directory-backend equivalence (the sketch acceptance
bar).

At the default budget (``directory_bits=0``, saturating) every sketch
backend is exact-equivalent by construction, so switching the whole
deployment onto it via ``use_directory_backend`` must not change a
single diagnosis: same culprits, suspects, narratives, statuses, cost
breakdowns and fault-plan outcomes on every registered scenario.

The only permitted differences are the *evidence labels*: sketch-backed
verdicts carry ``approx=True`` (the answers were supersets by
construction, even when bit-identical), and the similarity-driven
``co_suspects`` ranking may order differently under lsh signatures than
under exact Jaccard.  Both are normalized out before comparison and
asserted separately.
"""

from dataclasses import replace

import pytest

from repro.directory import use_directory_backend
from repro.scenarios import REGISTRY, run_scenario


def _normalized(verdicts):
    return [replace(v, approx=False, co_suspects=[]) for v in verdicts]


@pytest.mark.parametrize("name", REGISTRY.names())
@pytest.mark.parametrize("backend", ["bloom", "lsh"])
def test_sketch_backend_reproduces_reference_diagnosis(name, backend):
    spec = REGISTRY.get(name).spec
    ref = run_scenario(name, **spec.smoke_knobs)
    with use_directory_backend(backend):
        got = run_scenario(name, **spec.smoke_knobs)
    assert _normalized(got.verdicts) == _normalized(ref.verdicts)
    assert (got.measurements.get("fault_plan")
            == ref.measurements.get("fault_plan"))
    # identical host supersets ⇒ identical consultation cost
    assert got.sim_time == ref.sim_time
    for gv, rv in zip(got.verdicts, ref.verdicts):
        assert gv.breakdown.parts == rv.breakdown.parts
        assert gv.status == rv.status
    # the evidence labels tell the two runs apart
    assert all(v.approx for v in got.verdicts)
    assert not any(v.approx for v in ref.verdicts)
    # saturating sketches measure zero false positives
    assert got.measurements.get("directory_fpr", 0.0) == 0.0
    assert ref.measurements.get("directory_fpr", 0.0) == 0.0
