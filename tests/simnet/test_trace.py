"""Tests for packet trace capture and replay."""

import pytest

from repro.simnet.packet import PROTO_UDP, make_udp
from repro.simnet.topology import build_linear
from repro.simnet.trace import (TraceCapture, TraceRecord, TraceReplayer,
                                synthesize_unique_dest_trace)


def traffic_net():
    net = build_linear(2, 2)
    return net


class TestCapture:
    def test_host_sniffer_records_arrivals(self):
        net = traffic_net()
        cap = TraceCapture()
        net.hosts["h2_0"].sniffers.append(cap.host_sniffer)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        net.run()
        assert len(cap) == 1
        rec = cap.records[0]
        assert rec.src == "h1_0" and rec.size == 500
        assert rec.t > 0

    def test_pipeline_hook_records_forwarded(self):
        net = traffic_net()
        cap = TraceCapture()
        net.switches["S1"].pipeline.append(cap.pipeline_hook)
        for i in range(3):
            net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", i, 9, 400))
        net.run()
        assert len(cap) == 3
        assert cap.total_bytes() == 1200
        assert len(cap.flows()) == 3

    def test_save_load_roundtrip(self, tmp_path):
        net = traffic_net()
        cap = TraceCapture()
        net.switches["S1"].pipeline.append(cap.pipeline_hook)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        net.run()
        path = tmp_path / "trace.jsonl"
        assert cap.save(path) == 1
        loaded = TraceCapture.load(path)
        assert loaded.records == cap.records


class TestReplay:
    def test_replay_preserves_relative_timing(self):
        records = [
            TraceRecord(t=1.0, src="h1_0", dst="h2_0", sport=1, dport=9,
                        proto=PROTO_UDP, size=400, priority=0),
            TraceRecord(t=1.005, src="h1_0", dst="h2_1", sport=2,
                        dport=9, proto=PROTO_UDP, size=400, priority=0),
        ]
        net = traffic_net()
        arrivals = []
        for h in ("h2_0", "h2_1"):
            net.hosts[h].sniffers.append(
                lambda _h, p, t: arrivals.append((p.dst, t)))
        rep = TraceReplayer(net, records)
        assert rep.schedule() == 2
        net.run()
        assert rep.injected == 2
        times = dict(arrivals)
        assert times["h2_1"] - times["h2_0"] == pytest.approx(0.005,
                                                              abs=1e-4)

    def test_speed_scaling(self):
        records = [
            TraceRecord(t=0.0, src="h1_0", dst="h2_0", sport=1, dport=9,
                        proto=PROTO_UDP, size=400, priority=0),
            TraceRecord(t=0.010, src="h1_0", dst="h2_0", sport=1,
                        dport=9, proto=PROTO_UDP, size=400, priority=0),
        ]
        net = traffic_net()
        arrivals = []
        net.hosts["h2_0"].sniffers.append(
            lambda _h, p, t: arrivals.append(t))
        TraceReplayer(net, records, speed=2.0).schedule()
        net.run()
        assert arrivals[1] - arrivals[0] == pytest.approx(0.005,
                                                          abs=1e-4)

    def test_unknown_hosts_skipped(self):
        records = [
            TraceRecord(t=0.0, src="ghost", dst="h2_0", sport=1,
                        dport=9, proto=PROTO_UDP, size=400, priority=0),
            TraceRecord(t=0.0, src="h1_0", dst="h2_0", sport=1, dport=9,
                        proto=PROTO_UDP, size=400, priority=0),
        ]
        net = traffic_net()
        rep = TraceReplayer(net, records)
        assert rep.schedule() == 1
        assert rep.skipped == 1

    def test_invalid_speed(self):
        net = traffic_net()
        with pytest.raises(ValueError):
            TraceReplayer(net, [], speed=0)

    def test_empty_trace(self):
        net = traffic_net()
        assert TraceReplayer(net, []).schedule() == 0


class TestSynthesis:
    def test_unique_destinations(self):
        trace = synthesize_unique_dest_trace(1000)
        assert len({r.dst for r in trace}) == 1000
        assert all(r.size == 256 for r in trace)

    def test_monotone_times(self):
        trace = synthesize_unique_dest_trace(50, interval=1e-5)
        times = [r.t for r in trace]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_unique_dest_trace(0)
