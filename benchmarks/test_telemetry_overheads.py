"""Header-tax and simulator-throughput ablations (§4.1.3 context).

Not a paper figure, but the quantitative backdrop of the paper's
commodity-vs-INT argument: the VLAN double tag costs a constant 8 B per
packet regardless of path length, while an INT stack grows per hop —
on a 5-hop fat-tree path that is 44 B, >5× the commodity design, which
is why SwitchPointer bothers with CherryPick at all.

Also benchmarks the raw simulator event rate (events/s) so regressions
in the substrate are visible.
"""

import pytest

from repro.core.headers import IntStack, VlanDoubleTag
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_fat_tree

from benchmarks.reporting import emit


@pytest.mark.benchmark(group="telemetry")
def test_header_tax_vlan_vs_int(benchmark):
    def measure():
        rows = {}
        for hops in (1, 2, 3, 5, 7):
            stack = IntStack()
            for i in range(hops):
                stack.push(f"S{i}", 0)
            vlan = VlanDoubleTag.embed(1, 0)
            rows[hops] = (vlan.wire_overhead_bytes(),
                          stack.wire_overhead_bytes())
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["hops  vlan_bytes  int_bytes"]
    for hops, (v, i) in rows.items():
        lines.append(f"  {hops:3d}  {v:9d}  {i:8d}")
    lines.append("(VLAN double tag is constant; INT grows 8 B/hop — "
                 "the §4.1.3 motivation for the commodity design)")
    emit("telemetry_header_tax", lines)

    assert all(v == 8 for v, _ in rows.values())
    assert rows[5][1] > 5 * rows[5][0] / 2
    int_sizes = [i for _, i in rows.values()]
    assert int_sizes == sorted(int_sizes)


@pytest.mark.benchmark(group="telemetry")
def test_per_packet_wire_overhead_fraction(benchmark):
    """Relative header tax at the paper's packet sizes."""
    def measure():
        vlan = VlanDoubleTag.embed(1, 0).wire_overhead_bytes()
        stack = IntStack()
        for i in range(5):
            stack.push(f"S{i}", 0)
        int5 = stack.wire_overhead_bytes()
        return {size: (vlan / size, int5 / size)
                for size in (64, 256, 850, 1500)}

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["pkt_size  vlan_tax  int5_tax"]
    for size, (v, i) in rows.items():
        lines.append(f"  {size:6d}  {v:7.1%}  {i:7.1%}")
    emit("telemetry_tax_fraction", lines)
    # at the datacenter mean (~850 B) the VLAN tax is ~1%
    assert rows[850][0] < 0.01
    assert rows[64][1] > 0.5  # INT on tiny packets is prohibitive


@pytest.mark.benchmark(group="telemetry")
def test_simulator_event_rate_fat_tree(benchmark):
    """Substrate health: events/s while flooding a k=4 fat-tree."""
    def run():
        net = build_fat_tree(4)
        hosts = net.host_names
        for i, src in enumerate(hosts):
            dst = hosts[(i + 5) % len(hosts)]
            for p in range(20):
                net.hosts[src].send(make_udp(src, dst, p, 9, 700))
        net.run()
        return net.sim.events_processed

    events = benchmark(run)
    assert events > 1000


@pytest.mark.benchmark(group="telemetry")
def test_instrumentation_overhead_on_simulation(benchmark):
    """How much the SwitchPointer hooks slow the *simulator* — the cost
    of observing, not a paper claim; useful for sizing experiments."""
    import time
    from repro import SwitchPointerDeployment

    def run_once(instrument: bool):
        net = build_fat_tree(4)
        if instrument:
            SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                    epsilon_ms=1, delta_ms=2)
        hosts = net.host_names
        for i, src in enumerate(hosts):
            dst = hosts[(i + 3) % len(hosts)]
            for p in range(10):
                net.hosts[src].send(make_udp(src, dst, p, 9, 700))
        t0 = time.perf_counter()
        net.run()
        return time.perf_counter() - t0

    def measure():
        bare = min(run_once(False) for _ in range(3))
        full = min(run_once(True) for _ in range(3))
        return bare, full

    bare, full = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("instrumentation_overhead", [
        f"bare simulation:        {bare * 1e3:.1f} ms",
        f"with SwitchPointer:     {full * 1e3:.1f} ms",
        f"observation overhead:   {full / bare:.2f}x",
    ])
    assert full < bare * 25  # sane bound; typically ~2-5x
