#!/usr/bin/env python3
"""Benchmark-regression gate: compare results/ JSON against baselines.

Usage::

    python tools/check_bench_regression.py            # gate (CI, blocking)
    python tools/check_bench_regression.py --update   # refresh baselines

Every file in ``benchmarks/baselines/*.json`` names a results document
and the wall-time metrics gated inside it::

    {
      "source": "query_index.json",            // under results/
      "max_factor": 1.3,                       // >30% slower fails
      "metrics": {"indexed_match_ms": 11.2, "points.0.wall_time_s": 0.31}
    }

Metric keys are dotted paths into the source document (integer segments
index into lists), so sweep reports gate per grid point.  A source that
carries the sweep-report schema is structurally validated before any
number is trusted.  Run the benchmarks that emit the sources first::

    python -m pytest benchmarks/test_query_index.py \
        benchmarks/test_sweep_smoke.py -q

Baselines are committed from whatever machine ran ``--update``, while
the gate usually runs on a different (often slower, noisier) CI runner.
To keep the 30% threshold meaningful across machines, each baseline
stores a ``calibration_s`` — the wall time of a fixed CPU-bound probe
loop on the baseline machine.  The gate re-runs the same probe and
scales each metric's allowance by ``max(1, current/baseline)``: a
slower runner gets proportionally more headroom, a faster one still has
to beat the absolute baseline.  (A baseline without ``calibration_s``
gates on absolute times.)

``--update`` rewrites each baseline's metric values (and calibration)
from the current results — commit the diff deliberately, it is the new
reference.  The allowed factor can also be widened for an exceptionally
noisy runner via the ``BENCH_REGRESSION_FACTOR`` environment variable
without editing the committed baselines.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

REPO = Path(__file__).resolve().parent.parent
BASELINES = REPO / "benchmarks" / "baselines"
RESULTS = REPO / "results"
DEFAULT_MAX_FACTOR = 1.3

sys.path.insert(0, str(REPO / "src"))

from repro.sweep import SCHEMA, validate_report  # noqa: E402


def calibrate() -> float:
    """Wall time of a fixed CPU-bound probe (machine-speed yardstick).

    Best of three runs of a pure-Python arithmetic loop — the same kind
    of work the gated benchmarks spend their time on, so the ratio of
    probe times approximates the ratio of benchmark times between the
    baseline machine and the gating machine.
    """
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(1_500_000):
            acc += i * i
        best = min(best, time.perf_counter() - start)
    return best


def resolve(doc: Any, path: str) -> Any:
    """Walk a dotted path; integer segments index into lists."""
    node = doc
    for segment in path.split("."):
        if isinstance(node, list):
            node = node[int(segment)]
        elif isinstance(node, dict):
            node = node[segment]
        else:
            raise KeyError(path)
    return node


def load_source(name: str) -> Any:
    path = RESULTS / name
    if not path.exists():
        raise FileNotFoundError(
            f"{path.relative_to(REPO)} missing — run the benchmarks "
            f"that emit it first (see --help)"
        )
    doc = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
        problems = validate_report(doc)
        if problems:
            raise ValueError(
                f"{path.relative_to(REPO)} failed schema validation: "
                + "; ".join(problems)
            )
    return doc


def check_baseline(
    baseline_path: Path,
    *,
    factor_override: float | None,
    update: bool,
    calibration_s: float,
) -> list[str]:
    """Gate (or refresh) one baseline file; returns failure messages."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    source_name = baseline["source"]
    max_factor = factor_override or baseline.get("max_factor", DEFAULT_MAX_FACTOR)
    base_cal = baseline.get("calibration_s")
    speed_ratio = 1.0
    if base_cal and not update:
        # slower machine than the baseline's → proportionally more
        # headroom; faster → still must meet the absolute baseline
        speed_ratio = max(1.0, calibration_s / base_cal)
    failures: list[str] = []
    try:
        doc = load_source(source_name)
    except (FileNotFoundError, ValueError) as exc:
        return [str(exc)]
    for metric, reference in baseline["metrics"].items():
        try:
            current = resolve(doc, metric)
        except (KeyError, IndexError, ValueError):
            failures.append(f"{source_name}: metric {metric!r} missing from results")
            continue
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            failures.append(f"{source_name}: metric {metric!r} is not a number")
            continue
        if update:
            baseline["metrics"][metric] = current
            continue
        allowed = reference * max_factor * speed_ratio
        verdict = "ok" if current <= allowed else "REGRESSION"
        print(
            f"  {source_name}:{metric}  baseline={reference:.4g}  "
            f"current={current:.4g}  allowed<={allowed:.4g}  {verdict}"
        )
        if current > allowed:
            failures.append(
                f"{source_name}: {metric} regressed "
                f"{current / reference:.2f}x over baseline "
                f"({current:.4g} vs {reference:.4g}, allowed factor "
                f"{max_factor} x speed ratio {speed_ratio:.2f})"
            )
    if update:
        baseline["calibration_s"] = round(calibration_s, 4)
        baseline_path.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"updated {baseline_path.relative_to(REPO)}")
    return failures


def main(argv: list[str]) -> int:
    update = "--update" in argv
    factor_env = os.environ.get("BENCH_REGRESSION_FACTOR")
    factor_override = float(factor_env) if factor_env else None
    baseline_paths = sorted(BASELINES.glob("*.json"))
    if not baseline_paths:
        print(
            f"no baselines under {BASELINES.relative_to(REPO)}",
            file=sys.stderr,
        )
        return 1
    calibration_s = calibrate()
    print(f"machine calibration probe: {calibration_s * 1e3:.1f} ms")
    failures: list[str] = []
    for path in baseline_paths:
        print(f"{path.relative_to(REPO)}:")
        failures.extend(
            check_baseline(
                path,
                factor_override=factor_override,
                update=update,
                calibration_s=calibration_s,
            )
        )
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if not update:
        print("benchmark gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
