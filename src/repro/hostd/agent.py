"""Host agent: the end-host daemon (§4.2).

One :class:`HostAgent` per server wires together everything the paper's
flask-based agent does:

* a sniffer on the host datapath feeding the telemetry decoder,
* the flow-record store (+ optional disk spill),
* the query engine the analyzer calls into,
* trigger registration (throughput drop, TCP timeout) with alerts
  routed to a sink (normally the analyzer's ingest method).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..core.epoch import EpochClock, EpochRangeEstimator
from ..simnet.engine import Simulator
from ..simnet.host import Host
from ..simnet.packet import FlowKey
from ..simnet.tcp import TcpSender
from ..switchd.cherrypick import CherryPickPlanner
from .decoder import TelemetryDecoder
from .query import QueryEngine
from .records import FlowRecordStore
from .triggers import (AlertSink, TcpTimeoutTrigger, ThroughputDropTrigger,
                       VictimAlert)


class HostAgent:
    """The SwitchPointer daemon running on one end-host."""

    def __init__(self, host: Host, *, clock: EpochClock,
                 planner: CherryPickPlanner,
                 estimator: EpochRangeEstimator,
                 spill_path: Optional[Path] = None):
        self.host = host
        self.clock = clock
        self.store = FlowRecordStore(host.name, spill_path=spill_path)
        self.decoder = TelemetryDecoder(self.store, clock, planner,
                                        estimator)
        self.query = QueryEngine(self.store)
        self.triggers: list[ThroughputDropTrigger] = []
        self.timeout_triggers: list[TcpTimeoutTrigger] = []
        host.sniffers.append(self.decoder.on_packet)

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self) -> Simulator:
        return self.host.sim

    # -- trigger management -------------------------------------------------

    def watch_flow(self, flow: FlowKey, sink: AlertSink, *,
                   window: float = 0.001, drop_threshold: float = 0.5,
                   floor_gbps: float = 0.05) -> ThroughputDropTrigger:
        """Install the §5.1 throughput-drop trigger for one flow."""
        trig = ThroughputDropTrigger(
            self.sim, flow, self.host.name, self.store, sink,
            window=window, drop_threshold=drop_threshold,
            floor_gbps=floor_gbps, clock=self.clock,
            slack_epochs=self.decoder.estimator.span_epochs(1))
        self.triggers.append(trig)
        # feed the trigger from the same sniffer stream the decoder uses
        self.host.sniffers.append(
            lambda _host, pkt, now: trig.on_packet(pkt, now))
        return trig

    def watch_tcp_sender(self, sender: TcpSender,
                         sink: AlertSink) -> TcpTimeoutTrigger:
        """Install a timeout trigger for a locally originated TCP flow."""
        trig = TcpTimeoutTrigger(self.sim, sender, self.host.name, sink,
                                 store=self.store)
        self.timeout_triggers.append(trig)
        return trig

    def stop_triggers(self) -> None:
        for trig in self.triggers:
            trig.stop()
        for trig in self.timeout_triggers:
            trig.stop()

    # -- storage --------------------------------------------------------------

    def flush_records(self) -> int:
        """Spill in-memory records to local storage (MongoDB stand-in)."""
        return self.store.flush_to_disk()
