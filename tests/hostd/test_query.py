"""Unit tests for the host-side query engine."""

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.query import QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.simnet.packet import FlowKey, PROTO_TCP, PROTO_UDP


def populate(store, specs):
    """specs: (i, nbytes, path, switch->range, priority)."""
    for i, nbytes, path, ranges, prio in specs:
        key = FlowKey(f"s{i}", f"d{i}", 10 + i, 20 + i, PROTO_UDP)
        rec = store.record_for(key)
        rec.observe(nbytes=nbytes, t=0.001 * i, priority=prio,
                    switch_path=list(path),
                    ranges={sw: EpochRange(*r) for sw, r in ranges.items()},
                    observed_epoch=1)
    return store


@pytest.fixture
def engine():
    store = FlowRecordStore("h")
    populate(store, [
        (0, 5000, ("S1", "S2"), {"S1": (0, 2), "S2": (1, 3)}, 0),
        (1, 9000, ("S1", "S3"), {"S1": (0, 2), "S3": (1, 3)}, 2),
        (2, 1000, ("S2", "S3"), {"S2": (5, 6), "S3": (5, 7)}, 1),
        (3, 7000, ("S1",), {"S1": (9, 9)}, 0),
    ])
    return QueryEngine(store)


class TestTopK:
    def test_orders_by_bytes_desc(self, engine):
        res = engine.top_k_flows(2)
        sizes = [s.bytes for s in res.payload]
        assert sizes == [9000, 7000]

    def test_switch_filter(self, engine):
        res = engine.top_k_flows(10, switch="S2")
        assert {s.bytes for s in res.payload} == {5000, 1000}

    def test_epoch_filter(self, engine):
        res = engine.top_k_flows(10, switch="S1",
                                 epochs=EpochRange(0, 3))
        assert {s.bytes for s in res.payload} == {5000, 9000}

    def test_scan_cost_reported(self, engine):
        res = engine.top_k_flows(1)
        assert res.records_scanned == 4
        assert res.records_returned == 1

    def test_k_validation(self, engine):
        with pytest.raises(ValueError):
            engine.top_k_flows(0)


class TestFlowSizeDistribution:
    def test_groups_by_next_hop(self, engine):
        res = engine.flow_size_distribution(switch="S1")
        # flow0 next hop S2, flow1 next hop S3, flow3 last hop -> dst
        assert res.payload == {"S2": [5000], "S3": [9000], "d3": [7000]}

    def test_epoch_filter_applies(self, engine):
        res = engine.flow_size_distribution(switch="S1",
                                            epochs=EpochRange(9, 9))
        assert res.payload == {"d3": [7000]}


class TestFlowsMatching:
    def test_switch_and_epoch_filter(self, engine):
        res = engine.flows_matching("S3", EpochRange(5, 6))
        assert [s.bytes for s in res.payload] == [1000]

    def test_summaries_carry_telemetry(self, engine):
        res = engine.flows_matching("S1")
        summary = next(s for s in res.payload if s.bytes == 9000)
        assert summary.priority == 2
        assert summary.switch_path == ["S1", "S3"]
        assert summary.epochs_at("S1") == EpochRange(0, 2)
        assert summary.epochs_at("S9") is None


class TestFlowDetails:
    def test_known_flow(self, engine):
        key = FlowKey("s1", "d1", 11, 21, PROTO_UDP)
        res = engine.flow_details(key)
        assert res.payload.bytes == 9000
        assert res.records_returned == 1

    def test_unknown_flow(self, engine):
        key = FlowKey("x", "y", 1, 2, PROTO_TCP)
        res = engine.flow_details(key)
        assert res.payload is None
        assert res.records_returned == 0


class TestAccounting:
    def test_queries_served_counter(self, engine):
        engine.top_k_flows(1)
        engine.flows_matching("S1")
        assert engine.queries_served == 2
