"""Property-based tests for the hierarchical pointer store.

Core soundness/completeness claim (§3): for any update sequence, querying
a window that is still retained must return exactly the destinations
updated in that window — no false negatives ever, and no false positives
at level 1 (higher levels only coarsen, never invent)."""

from hypothesis import given, settings, strategies as st

from repro.core.pointer import HierarchicalPointerStore, PointerSet

N_SLOTS = 32

updates = st.lists(
    st.tuples(st.integers(min_value=0, max_value=300),    # epoch
              st.integers(min_value=0, max_value=N_SLOTS - 1)),  # slot
    min_size=1, max_size=200)


@settings(max_examples=60, deadline=None)
@given(ops=updates,
       alpha=st.sampled_from([2, 4, 10]),
       k=st.integers(min_value=1, max_value=4))
def test_level1_exactness_within_retention(ops, alpha, k):
    store = HierarchicalPointerStore(N_SLOTS, alpha=alpha, k=k)
    truth: dict[int, set[int]] = {}
    for epoch, slot in sorted(ops):
        store.update(epoch, slot)
        truth.setdefault(epoch, set()).add(slot)
    if k == 1:
        return  # no live level-1 sets in the degenerate store
    # a level-1 window is guaranteed live while its set has not been
    # reused; with lazy rotation that means: it is the latest epoch
    # mapping to its set slot
    latest_for_slot: dict[int, int] = {}
    for epoch in truth:
        latest_for_slot[epoch % alpha] = max(
            latest_for_slot.get(epoch % alpha, -1), epoch)
    for epoch, slots in truth.items():
        if latest_for_slot[epoch % alpha] != epoch:
            continue  # recycled — allowed to be gone
        got = store.slots_for_epochs(epoch, epoch, level=1)
        assert got == slots, (epoch, got, slots)


@settings(max_examples=60, deadline=None)
@given(ops=updates, alpha=st.sampled_from([2, 4, 10]),
       k=st.integers(min_value=2, max_value=4))
def test_no_false_negatives_across_levels(ops, alpha, k):
    """Any level's surviving snapshot of a window must contain every
    update that fell inside that window."""
    store = HierarchicalPointerStore(N_SLOTS, alpha=alpha, k=k)
    seq = sorted(ops)
    for epoch, slot in seq:
        store.update(epoch, slot)
    by_epoch: dict[int, set[int]] = {}
    for epoch, slot in seq:
        by_epoch.setdefault(epoch, set()).add(slot)
    for level in range(1, k + 1):
        span = store.epochs_covered(level)
        for epoch, slots in by_epoch.items():
            snap = store.snapshot(level, epoch)
            if snap is None:
                continue  # recycled window: absence is allowed
            if snap.segment == epoch // span:
                got = set(snap.slots())
                missing = slots - got
                assert not missing, (level, epoch, missing)


@settings(max_examples=60, deadline=None)
@given(ops=updates)
def test_top_level_pushes_partition_time(ops):
    """Pushed windows never overlap and appear in segment order."""
    pushes = []
    store = HierarchicalPointerStore(N_SLOTS, alpha=4, k=2,
                                     on_push=pushes.append)
    for epoch, slot in sorted(ops):
        store.update(epoch, slot)
    store.flush_top()
    segments = [p.segment for p in pushes]
    assert segments == sorted(set(segments))


@settings(max_examples=80, deadline=None)
@given(slots=st.sets(st.integers(min_value=0, max_value=255),
                     max_size=64))
def test_pointer_set_bytes_roundtrip(slots):
    ps = PointerSet(256)
    for s in slots:
        ps.set_slot(s)
    clone = PointerSet.from_bytes(256, ps.to_bytes())
    assert set(clone.iter_slots()) == slots
    assert clone.popcount == len(slots)


@settings(max_examples=80, deadline=None)
@given(a=st.sets(st.integers(min_value=0, max_value=63), max_size=30),
       b=st.sets(st.integers(min_value=0, max_value=63), max_size=30))
def test_union_into_is_set_union(a, b):
    pa, pb = PointerSet(64), PointerSet(64)
    for s in a:
        pa.set_slot(s)
    for s in b:
        pb.set_slot(s)
    pa.union_into(pb)
    assert set(pb.iter_slots()) == a | b
