"""Fixture: undeclared knob use plus a sweep bound to ghost knobs."""

from typing import Any

from .base import Knob, Scenario, ScenarioSpec, SweepSpec, register_sweep


class FxScenario(Scenario):
    spec = ScenarioSpec(
        name="fx",
        knobs={
            "flows": Knob(4, "flow count"),
            "duration": Knob(0.1, "run length (s)"),
        },
        smoke_knobs={"rate": 1},
    )

    def build(self) -> None:
        self.p["flows"]

    def execute(self) -> Any:
        p = self.p
        return p["burst_len"], p.get("warmup")


register_sweep(
    SweepSpec(
        name="fx-sweep",
        scenario="fx",
        axes={"x": "ghost_axis"},
        base_knobs={"phantom": 9},
        expect_suspect_knob="missing",
    )
)
