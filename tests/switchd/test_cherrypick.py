"""Unit tests for CherryPick link sampling and path reconstruction."""

import pytest

from repro.simnet.packet import PROTO_UDP, make_udp
from repro.simnet.topology import (TopologyError, build_fat_tree,
                                   build_leaf_spine, build_linear)
from repro.switchd.cherrypick import CherryPickPlanner


class TestLinear:
    def test_every_chain_link_pins(self):
        net = build_linear(3, 1)
        planner = CherryPickPlanner(net)
        for pair in (("S1", "S2"), ("S2", "S3")):
            link = net.link_between(*pair)
            assert planner.pins_path("h1_0", "h3_0", link)

    def test_reconstruction_matches_route(self):
        net = build_linear(3, 1)
        planner = CherryPickPlanner(net)
        link = net.link_between("S1", "S2")
        path = planner.reconstruct_path("h1_0", "h3_0", link.vlan_id)
        assert path == ["h1_0", "S1", "S2", "S3", "h3_0"]

    def test_switch_path_trims_hosts(self):
        net = build_linear(3, 1)
        planner = CherryPickPlanner(net)
        link = net.link_between("S2", "S3")
        assert planner.switch_path("h1_0", "h3_0",
                                   link.vlan_id) == ["S1", "S2", "S3"]

    def test_off_path_link_does_not_pin(self):
        net = build_linear(3, 2)
        planner = CherryPickPlanner(net)
        stray = net.link_between("h2_0", "S2")
        assert not planner.pins_path("h1_0", "h3_0", stray)
        with pytest.raises(TopologyError):
            planner.reconstruct_path("h1_0", "h3_0", stray.vlan_id)


class TestLeafSpine:
    def test_leaf_spine_link_pins_cross_leaf_path(self):
        net = build_leaf_spine(4, 3, 2)
        planner = CherryPickPlanner(net)
        link = net.link_between("leaf0", "spine2")
        assert planner.pins_path("h0_0", "h3_1", link)
        path = planner.reconstruct_path("h0_0", "h3_1", link.vlan_id)
        assert path == ["h0_0", "leaf0", "spine2", "leaf3", "h3_1"]

    def test_host_link_does_not_pin_multipath(self):
        """With >= 2 spines the src host link lies on every shortest
        path, so it cannot disambiguate."""
        net = build_leaf_spine(4, 2, 2)
        planner = CherryPickPlanner(net)
        host_link = net.link_between("h0_0", "leaf0")
        assert not planner.pins_path("h0_0", "h3_1", host_link)


class TestFatTree:
    @pytest.fixture(scope="class")
    def net(self):
        return build_fat_tree(4)

    def test_agg_core_link_pins_interpod_path(self, net):
        """The paper's §4.1.3 example: one aggregate-core link pins a
        5-hop fat-tree path."""
        planner = CherryPickPlanner(net)
        link = net.link_between("agg0_0", "core0")
        src, dst = "h0_0_0", "h2_0_0"
        assert planner.pins_path(src, dst, link)
        path = planner.reconstruct_path(src, dst, link.vlan_id)
        switches = [n for n in path if n in net.switches]
        assert len(switches) == 5
        assert switches[2] == "core0"

    def test_embedding_hop_found_for_all_pairs(self, net):
        planner = CherryPickPlanner(net)
        pairs = [("h0_0_0", "h1_0_0"), ("h0_0_0", "h0_1_0"),
                 ("h2_1_1", "h3_0_1")]
        for src, dst in pairs:
            assert planner.embedding_hop(src, dst) is not None

    def test_reconstruction_equals_ground_truth_hops(self, net):
        """Send a real packet; the trajectory reconstructed from the
        pinning link must equal the switches it actually traversed."""
        planner = CherryPickPlanner(net)
        src, dst = "h0_0_0", "h3_1_1"
        got = []
        net.hosts[dst].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts[src].send(make_udp(src, dst, 1, 9, 500))
        net.run()
        true_hops = got[0].hops
        # find the on-path link that pins, as the datapath would
        nodes = [src] + true_hops + [dst]
        pinning = None
        for a, b in zip(nodes, nodes[1:]):
            link = net.link_between(a, b)
            if planner.pins_path(src, dst, link):
                pinning = link
                break
        assert pinning is not None
        assert planner.switch_path(src, dst, pinning.vlan_id) == true_hops


class TestCaching:
    def test_pins_cached(self):
        net = build_linear(3, 1)
        planner = CherryPickPlanner(net)
        link = net.link_between("S1", "S2")
        assert planner.pins_path("h1_0", "h3_0", link)
        assert ("h1_0", "h3_0", link.link_id) in planner._pins_cache
        # second call hits the cache (same answer)
        assert planner.pins_path("h1_0", "h3_0", link)
