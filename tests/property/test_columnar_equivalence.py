"""Property tests: the columnar store is observably identical to the
object-based stores.

The array-backed :class:`ColumnarRecordStore` claims to be a drop-in
for the flat :class:`FlowRecordStore` (the equivalence reference) and
the :class:`ShardedRecordStore`.  These properties drive all backends
through the *same* arbitrary interleaving of ingests, disk flushes,
crash losses and spill-file reloads — with and without an eviction
bound — and require every observable to agree:

* ``scan_through`` / ``flows_matching`` / ``top_k_flows`` payloads,
  in order, for unwindowed, windowed and ``since_seq`` delta variants;
* ``records_scanned`` (it feeds the RPC latency model) and the
  ``as_of_seq`` watermark;
* the ``peak_records`` / ``spilled`` / ``evicted`` / ``ingested``
  counters and the table length;
* the spill files themselves, byte for byte (flat vs columnar; the
  sharded store orders *eviction* spills by shard, so its file is only
  compared when no eviction bound is active).
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.epoch import EpochRange
from repro.hostd.columnar import ColumnarRecordStore
from repro.hostd.query import QueryEngine
from repro.hostd.records import FlowRecordStore
from repro.hostd.sharded import ShardedRecordStore
from repro.simnet.packet import FlowKey, PROTO_UDP

SWITCH_SETS = (("S1",), ("S2",), ("S1", "S2"), ("S2", "S3"))
N_SHARDS = 4


def flow_key(i: int) -> FlowKey:
    return FlowKey(f"s{i}", "dst", 1000 + i, 9, PROTO_UDP)


def _make(layout, spill, bound):
    if layout == "flat":
        return FlowRecordStore("h", spill_path=spill, max_records=bound)
    if layout == "sharded":
        return ShardedRecordStore("h", spill_path=spill,
                                  max_records=bound, n_shards=N_SHARDS)
    return ColumnarRecordStore("h", spill_path=spill, max_records=bound)


def _load(layout, spill, bound):
    if layout == "flat":
        return FlowRecordStore.load_from_disk("h", spill,
                                              max_records=bound)
    if layout == "sharded":
        return ShardedRecordStore.load_from_disk("h", spill,
                                                 max_records=bound,
                                                 n_shards=N_SHARDS)
    return ColumnarRecordStore.load_from_disk("h", spill,
                                              max_records=bound)


# -- interleaving scripts ----------------------------------------------------

OP_KINDS = ("ingest",) * 6 + ("flush", "crash", "reload")


@st.composite
def interleaving(draw, *, with_reload=True):
    """Ops (ingest/flush/crash/reload) + delta-query cut positions."""
    kinds = OP_KINDS if with_reload else OP_KINDS[:-1]
    n = draw(st.integers(min_value=2, max_value=40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(kinds))
        if kind == "ingest":
            ops.append(("ingest",
                        draw(st.integers(min_value=0, max_value=9)),
                        draw(st.sampled_from(SWITCH_SETS)),
                        draw(st.integers(min_value=0, max_value=5))))
        else:
            ops.append((kind,))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=n),
                                min_size=0, max_size=3)))
    return ops, cuts


def _apply(layout, store, op, spill, bound, idx):
    """One script op; returns the (possibly replaced) store."""
    if op[0] == "ingest":
        _, i, switches, lo = op
        store.ingest(flow_key(i), nbytes=100 * (i + 1),
                     t=0.001 * (idx + 1), priority=i % 2,
                     switch_path=list(switches),
                     ranges={sw: EpochRange(lo, lo + 1)
                             for sw in switches},
                     observed_epoch=lo)
    elif op[0] == "flush":
        store.flush_to_disk()
    elif op[0] == "crash":
        store.drop_all()
    elif op[0] == "reload":
        # only meaningful once something reached disk; whether the file
        # exists is identical across backends (same deterministic ops)
        if spill.exists():
            store = _load(layout, spill, bound)
    return store


# -- observations ------------------------------------------------------------

def _snap(rec):
    """Backend-neutral projection of one record/view."""
    return (rec.flow, rec.bytes, rec.packets, rec.priority,
            rec.first_seen, rec.last_seen, tuple(rec.switch_path),
            {sw: (r.lo, r.hi) for sw, r in rec.epoch_ranges.items()},
            dict(rec.bytes_by_epoch))


WINDOWS = (None, EpochRange(1, 3), EpochRange(2, 4))


def _observe(store, since):
    """The full query battery against the store's current state."""
    eng = QueryEngine(store)
    obs = []
    for switch in ("S1", "S2", "S3"):
        for epochs in WINDOWS:
            recs, scanned = store.scan_through(switch, epochs)
            obs.append(("scan", switch, epochs,
                        [_snap(r) for r in recs], scanned))
        res = eng.flows_matching(switch, since_seq=since)
        obs.append(("delta", switch, list(res.payload),
                    res.records_scanned, res.as_of_seq))
        top = eng.top_k_flows(3, switch=switch)
        obs.append(("topk", switch, list(top.payload),
                    top.records_scanned))
        win = eng.top_k_flows(2, switch=switch, epochs=EpochRange(0, 2))
        obs.append(("topk-win", switch, list(win.payload),
                    win.records_scanned))
    obs.append(("counters", len(store), store.peak_records,
                store.spilled, store.evicted, store.ingested))
    return obs, store.ingested


def _run(layout, ops, cuts, tmpdir, bound):
    """Drive one backend through the script; return all observations."""
    spill = Path(tmpdir) / f"{layout}.jsonl"
    store = _make(layout, spill, bound)
    obs = []
    since = None
    cutset = set(cuts)
    for idx, op in enumerate(ops):
        if idx in cutset:
            round_obs, since = _observe(store, since)
            obs.append(round_obs)
        store = _apply(layout, store, op, spill, bound, idx)
    round_obs, _ = _observe(store, since)
    obs.append(round_obs)
    spill_bytes = spill.read_bytes() if spill.exists() else b""
    return obs, spill_bytes


# -- the properties ----------------------------------------------------------

@given(script=interleaving())
@settings(max_examples=40, deadline=None)
def test_three_way_equivalence_unbounded(script):
    """No memory bound: flat, sharded and columnar agree on every
    observable — queries, counters, and the spill file bytes."""
    ops, cuts = script
    with tempfile.TemporaryDirectory() as tmp:
        flat_obs, flat_spill = _run("flat", ops, cuts, tmp, None)
        shard_obs, shard_spill = _run("sharded", ops, cuts, tmp, None)
        col_obs, col_spill = _run("columnar", ops, cuts, tmp, None)
    assert col_obs == flat_obs
    assert shard_obs == flat_obs
    assert col_spill == flat_spill
    assert shard_spill == flat_spill


@given(script=interleaving())
@settings(max_examples=40, deadline=None)
def test_flat_columnar_equivalence_under_eviction(script):
    """With a memory bound the columnar store evicts the same victims,
    spills the same bytes in the same order, and reloads to the same
    table as the flat reference."""
    ops, cuts = script
    with tempfile.TemporaryDirectory() as tmp:
        flat_obs, flat_spill = _run("flat", ops, cuts, tmp, 4)
        col_obs, col_spill = _run("columnar", ops, cuts, tmp, 4)
    assert col_obs == flat_obs
    assert col_spill == flat_spill


@given(script=interleaving(with_reload=False))
@settings(max_examples=40, deadline=None)
def test_three_way_in_memory_equivalence_under_eviction(script):
    """All three backends pick identical eviction victims under the
    global bound, so their in-memory observables stay identical (the
    sharded store's spill file groups victims by shard, so only its
    in-memory state is compared here)."""
    ops, cuts = script
    with tempfile.TemporaryDirectory() as tmp:
        flat_obs, flat_spill = _run("flat", ops, cuts, tmp, 4)
        shard_obs, _ = _run("sharded", ops, cuts, tmp, 4)
        col_obs, col_spill = _run("columnar", ops, cuts, tmp, 4)
    assert col_obs == flat_obs
    assert shard_obs == flat_obs
    assert col_spill == flat_spill


@pytest.mark.parametrize("layout", ["flat", "sharded", "columnar"])
def test_since_seq_excludes_older_records(layout):
    """The delta-query watermark contract holds on every backend."""
    with tempfile.TemporaryDirectory() as tmp:
        store = _make(layout, Path(tmp) / "s.jsonl", None)
        _apply(layout, store, ("ingest", 0, ("S1",), 0), None, None, 0)
        seq = QueryEngine(store).flows_matching("S1").as_of_seq
        _apply(layout, store, ("ingest", 1, ("S1",), 0), None, None, 1)
        res = QueryEngine(store).flows_matching("S1", since_seq=seq)
        assert [s.flow for s in res.payload] == [flow_key(1)]


@pytest.mark.parametrize("layout", ["flat", "sharded", "columnar"])
def test_updated_record_reappears_in_the_next_delta(layout):
    """An update to an already-reported flow crosses the watermark."""
    with tempfile.TemporaryDirectory() as tmp:
        store = _make(layout, Path(tmp) / "s.jsonl", None)
        _apply(layout, store, ("ingest", 0, ("S1",), 0), None, None, 0)
        seq = QueryEngine(store).flows_matching("S1").as_of_seq
        _apply(layout, store, ("ingest", 0, ("S1",), 3), None, None, 1)
        res = QueryEngine(store).flows_matching("S1", since_seq=seq)
        assert [s.flow for s in res.payload] == [flow_key(0)]
        assert res.payload[0].packets == 2
