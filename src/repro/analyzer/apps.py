"""Debugging applications (§5).

Four diagnoses, one per §5 subsection.  Each takes the analyzer and an
alert (or a suspect switch for load imbalance) and returns a verdict
with the latency breakdown the paper plots:

* :func:`diagnose_contention` — §5.1 "too much traffic": who contended
  with the victim at the alerted switch, and was it priority-based or a
  microburst?  (Fig 7's four phases: detection, alert, pointer
  retrieval, diagnosis.)
* :func:`diagnose_red_lights` — §5.2: per-switch culprits along the
  victim's path; the victim must share ≥ 1 epoch with each culprit at
  the corresponding switch.
* :func:`diagnose_cascade` — §5.3: recursive re-examination — when a
  culprit has middle priority, walk *its* path to find who delayed it.
* :func:`diagnose_load_imbalance` — §5.4: flow-size distributions per
  egress interface of a suspect switch (Fig 8's diagnosis latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.epoch import EpochRange
from ..hostd.query import FlowSummary
from ..hostd.triggers import VictimAlert
from ..rpc.fabric import Breakdown
from ..simnet.packet import FlowKey
from .analyzer import Analyzer

#: Fig 7's detection phase: the 1 ms trigger window bounds it.
DETECTION_S = 1e-3


@dataclass
class Culprit:
    """One contending flow implicated in a diagnosis."""

    flow: FlowKey
    host: str                     # the end-host whose records identified it
    switch: str                   # where it contended with the victim
    priority: int
    bytes: int
    shared_epochs: Optional[EpochRange] = None


@dataclass
class Verdict:
    """Outcome of a diagnosis, with the measured latency breakdown."""

    problem: str
    victim: Optional[FlowKey]
    culprits: list[Culprit] = field(default_factory=list)
    breakdown: Breakdown = field(default_factory=Breakdown)
    hosts_consulted: list[str] = field(default_factory=list)
    narrative: str = ""
    cascade_chain: list[FlowKey] = field(default_factory=list)
    imbalanced: bool = False
    distribution: dict[str, list[int]] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        return self.breakdown.total


def _overlap(a: Optional[EpochRange],
             b: Optional[EpochRange]) -> Optional[EpochRange]:
    if a is None or b is None or not a.intersects(b):
        return None
    return EpochRange(max(a.lo, b.lo), min(a.hi, b.hi))


# ---------------------------------------------------------------------------
# §5.1 too much traffic
# ---------------------------------------------------------------------------

def diagnose_contention(analyzer: Analyzer, alert: VictimAlert, *,
                        prune: bool = True) -> Verdict:
    """Who contended with the victim, and was priority involved?"""
    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    per_switch, ptr_bd = analyzer.locate_relevant_hosts(alert, prune=prune)
    bd = bd.merged(ptr_bd)

    culprits: list[Culprit] = []
    consulted: set[str] = set()
    diag_bd = Breakdown()
    for entry in per_switch:
        hosts = [h for h in entry.hosts if h != alert.flow.dst]
        if not hosts:
            continue
        consulted.update(hosts)
        found, q_bd = analyzer.contending_flows(hosts, entry.switch,
                                                entry.epochs, alert)
        diag_bd = diag_bd.merged(q_bd)
        for host, summary in found:
            shared = _overlap(summary.epochs_at(entry.switch), entry.epochs)
            if shared is None:
                continue
            culprits.append(Culprit(
                flow=summary.flow, host=host, switch=entry.switch,
                priority=summary.priority, bytes=summary.bytes,
                shared_epochs=shared))
    bd.add("diagnosis", diag_bd.total)

    victim_prio = _victim_priority(analyzer, alert)
    priority_based = any(c.priority > victim_prio for c in culprits)
    problem = ("priority-contention" if priority_based
               else "microburst-contention")
    narrative = (
        f"{len(culprits)} flow(s) contended with {alert.flow.pretty()}; "
        + ("high-priority traffic starved the victim"
           if priority_based else
           "equal-priority burst overflowed the queue (microburst)"))
    return Verdict(problem=problem, victim=alert.flow, culprits=culprits,
                   breakdown=bd, hosts_consulted=sorted(consulted),
                   narrative=narrative)


def _victim_priority(analyzer: Analyzer, alert: VictimAlert) -> int:
    agent = analyzer.host_agents.get(alert.host)
    if agent is not None:
        rec = agent.store.get(alert.flow)
        if rec is not None:
            return rec.priority
    return 0


# ---------------------------------------------------------------------------
# §5.2 too many red lights
# ---------------------------------------------------------------------------

def diagnose_red_lights(analyzer: Analyzer,
                        alert: VictimAlert) -> Verdict:
    """Per-switch contention along the whole victim path.

    The §5.2 conclusion criterion: a culprit counts at a switch only if
    it shares at least one epochID with the victim there.
    """
    base = diagnose_contention(analyzer, alert)
    by_switch: dict[str, list[Culprit]] = {}
    for c in base.culprits:
        by_switch.setdefault(c.switch, []).append(c)
    multi = {sw: cs for sw, cs in by_switch.items() if cs}
    narrative = ("; ".join(
        f"at {sw}: " + ", ".join(c.flow.pretty() for c in cs)
        for sw, cs in sorted(multi.items()))
        or "no contention found on the path")
    return Verdict(problem="too-many-red-lights", victim=alert.flow,
                   culprits=base.culprits, breakdown=base.breakdown,
                   hosts_consulted=base.hosts_consulted,
                   narrative=narrative)


# ---------------------------------------------------------------------------
# §5.3 traffic cascades
# ---------------------------------------------------------------------------

def diagnose_cascade(analyzer: Analyzer, alert: VictimAlert, *,
                     max_depth: int = 4) -> Verdict:
    """Recursively walk culprit paths until the chain's head is found.

    §5.3: having found that middle-priority A-F collided with victim
    C-E, the analyzer "subsequently examines pointers from switches
    along the path of flow A-F in order to see whether or not the flow
    was affected by some other flows".
    """
    chain: list[FlowKey] = [alert.flow]
    culprits: list[Culprit] = []
    consulted: set[str] = set()
    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    current = alert
    current_prio = _victim_priority(analyzer, alert)
    for _ in range(max_depth):
        per_switch, ptr_bd = analyzer.locate_relevant_hosts(current)
        bd = bd.merged(ptr_bd)
        best: Optional[Culprit] = None
        stage_bd = Breakdown()
        for entry in per_switch:
            hosts = [h for h in entry.hosts if h != current.flow.dst]
            if not hosts:
                continue
            consulted.update(hosts)
            found, q_bd = analyzer.contending_flows(
                hosts, entry.switch, entry.epochs, current)
            stage_bd = stage_bd.merged(q_bd)
            for host, summary in found:
                shared = _overlap(summary.epochs_at(entry.switch),
                                  entry.epochs)
                if shared is None or summary.priority <= current_prio:
                    continue
                if summary.flow in chain:
                    continue
                cand = Culprit(flow=summary.flow, host=host,
                               switch=entry.switch,
                               priority=summary.priority,
                               bytes=summary.bytes, shared_epochs=shared)
                if best is None or cand.priority > best.priority:
                    best = cand
        bd.add("diagnosis", stage_bd.total)
        if best is None:
            break
        culprits.append(best)
        chain.append(best.flow)
        # climb: re-examine the culprit's own path via its host's record
        next_alert = _alert_for_flow(analyzer, best.flow, best.host,
                                     current.time)
        if next_alert is None:
            break
        current = next_alert
        current_prio = best.priority

    names = " <- ".join(f.pretty() for f in chain)
    return Verdict(problem="traffic-cascade", victim=alert.flow,
                   culprits=culprits, breakdown=bd,
                   hosts_consulted=sorted(consulted),
                   cascade_chain=chain,
                   narrative=f"cascade chain: {names}")


def _alert_for_flow(analyzer: Analyzer, flow: FlowKey, host: str,
                    t: float) -> Optional[VictimAlert]:
    """Synthesize an alert-shaped view of a non-victim flow's record."""
    agent = analyzer.host_agents.get(host)
    if agent is None:
        return None
    rec = agent.store.get(flow)
    if rec is None or not rec.switch_path:
        return None
    from ..hostd.triggers import alert_tuples_from_record
    return VictimAlert(flow=flow, host=host, time=t, kind="re-examination",
                       tuples=alert_tuples_from_record(rec))


# ---------------------------------------------------------------------------
# §5.4 load imbalance
# ---------------------------------------------------------------------------

def diagnose_load_imbalance(analyzer: Analyzer, switch: str, *,
                            epochs: EpochRange,
                            size_threshold: int = 1_000_000,
                            level: int = 1) -> Verdict:
    """Compare flow-size distributions across a switch's egress sides.

    Pulls the pointer covering the recent window (the paper fetches "the
    most recent 1 sec"), queries every implicated host for a per-egress
    flow-size distribution, and checks for a clean size separation.
    """
    bd = Breakdown()
    bd.add("pointer_retrieval", analyzer.rpc.pointer_pull_cost(1))
    hosts = analyzer.hosts_for(switch, epochs, level=level)
    results, q_bd = analyzer.consult_hosts(
        hosts,
        lambda agent: agent.query.flow_size_distribution(switch=switch,
                                                         epochs=epochs))
    bd.add("diagnosis", q_bd.total)

    merged: dict[str, list[int]] = {}
    for res in results.values():
        for egress, sizes in res.payload.items():
            merged.setdefault(egress, []).extend(sizes)

    imbalanced, narrative = _separation_verdict(merged, size_threshold)
    return Verdict(problem="load-imbalance", victim=None, breakdown=bd,
                   hosts_consulted=sorted(hosts), imbalanced=imbalanced,
                   distribution=merged, narrative=narrative)


def _separation_verdict(dist: dict[str, list[int]],
                        threshold: int) -> tuple[bool, str]:
    if len(dist) < 2:
        return False, "traffic uses fewer than two egress interfaces"
    small = [e for e, sizes in dist.items()
             if sizes and max(sizes) < threshold]
    large = [e for e, sizes in dist.items()
             if sizes and min(sizes) >= threshold]
    if small and large:
        return True, (
            f"clean separation: flows < {threshold} B exit via "
            f"{sorted(small)}, flows >= {threshold} B via {sorted(large)}")
    return False, "flow sizes mix across egress interfaces"
