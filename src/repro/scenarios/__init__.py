"""Reusable failure scenarios — paper figures and extended faults.

Each scenario is a registered plugin implementing the four-phase
protocol of :class:`repro.scenarios.base.Scenario` (build → run →
collect → diagnose).  The :data:`REGISTRY` is what ``repro.cli``'s
``list``/``run`` commands and the generated ``docs/SCENARIOS.md``
catalogue are driven from: registering a new scenario class is all it
takes to appear in both.

Scenario ↔ figure/fault map
---------------------------
=====================  =========================================
``contention``         Fig 2(a)/Fig 7 (aliases ``fig2a``, ``fig7``)
``microburst``         Fig 2(b) (alias ``fig2b``)
``red-lights``         Fig 3, §5.2 (alias ``fig3``)
``cascades``           Fig 4, §5.3 (alias ``fig4``)
``load-imbalance``     Fig 8, §5.4 (alias ``fig8``)
``incast``             N-to-1 synchronized fan-in collapse
``gray-failure``       silent per-flow drops (alias ``silent-drop``)
``polarization``       ECMP hash polarization (alias
                       ``ecmp-polarization``)
``link-flap``          periodic link churn driving reroutes
=====================  =========================================

The ``run_*_scenario`` functions remain as thin functional entry points
over the classes; examples, tests, and the benchmark harness share
them, guaranteeing the numbers in the benchmark results come from the
same code the test suite validates.
"""

from __future__ import annotations

from .base import (REGISTRY, Knob, Scenario, ScenarioError,
                   ScenarioRegistry, ScenarioResult, ScenarioSpec,
                   SwitchStats, register, run_scenario)
from .common import DEEP_BUFFER_BYTES, GBPS
from .contention import (ContentionResult, ContentionScenario,
                         MicroburstScenario, run_contention_scenario)
from .red_lights import (RedLightsResult, RedLightsScenario,
                         build_red_lights_network,
                         run_red_lights_scenario)
from .cascades import (CascadesResult, CascadesScenario,
                       build_cascades_network, run_cascades_scenario)
from .load_imbalance import (LoadImbalanceResult, LoadImbalanceScenario,
                             build_load_imbalance_network,
                             run_load_imbalance_scenario)
from .incast import IncastResult, IncastScenario
from .gray_failure import GrayFailureResult, GrayFailureScenario
from .polarization import PolarizationResult, PolarizationScenario
from .link_flap import LinkFlapResult, LinkFlapScenario
from .multi_fault import MultiFaultScenario
from .catalog import catalog_markdown

__all__ = [
    # registry / protocol
    "REGISTRY", "register", "run_scenario", "Scenario", "ScenarioError",
    "ScenarioRegistry", "ScenarioResult", "ScenarioSpec", "SwitchStats",
    "Knob", "catalog_markdown",
    # shared constants
    "DEEP_BUFFER_BYTES", "GBPS",
    # paper scenarios (classes + legacy functional entry points)
    "ContentionScenario", "MicroburstScenario", "ContentionResult",
    "run_contention_scenario",
    "RedLightsScenario", "RedLightsResult", "build_red_lights_network",
    "run_red_lights_scenario",
    "CascadesScenario", "CascadesResult", "build_cascades_network",
    "run_cascades_scenario",
    "LoadImbalanceScenario", "LoadImbalanceResult",
    "build_load_imbalance_network", "run_load_imbalance_scenario",
    # extended fault scenarios
    "IncastScenario", "IncastResult",
    "GrayFailureScenario", "GrayFailureResult",
    "PolarizationScenario", "PolarizationResult",
    "LinkFlapScenario", "LinkFlapResult",
    "MultiFaultScenario",
]
