"""Record-store backend registry (the ``record_backend`` knob).

The host agent stores flow records in one of several interchangeable
backends — the object-based :class:`~repro.hostd.records.FlowRecordStore`
(the equivalence reference), the source-hashed
:class:`~repro.hostd.sharded.ShardedRecordStore`, and the array-backed
:class:`~repro.hostd.columnar.ColumnarRecordStore`.  All of them expose
the same ingest/query/spill surface and return byte-identical query
payloads (the property suite in
``tests/property/test_columnar_equivalence.py`` is the proof), so which
one a deployment uses is a pure performance knob.

This module is the registry those deployments select from:

* :func:`register_backend` — decorator registering a factory under a
  name (``reprolint``'s registry-coverage rule checks every registering
  module is reachable from the package ``__init__``).
* :func:`make_store` — build a store by backend name; ``"auto"`` picks
  the historical default (sharded when ``record_shards > 1``, flat
  otherwise) unless a process-wide override is active.
* :func:`use_backend` / :func:`set_default_backend` — override what
  ``"auto"`` resolves to, so a test harness can run every scenario on a
  chosen backend without threading a knob through each scenario.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional

from .records import FlowRecordStore
from .sharded import DEFAULT_SHARDS, ShardedRecordStore

#: factory signature: (host_name, spill_path, max_records, record_shards)
BackendFactory = Callable[[str, Optional[Path], Optional[int], int], object]

_BACKENDS: dict[str, BackendFactory] = {}
_SUMMARIES: dict[str, str] = {}
_default_override: Optional[str] = None


def register_backend(
    name: str, *, summary: str
) -> Callable[[BackendFactory], BackendFactory]:
    """Register a store factory under ``name`` (decorator)."""

    def deco(factory: BackendFactory) -> BackendFactory:
        if name in _BACKENDS:
            raise ValueError(f"record backend {name!r} already registered")
        _BACKENDS[name] = factory
        _SUMMARIES[name] = summary
        return factory

    return deco


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (``"auto"`` is always valid too)."""
    return tuple(sorted(_BACKENDS))


def backend_summaries() -> dict[str, str]:
    """Name → one-line summary for docs/catalogue generation."""
    return {name: _SUMMARIES[name] for name in available_backends()}


def default_backend() -> Optional[str]:
    """The active ``"auto"`` override, or None for the historical default."""
    return _default_override


def set_default_backend(name: Optional[str]) -> None:
    """Override what ``"auto"`` resolves to, process-wide.

    ``None`` (or ``"auto"``) restores the historical default.  Scenario
    construction reads the override at build time, so flipping it
    between runs re-points every host agent with no per-scenario knob.
    """
    global _default_override
    if name is not None and name != "auto" and name not in _BACKENDS:
        raise ValueError(
            f"unknown record backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    _default_override = None if name == "auto" else name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scoped :func:`set_default_backend` (the equivalence-test harness)."""
    prev = _default_override
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(prev)


def resolve_backend(backend: str, *, record_shards: int = 1) -> str:
    """Resolve a knob value (possibly ``"auto"``) to a registered name."""
    if backend == "auto":
        if _default_override is not None:
            return _default_override
        return "sharded" if record_shards > 1 else "flat"
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown record backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return backend


def make_store(
    backend: str,
    host_name: str,
    *,
    spill_path: Optional[Path] = None,
    max_records: Optional[int] = None,
    record_shards: int = 1,
) -> object:
    """Build a record store by backend name (``"auto"`` allowed)."""
    name = resolve_backend(backend, record_shards=record_shards)
    return _BACKENDS[name](host_name, spill_path, max_records, record_shards)


@register_backend(
    "flat",
    summary="object-based FlowRecordStore — the equivalence reference",
)
def _flat_factory(
    host_name: str,
    spill_path: Optional[Path],
    max_records: Optional[int],
    record_shards: int,
) -> object:
    return FlowRecordStore(
        host_name, spill_path=spill_path, max_records=max_records
    )


@register_backend(
    "sharded",
    summary="source-hashed FlowRecordStore shards, merged queries",
)
def _sharded_factory(
    host_name: str,
    spill_path: Optional[Path],
    max_records: Optional[int],
    record_shards: int,
) -> object:
    n_shards = record_shards if record_shards > 1 else DEFAULT_SHARDS
    return ShardedRecordStore(
        host_name,
        spill_path=spill_path,
        max_records=max_records,
        n_shards=n_shards,
    )
