"""Multi-fault runs: compose registered faults, attribute each one.

The paper's diagnosis walkthroughs assume one clean fault at a time;
real networks break in several places at once.  This scenario composes
any combination of the *diagnosable* registered faults — silent-drop,
ecmp-polarization, link-flap, link-down — through one
:class:`~repro.faults.plan.FaultPlan`, each fault bound to its own
*site* (a disjoint source-leaf → destination-leaf pair with its own
flows) of a shared leaf-spine fabric.  The analyzer then has to
attribute every fault independently: the right problem *and* the right
suspect per site, with the other sites' disturbances live in the same
simulation and the spine tier shared by all of them.

The ``faults`` knob is a ``+``-separated composition
(``silent-drop+ecmp-polarization``); the sweep ``faults=`` axis varies
it, so nightly runs chart diagnosis accuracy as a function of fault
count and mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import (Verdict, diagnose_gray_failure,
                             diagnose_link_flap, diagnose_polarization)
from ..core.epoch import EpochRange
from ..faults import FaultContext
from ..simnet.packet import PRIO_LOW, FlowKey
from ..simnet.topology import build_leaf_spine
from ..simnet.traffic import UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioError, ScenarioSpec, register
from .common import (directory_knobs, fault_knobs, install_fault_knobs,
                     sport_for_side)


@dataclass
class _Site:
    """One fault's private corner of the shared fabric."""

    index: int
    kind: str
    src_leaf: str
    dst_leaf: str
    src_host: str
    dst_host: str
    sport_base: int
    flows: list[FlowKey] = field(default_factory=list)
    #: silent-drop: the dropped slice; link faults: the side-0 flows
    affected: list[FlowKey] = field(default_factory=list)
    #: the element a correct verdict must name
    expected_suspect: str = ""


class _SlotBase:
    """How one fault kind installs itself on a site and is diagnosed."""

    problem: str

    def launch_flows(self, scn: "MultiFaultScenario", site: _Site, *,
                     alternate_sides: bool) -> None:
        """``slot_flows`` CBR flows src_host→dst_host for this site.

        With ``alternate_sides`` the source ports are chosen so the
        healthy ECMP hash splits the flows evenly across the two
        spines (what the link and polarization slots need for a
        provable baseline); otherwise ports are simply consecutive.
        """
        p = scn.p
        net = scn.network
        rate = p["rate_mbps"] * 1e6
        sport = site.sport_base
        for i in range(p["slot_flows"]):
            if alternate_sides:
                sport = sport_for_side(site.src_host, site.dst_host,
                                       i % 2, start=sport)
            UdpSink(net.hosts[site.dst_host], sport)
            src = UdpCbrSource(net.sim, net.hosts[site.src_host],
                               site.dst_host, sport=sport, dport=sport,
                               rate_bps=rate, packet_size=1000,
                               priority=PRIO_LOW, start=0.001,
                               duration=p["duration"] - 0.002)
            site.flows.append(src.flow)
            if i % 2 == 0:
                site.affected.append(src.flow)
            sport += 1

    def last_epoch(self, scn: "MultiFaultScenario", site: _Site) -> int:
        clock = scn.deployment.datapaths[site.src_leaf].clock
        return clock.epoch_of(scn.network.sim.now)

    def install(self, scn: "MultiFaultScenario", site: _Site) -> None:
        raise NotImplementedError

    def diagnose(self, scn: "MultiFaultScenario", site: _Site) -> Verdict:
        raise NotImplementedError


class _SilentDropSlot(_SlotBase):
    problem = "gray-failure"

    def install(self, scn, site):
        # drop localization is destination-granular (the cut is "which
        # hops stopped naming the destination"), so the dropped slice
        # gets its own destination host behind the faulty leaf while
        # the healthy slice keeps the site's other one — the defining
        # gray-failure asymmetry, per site
        p = scn.p
        net = scn.network
        rate = p["rate_mbps"] * 1e6
        healthy_dst = site.dst_host.replace("_0", "_1")
        for i in range(p["slot_flows"]):
            dst = site.dst_host if i % 2 == 0 else healthy_dst
            sport = site.sport_base + i
            UdpSink(net.hosts[dst], sport)
            src = UdpCbrSource(net.sim, net.hosts[site.src_host], dst,
                               sport=sport, dport=sport, rate_bps=rate,
                               packet_size=1000, priority=PRIO_LOW,
                               start=0.001,
                               duration=p["duration"] - 0.002)
            site.flows.append(src.flow)
            if i % 2 == 0:
                site.affected.append(src.flow)
        scn.add_fault("silent-drop", switch=site.dst_leaf,
                      flows=tuple(site.affected),
                      start=scn.p["fault_time"])
        site.expected_suspect = site.dst_leaf

    def diagnose(self, scn, site):
        clock = scn.deployment.datapaths[site.src_leaf].clock
        fault_epoch = clock.epoch_of(scn.p["fault_time"])
        if scn.p["fault_time"] > clock.epoch_start(fault_epoch):
            fault_epoch += 1
        silence = EpochRange(fault_epoch,
                             clock.epoch_of(scn.network.sim.now))
        return diagnose_gray_failure(scn.deployment.analyzer,
                                     site.affected[0],
                                     silence_epochs=silence)


class _PolarizationSlot(_SlotBase):
    problem = "ecmp-polarization"

    def install(self, scn, site):
        self.launch_flows(scn, site, alternate_sides=True)
        fault = scn.add_fault("ecmp-polarization",
                              switch=site.src_leaf)
        # every flow shares the (src, dst) pair, so the port-blind
        # hash sends all of them to one spine — which one is resolved
        # against the switch's actual candidate order, not assumed
        site.expected_suspect = fault.expected_egress(
            FaultContext(scn.network), site.flows[0])

    def diagnose(self, scn, site):
        return diagnose_polarization(
            scn.deployment.analyzer, site.src_leaf,
            epochs=EpochRange(0, self.last_epoch(scn, site)))


class _LinkChurnSlot(_SlotBase):
    """Shared by the flap and one-shot-down slots (same telemetry
    signature: side-0 flows detour to the surviving spine)."""

    problem = "link-flap"
    fault_name = "link-flap"

    def install(self, scn, site):
        self.launch_flows(scn, site, alternate_sides=True)
        params = dict(a=site.src_leaf, b="spine0",
                      start=scn.p["fault_time"],
                      reconverge_delay=0.002)
        if self.fault_name == "link-flap":
            params.update(down_for=0.006, up_for=0.010)
        scn.add_fault(self.fault_name, **params)
        site.expected_suspect = f"{site.src_leaf}-spine0"

    def diagnose(self, scn, site):
        return diagnose_link_flap(
            scn.deployment.analyzer, site.src_leaf,
            epochs=EpochRange(0, self.last_epoch(scn, site)))


class _LinkDownSlot(_LinkChurnSlot):
    fault_name = "link-down"


_SLOTS = {
    "silent-drop": _SilentDropSlot(),
    "ecmp-polarization": _PolarizationSlot(),
    "link-flap": _LinkChurnSlot(),
    "link-down": _LinkDownSlot(),
}


@register
class MultiFaultScenario(Scenario):
    """N concurrent faults on disjoint sites of one leaf-spine fabric.

    Site *i* owns leaves ``leaf{2i}``/``leaf{2i+1}`` and the host pair
    behind them; the spine tier is shared, so the faults disturb a
    common substrate while their evidence stays attributable.  The
    diagnose phase runs each fault's analyzer app and a final summary
    verdict (``problem="multi-fault"``) is produced only when *every*
    fault was attributed with the right suspect — which is what the
    sweep counts as a correct point.
    """

    spec = ScenarioSpec(
        name="multi-fault",
        summary="compose registered faults on disjoint sites and check "
                "the analyzer attributes each independently",
        paper_ref="beyond §5: concurrent-fault attribution (ROADMAP "
                  "multi-fault runs; gray-failure studies, PAPERS.md)",
        expected_diagnosis="multi-fault (every composed fault "
                           "attributed: right problem + right suspect "
                           "per site)",
        knobs={
            "faults": Knob("silent-drop+ecmp-polarization",
                           "the composition: '+'-separated registered "
                           "fault names (silent-drop, "
                           "ecmp-polarization, link-flap, link-down)"),
            "slot_flows": Knob(8, "flows per fault site"),
            "duration": Knob(0.060, "total run time (s)"),
            "fault_time": Knob(0.020, "when timed faults inject (s)"),
            "rate_mbps": Knob(10.0, "per-flow CBR rate (Mbit/s)"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            **fault_knobs(),
            **directory_knobs(),
        },
        smoke_knobs={"slot_flows": 4, "duration": 0.045},
        faults=("silent-drop", "ecmp-polarization", "link-flap",
                "link-down"),
    )

    def build(self) -> None:
        p = self.p
        kinds = [k.strip() for k in p["faults"].split("+") if k.strip()]
        if not kinds:
            raise ScenarioError("faults must name at least one fault")
        unknown = [k for k in kinds if k not in _SLOTS]
        if unknown:
            raise ScenarioError(
                f"unsupported fault(s) {unknown}; composable: "
                f"{', '.join(sorted(_SLOTS))}")
        net = build_leaf_spine(n_leaves=2 * len(kinds), n_spines=2,
                               hosts_per_leaf=2)
        from ..deployment import SwitchPointerDeployment
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"],
            directory_backend=p["directory_backend"],
            directory_bits=p["directory_bits"],
            directory_hashes=p["directory_hashes"])
        self.network, self.deployment = net, deploy

        self.sites: list[_Site] = []
        for i, kind in enumerate(kinds):
            site = _Site(
                index=i, kind=kind,
                src_leaf=f"leaf{2 * i}", dst_leaf=f"leaf{2 * i + 1}",
                src_host=f"h{2 * i}_0", dst_host=f"h{2 * i + 1}_0",
                sport_base=9000 + 1000 * i)
            _SLOTS[kind].install(self, site)
            self.sites.append(site)

        # ambient stressor knobs; every source leaf is its site's
        # CherryPick embedder, so partial deployment spares them all
        install_fault_knobs(
            self, extra_spare=tuple(s.src_leaf for s in self.sites))

    def run(self) -> None:
        # the plan's finalize() stops any flapper once this returns
        self.network.run(until=self.p["duration"])

    def collect(self) -> dict:
        net = self.network
        gray = sum(sw.gray_drops for sw in net.switches.values())
        down = sum(link.down_drops for link in net.links)
        return {
            "fault_kinds": [s.kind for s in self.sites],
            "gray_drops": gray,
            "down_drops": down,
            "flow_count": sum(len(s.flows) for s in self.sites),
        }

    def diagnose(self) -> list[Verdict]:
        verdicts: list[Verdict] = []
        attributed: list[bool] = []
        for site in self.sites:
            slot = _SLOTS[site.kind]
            v = slot.diagnose(self, site)
            verdicts.append(v)
            attributed.append(v.problem == slot.problem
                              and v.suspect == site.expected_suspect)
        parts = ", ".join(
            f"{s.kind}@site{s.index}: "
            + ("attributed" if ok else "MISSED")
            for s, ok in zip(self.sites, attributed))
        if all(attributed):
            # the roll-up inherits the evidence label: it stands on the
            # per-site verdicts, which stand on the directory answers
            verdicts.append(Verdict(
                problem="multi-fault", victim=None,
                approx=self.deployment.analyzer.directory_approx,
                narrative=(f"all {len(self.sites)} concurrent fault(s) "
                           f"attributed independently — {parts}")))
        return verdicts


register_sweep(SweepSpec(
    scenario="multi-fault",
    summary="diagnosis accuracy as a function of concurrent fault "
            "count and mix (every fault must be attributed)",
    expect_problem="multi-fault",
    axes={
        "faults": "faults",
        "victims": "slot_flows",
        "alpha_ms": "alpha_ms",
    },
    default_grid={"faults": ("silent-drop",
                             "silent-drop+ecmp-polarization",
                             "silent-drop+link-flap",
                             "ecmp-polarization+link-down")},
    nightly_grid={"faults": ("silent-drop+ecmp-polarization",
                             "silent-drop+link-flap")},
))
