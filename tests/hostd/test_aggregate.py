"""Tests for the analyzer-side aggregation queries."""

import pytest

from repro.core.epoch import EpochRange
from repro.hostd.aggregate import (bytes_per_switch, contention_groups,
                                   epoch_activity, flows_sharing_epoch,
                                   heavy_hitters_per_link,
                                   traffic_matrix)
from repro.hostd.query import FlowSummary, QueryResult
from repro.simnet.packet import FlowKey, PROTO_UDP


def summary(i, nbytes, path, ranges, bbe=None):
    return FlowSummary(
        flow=FlowKey(f"s{i}", f"d{i}", 10 + i, 20 + i, PROTO_UDP),
        bytes=nbytes, packets=nbytes // 100, priority=0,
        switch_path=list(path),
        epoch_ranges={sw: r for sw, r in ranges.items()},
        bytes_by_epoch=bbe or {})


@pytest.fixture
def results():
    return {
        "d0": QueryResult(payload=[
            summary(0, 5000, ("S1", "S2"),
                    {"S1": (0, 1), "S2": (0, 2)}, {0: 3000, 1: 2000})]),
        "d1": QueryResult(payload=[
            summary(1, 9000, ("S1", "S3"),
                    {"S1": (1, 2), "S3": (2, 3)}, {1: 9000})]),
        "d2": QueryResult(payload=[
            summary(2, 1000, ("S2",), {"S2": (8, 9)}, {8: 1000})]),
    }


class TestTrafficMatrix:
    def test_pairs_and_bytes(self, results):
        matrix = traffic_matrix(results)
        assert matrix[("s0", "d0")] == 5000
        assert matrix[("s1", "d1")] == 9000
        assert len(matrix) == 3

    def test_accumulates_same_pair(self):
        res = {"d0": QueryResult(payload=[
            summary(0, 100, ("S1",), {"S1": (0, 0)}),
        ]), "x": QueryResult(payload=[
            summary(0, 200, ("S1",), {"S1": (1, 1)})])}
        assert traffic_matrix(res)[("s0", "d0")] == 300


class TestBytesPerSwitch:
    def test_every_hop_charged(self, results):
        per = bytes_per_switch(results)
        assert per["S1"] == 14_000
        assert per["S2"] == 6_000
        assert per["S3"] == 9_000


class TestHeavyHitters:
    def test_top_per_link(self, results):
        hh = heavy_hitters_per_link(results, top=1)
        assert hh[("S1", "S2")][0].bytes == 5000
        assert hh[("S1", "S3")][0].bytes == 9000
        # last hop toward destination host is a link too
        assert ("S2", "d0") in hh

    def test_top_k_cut(self):
        res = {"x": QueryResult(payload=[
            summary(i, 1000 * (i + 1), ("S1", "S2"),
                    {"S1": (0, 0), "S2": (0, 0)}) for i in range(5)])}
        hh = heavy_hitters_per_link(res, top=2)
        sizes = [s.bytes for s in hh[("S1", "S2")]]
        assert sizes == [5000, 4000]


class TestEpochActivity:
    def test_sums_per_epoch(self, results):
        act = epoch_activity(results)
        assert act[0] == 3000
        assert act[1] == 11_000
        assert act[8] == 1000

    def test_epoch_filter(self, results):
        act = epoch_activity(results, epochs=EpochRange(0, 1))
        assert set(act) == {0, 1}


class TestSharingAndGroups:
    def test_flows_sharing_epoch(self, results):
        both = flows_sharing_epoch(results, "S1", 1)
        assert len(both) == 2
        only0 = flows_sharing_epoch(results, "S1", 0)
        assert [s.flow.src for s in only0] == ["s0"]

    def test_contention_groups_split_on_gap(self, results):
        groups = contention_groups(results, "S2")
        # S2: flow0 epochs 0-2, flow2 epochs 8-9 -> two separate events
        assert len(groups) == 2
        assert {g[0].src for g in groups} == {"s0", "s2"}

    def test_contention_groups_merge_overlaps(self):
        res = {"x": QueryResult(payload=[
            summary(0, 1, ("S1",), {"S1": (0, 3)}),
            summary(1, 1, ("S1",), {"S1": (2, 5)}),
            summary(2, 1, ("S1",), {"S1": (4, 6)})])}
        groups = contention_groups(res, "S1")
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_no_flows_no_groups(self):
        assert contention_groups({}, "S1") == []
