"""Render the rule registry as the docs/LINTING.md catalogue.

Same single-source-of-truth idiom as the scenario/fault/sweep
catalogues: ``python -m tools.reprolint --list`` and the generated page
both read :data:`tools.reprolint.RULES`, so the documentation cannot
drift from the rules that actually run.
"""

from __future__ import annotations

from . import RULES, RuleSpec
from . import rules as _rules  # noqa: F401  (registers the catalogue)

_HEADER = """\
# Linting: the reprolint rule catalogue

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: python tools/gen_lint_docs.py -->

`tools/reprolint` is an AST-based checker for invariants no stock
linter sees: determinism (simulated time, seeded RNG streams), the
registry contracts scenarios/faults/sweeps share, and the sweep-report
schema.  It never imports the code it checks.

```console
python -m tools.reprolint                # lint the tree (src/)
python -m tools.reprolint --list         # this catalogue, from the CLI
python -m tools.reprolint --rule NAME    # one rule only
python -m tools.reprolint --fix-baseline # accept current violations
```

CI runs it as a blocking `static-analysis` job next to mypy over the
typed core; the tier-1 suite repeats the whole-tree run
(`tests/reprolint/test_tree_clean.py`) so a violation fails in seconds
locally.

Two escape hatches, both deliberately loud:

- **pragma** — `# reprolint: allow[<token>]` on the offending line,
  only for rules that declare a token (see each rule below);
- **baseline** — `.reprolint-baseline.json`, written by
  `--fix-baseline`, a ratchet for onboarding a new rule to a tree that
  does not pass it yet.  Stale entries fail the run, so it only ever
  shrinks; the committed tree carries none (enforced by a tier-1 test).

## Rules
"""


def _spec_markdown(spec: RuleSpec) -> str:
    lines = [f"### `{spec.name}`", "", spec.summary, ""]
    lines.append(f"- **Scope:** {spec.scope}")
    if spec.pragma:
        lines.append(
            f"- **Pragma:** `# reprolint: allow[{spec.pragma}]` at "
            f"declared exception sites"
        )
    else:
        lines.append("- **Pragma:** none (no inline exceptions)")
    lines.append(f"- **Why:** {spec.rationale}")
    if spec.fix:
        lines.append(f"- **Fix:** {spec.fix}")
    lines.append("")
    return "\n".join(lines)


def rules_markdown() -> str:
    parts = [_HEADER]
    for spec in RULES.specs():
        parts.append(_spec_markdown(spec))
    parts.append(
        "## Adding a rule\n\n"
        "Subclass `Rule` in `tools/reprolint/rules.py`, give it a\n"
        "`RuleSpec`, and decorate with `@register_rule` — the CLI,\n"
        "this page, and the fixture-coverage test pick it up from the\n"
        "registry.  Commit one violating and one clean fixture tree\n"
        "under `tests/reprolint/fixtures/<rule>/` (the\n"
        "`test_every_rule_has_fixture_coverage` test fails until you\n"
        "do), then regenerate this page:\n"
        "`python tools/gen_lint_docs.py`.\n"
    )
    return "\n".join(parts)
