"""Directory-backend registry: contract enforcement and resolution."""

import pytest

from repro.core.pointer import PointerSet
from repro.directory import (
    DirectoryError,
    available_directories,
    decode_directory_set,
    default_directory_backend,
    directory_memory_notes,
    directory_summaries,
    make_directory_set,
    register_directory,
    resolve_directory,
    set_default_directory_backend,
    use_directory_backend,
)


class TestRegistry:
    def test_ships_exact_bloom_lsh(self):
        assert set(available_directories()) >= {"exact", "bloom", "lsh"}

    def test_every_backend_has_summary_and_memory_note(self):
        names = set(available_directories())
        assert set(directory_summaries()) == names
        assert set(directory_memory_notes()) == names
        assert all(directory_summaries().values())
        assert all(directory_memory_notes().values())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DirectoryError, match="already registered"):
            register_directory(
                "exact", summary="dup", memory_note="dup"
            )(lambda n, bits, hashes: PointerSet(n))

    def test_lossy_backend_rejected_at_registration(self):
        """A sketch that can drop a true member never joins the registry."""

        class DroppySet(PointerSet):
            backend_name = "droppy"

            def set_slot(self, slot: int) -> None:
                if slot % 2 == 0:  # silently loses even slots
                    return
                super().set_slot(slot)

        with pytest.raises(DirectoryError, match="dropped true member"):
            register_directory(
                "droppy", summary="drops members", memory_note="n/a"
            )(lambda n, bits, hashes: DroppySet(n))
        assert "droppy" not in available_directories()

    def test_non_roundtripping_backend_rejected(self):
        class ForgetfulSet(PointerSet):
            backend_name = "forgetful"

            def load(self, blob: bytes) -> None:
                super().load(blob)
                # superset-safe (adds a bit) but not a faithful round-trip
                self.set_slot(self.n_slots - 2)

        with pytest.raises(DirectoryError, match="round-trip"):
            register_directory(
                "forgetful", summary="lossy serialize", memory_note="n/a"
            )(lambda n, bits, hashes: ForgetfulSet(n))
        assert "forgetful" not in available_directories()


class TestResolution:
    def test_auto_defaults_to_exact(self):
        assert default_directory_backend() is None
        assert resolve_directory("auto") == "exact"

    def test_unknown_backend_raises(self):
        with pytest.raises(DirectoryError, match="unknown directory"):
            resolve_directory("cuckoo")
        with pytest.raises(DirectoryError, match="unknown directory"):
            make_directory_set("cuckoo", 64)
        with pytest.raises(DirectoryError, match="unknown directory"):
            set_default_directory_backend("cuckoo")

    def test_override_redirects_auto(self):
        with use_directory_backend("bloom"):
            assert default_directory_backend() == "bloom"
            assert resolve_directory("auto") == "bloom"
            assert make_directory_set("auto", 64).backend_name == "bloom"
            # explicit names are never overridden
            assert resolve_directory("exact") == "exact"
        assert default_directory_backend() is None
        assert resolve_directory("auto") == "exact"

    def test_override_nests_and_restores(self):
        with use_directory_backend("bloom"):
            with use_directory_backend("lsh"):
                assert resolve_directory("auto") == "lsh"
            assert resolve_directory("auto") == "bloom"
        assert resolve_directory("auto") == "exact"

    def test_auto_keyword_clears_override(self):
        set_default_directory_backend("bloom")
        try:
            set_default_directory_backend("auto")
            assert default_directory_backend() is None
        finally:
            set_default_directory_backend(None)


class TestBackendSurface:
    @pytest.mark.parametrize("backend", ["exact", "bloom", "lsh"])
    def test_serialize_roundtrip(self, backend):
        ds = make_directory_set(backend, 64, bits=24, hashes=2)
        for slot in (0, 7, 31, 63):
            ds.set_slot(slot)
        dup = decode_directory_set(backend, 64, ds.to_bytes(),
                                   bits=24, hashes=2)
        assert dup.to_bytes() == ds.to_bytes()
        assert all(dup.test_slot(s) for s in (0, 7, 31, 63))

    def test_saturating_bloom_is_bit_identical_to_exact(self):
        """bits=0 sizes the filter at one bit per slot: exact-equivalent."""
        exact = make_directory_set("exact", 128)
        bloom = make_directory_set("bloom", 128, bits=0)
        for slot in (0, 1, 17, 64, 127):
            exact.set_slot(slot)
            bloom.set_slot(slot)
        assert bloom.to_bytes() == exact.to_bytes()
        assert [s for s in range(128) if bloom.test_slot(s)] == \
            [s for s in range(128) if exact.test_slot(s)]
        assert bloom.estimate() == exact.estimate() == 5

    def test_sub_saturation_budget_is_the_modeled_cost(self):
        bloom = make_directory_set("bloom", 65536, bits=24, hashes=2)
        assert bloom.size_bits == 24
        assert bloom.sketch_params == (24, 2)
        # the shadow truth bitmap is measurement-only: not in the cost
        for slot in range(100):
            bloom.set_slot(slot)
        assert bloom.size_bits == 24

    def test_tight_budget_floods_but_never_drops(self):
        bloom = make_directory_set("bloom", 256, bits=8, hashes=4)
        members = set(range(0, 256, 17))
        for slot in members:
            bloom.set_slot(slot)
        assert all(bloom.test_slot(s) for s in members)
        # 8 bits for 16 members must flood — that is the memory trade
        positives = sum(bloom.test_slot(s) for s in range(256))
        assert positives > len(members)
