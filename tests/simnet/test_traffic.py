"""Unit tests for traffic generators."""

import pytest

from repro.simnet.packet import PRIO_HIGH
from repro.simnet.topology import Network
from repro.simnet.traffic import (TcpBulkTransfer, TcpTimedFlow,
                                  UdpCbrSource, UdpSink,
                                  schedule_burst_batches)


def star(n=4):
    net = Network()
    s = net.add_switch("S")
    for i in range(n):
        h = net.add_host(f"h{i}")
        net.connect(h, s)
    net.compute_routes()
    return net


class TestUdpCbr:
    def test_packet_count_matches_rate_and_duration(self):
        net = star(2)
        sink = UdpSink(net.hosts["h1"], 7)
        # 1 Gbps, 1250 B packets -> 10 µs spacing -> 100 packets per ms
        UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                     rate_bps=1e9, packet_size=1250, start=0.0,
                     duration=0.001)
        net.run()
        assert sink.packets == 100
        assert sink.bytes == 100 * 1250

    def test_source_respects_start_time(self):
        net = star(2)
        arrivals = []
        UdpSink(net.hosts["h1"], 7,
                on_packet=lambda p, t: arrivals.append(t))
        UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                     rate_bps=1e9, start=0.005, duration=0.001)
        net.run()
        assert min(arrivals) >= 0.005

    def test_priority_applied(self):
        net = star(2)
        prios = []
        UdpSink(net.hosts["h1"], 7,
                on_packet=lambda p, t: prios.append(p.priority))
        UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                     rate_bps=1e8, priority=PRIO_HIGH, duration=0.001)
        net.run()
        assert prios and set(prios) == {PRIO_HIGH}

    def test_invalid_parameters(self):
        net = star(2)
        with pytest.raises(ValueError):
            UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                         rate_bps=0, duration=0.001)
        with pytest.raises(ValueError):
            UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                         rate_bps=1e9, duration=0)

    def test_half_rate_spacing(self):
        net = star(2)
        arrivals = []
        UdpSink(net.hosts["h1"], 7,
                on_packet=lambda p, t: arrivals.append(t))
        UdpCbrSource(net.sim, net.hosts["h0"], "h1", sport=7, dport=7,
                     rate_bps=5e8, packet_size=1250, duration=0.001)
        net.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert gaps and all(g == pytest.approx(20e-6) for g in gaps)


class TestBurstBatches:
    def test_batches_start_at_gaps(self):
        net = star(6)
        seen = {}
        for i in (1, 2):
            UdpSink(net.hosts[f"h{i}"], 7000,
                    on_packet=lambda p, t: seen.setdefault(p.flow.sport,
                                                           t))
            UdpSink(net.hosts[f"h{i}"], 7001,
                    on_packet=lambda p, t: seen.setdefault(p.flow.sport,
                                                           t))
        senders = [net.hosts["h3"], net.hosts["h4"]]
        receivers = ["h1", "h2"]
        plans = schedule_burst_batches(
            net.sim, senders, receivers, flow_counts=[1, 2],
            first_start=0.010, gap=0.015)
        net.run()
        assert plans[0].start == pytest.approx(0.010)
        assert plans[1].start == pytest.approx(0.025)
        assert len(plans[0].sources) == 1
        assert len(plans[1].sources) == 2

    def test_insufficient_hosts_rejected(self):
        net = star(3)
        with pytest.raises(ValueError):
            schedule_burst_batches(net.sim, [net.hosts["h0"]], ["h1"],
                                   flow_counts=[2], first_start=0.0)

    def test_distinct_source_destination_pairs(self):
        net = star(8)
        flows = set()
        for i in range(1, 4):
            UdpSink(net.hosts[f"h{i}"], 7000,
                    on_packet=lambda p, t: flows.add(p.flow))
        senders = [net.hosts[f"h{i}"] for i in range(4, 7)]
        receivers = [f"h{i}" for i in range(1, 4)]
        schedule_burst_batches(net.sim, senders, receivers,
                               flow_counts=[3], first_start=0.0)
        net.run()
        assert len(flows) == 3
        assert len({f.src for f in flows}) == 3
        assert len({f.dst for f in flows}) == 3


class TestTcpApps:
    def test_bulk_transfer_completes(self):
        net = star(2)
        xfer = TcpBulkTransfer(net.sim, net.hosts["h0"], net.hosts["h1"],
                               nbytes=200_000, sport=1, dport=2)
        net.run(until=1.0)
        assert xfer.completed_at is not None
        assert xfer.receiver.rcv_next == 200_000

    def test_timed_flow_stops_at_duration(self):
        net = star(2)
        flow = TcpTimedFlow(net.sim, net.hosts["h0"], net.hosts["h1"],
                            duration=0.010, sport=1, dport=2)
        net.run(until=0.050)
        # sender stopped: bytes no longer growing
        sent = flow.sender.snd_next
        net.run(until=0.100)
        assert flow.sender.snd_next == sent
        # roughly 10 ms at ~1 Gbps
        assert 500_000 < sent < 1_400_000

    def test_payload_callback_invoked(self):
        net = star(2)
        got = []
        TcpBulkTransfer(net.sim, net.hosts["h0"], net.hosts["h1"],
                        nbytes=50_000, sport=1, dport=2,
                        on_payload=lambda p, t: got.append(p))
        net.run(until=1.0)
        assert sum(p.payload_bytes for p in got) == 50_000
