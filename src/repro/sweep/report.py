"""Machine-readable sweep results: :class:`SweepReport` and its schema.

One sweep run produces one JSON document (written under ``results/``)
that CI can archive and diff run-over-run: per-point wall time, peak
records, and diagnosis correctness, plus enough identity (scenario,
grid, seeds, knobs) to reproduce any point as a single run.

The schema is versioned through the ``schema`` field and checked by
:func:`validate_report` — a hand-rolled structural validator (no
third-party schema dependency) used by the CLI on write, by the
integration tests, and by ``tools/check_bench_regression.py`` before it
trusts a document's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

SCHEMA = "switchpointer.sweep-report/v3"

#: required per-point fields → allowed JSON types
_POINT_FIELDS: dict[str, tuple[type, ...]] = {
    "index": (int,),
    "params": (dict,),
    "knobs": (dict,),
    "seed": (int,),
    "ok": (bool,),
    "diagnosis_ok": (bool,),
    "problems": (list,),
    "suspects": (list,),
    "wall_time_s": (int, float),
    "phase_s": (dict,),
    "sim_time_s": (int, float),
    "diagnosis_latency_sim_s": (int, float),
    "freshness": (int,),
    "flow_count": (int,),
    "peak_records": (int,),
    "total_records": (int,),
    "evicted_records": (int,),
    "ingest_records_per_s": (int, float),
    "measurements": (dict,),
    "error": (str, type(None)),
}

_TOP_FIELDS: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "sweep": (str,),
    "scenario": (str,),
    "expect_problem": (str,),
    "base_seed": (int,),
    "workers": (int,),
    "grid": (dict,),
    "points": (list,),
    "summary": (dict,),
}


@dataclass
class PointResult:
    """Outcome of one grid point (one scenario execution)."""

    index: int
    params: dict[str, Any]
    knobs: dict[str, Any]
    seed: int
    diagnosis_ok: bool = False
    problems: list[str] = field(default_factory=list)
    suspects: list[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    phase_s: dict[str, float] = field(default_factory=dict)
    sim_time_s: float = 0.0
    diagnosis_latency_sim_s: float = 0.0
    freshness: int = 0
    flow_count: int = 0
    peak_records: int = 0
    total_records: int = 0
    evicted_records: int = 0
    ingest_records_per_s: float = 0.0
    measurements: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Point verdict: ran to completion and diagnosed correctly."""
        return self.error is None and self.diagnosis_ok

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "params": dict(self.params),
            "knobs": dict(self.knobs),
            "seed": self.seed,
            "ok": self.ok,
            "diagnosis_ok": self.diagnosis_ok,
            "problems": list(self.problems),
            "suspects": list(self.suspects),
            "wall_time_s": round(self.wall_time_s, 6),
            "phase_s": {k: round(v, 6) for k, v in self.phase_s.items()},
            "sim_time_s": round(self.sim_time_s, 9),
            "diagnosis_latency_sim_s": round(self.diagnosis_latency_sim_s, 9),
            "freshness": self.freshness,
            "flow_count": self.flow_count,
            "peak_records": self.peak_records,
            "total_records": self.total_records,
            "evicted_records": self.evicted_records,
            "ingest_records_per_s": round(self.ingest_records_per_s, 3),
            "measurements": dict(self.measurements),
            "error": self.error,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "PointResult":
        return cls(
            index=doc["index"],
            params=dict(doc["params"]),
            knobs=dict(doc["knobs"]),
            seed=doc["seed"],
            diagnosis_ok=doc["diagnosis_ok"],
            problems=list(doc["problems"]),
            suspects=list(doc["suspects"]),
            wall_time_s=doc["wall_time_s"],
            phase_s=dict(doc["phase_s"]),
            sim_time_s=doc["sim_time_s"],
            diagnosis_latency_sim_s=doc["diagnosis_latency_sim_s"],
            freshness=doc["freshness"],
            flow_count=doc["flow_count"],
            peak_records=doc["peak_records"],
            total_records=doc["total_records"],
            evicted_records=doc["evicted_records"],
            ingest_records_per_s=doc["ingest_records_per_s"],
            measurements=dict(doc["measurements"]),
            error=doc["error"],
        )


@dataclass
class SweepReport:
    """Everything one sweep run produced, JSON-serializable.

    ``sweep`` is the registry name the report came from; ``scenario``
    the scenario it executed.  They differ when several sweeps exercise
    the same scenario (e.g. ``incast`` vs ``incast-scale``).
    """

    sweep: str
    scenario: str
    expect_problem: str
    base_seed: int
    workers: int
    grid: dict[str, list[Any]]
    points: list[PointResult] = field(default_factory=list)
    wall_time_s: float = 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "points": len(self.points),
            "ok": sum(1 for p in self.points if p.ok),
            "diagnosis_failures": sum(
                1 for p in self.points if p.error is None and not p.diagnosis_ok
            ),
            "errors": sum(1 for p in self.points if p.error is not None),
            "max_peak_records": max((p.peak_records for p in self.points), default=0),
            "max_flow_count": max((p.flow_count for p in self.points), default=0),
            "wall_time_s": round(self.wall_time_s, 6),
        }

    @property
    def all_ok(self) -> bool:
        return all(p.ok for p in self.points)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "sweep": self.sweep,
            "scenario": self.scenario,
            "expect_problem": self.expect_problem,
            "base_seed": self.base_seed,
            "workers": self.workers,
            "grid": {axis: list(vals) for axis, vals in self.grid.items()},
            "points": [p.to_json() for p in self.points],
            "summary": self.summary(),
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "SweepReport":
        report = cls(
            sweep=doc["sweep"],
            scenario=doc["scenario"],
            expect_problem=doc["expect_problem"],
            base_seed=doc["base_seed"],
            workers=doc["workers"],
            grid={axis: list(vals) for axis, vals in doc["grid"].items()},
            points=[PointResult.from_json(p) for p in doc["points"]],
            wall_time_s=doc["summary"]["wall_time_s"],
        )
        return report


def _type_name(types: tuple[type, ...]) -> str:
    return "/".join("null" if t is type(None) else t.__name__ for t in types)


def validate_report(doc: Any) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid).

    ``bool`` is deliberately rejected where ``int`` is expected (bool is
    an int subclass in Python, but not in the JSON schema sense).
    """

    def bad_type(value: Any, types: tuple[type, ...]) -> bool:
        if isinstance(value, bool) and bool not in types:
            return True
        return not isinstance(value, types)

    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    errors = []
    for name, types in _TOP_FIELDS.items():
        if name not in doc:
            errors.append(f"missing field {name!r}")
        elif bad_type(doc[name], types):
            errors.append(f"field {name!r} must be {_type_name(types)}")
    for name in doc:
        # a typo in a hand-edited report must not pass silently
        if name not in _TOP_FIELDS:
            errors.append(
                f"unknown top-level field {name!r} "
                f"(allowed: {', '.join(sorted(_TOP_FIELDS))})"
            )
    if errors:
        return errors
    if doc["schema"] != SCHEMA:
        return [f"unknown schema {doc['schema']!r} (expected {SCHEMA!r})"]
    for axis, values in doc["grid"].items():
        if not isinstance(values, list) or not values:
            errors.append(f"grid axis {axis!r} must be a non-empty list")
    for i, point in enumerate(doc["points"]):
        if not isinstance(point, dict):
            errors.append(f"points[{i}] must be an object")
            continue
        for name, types in _POINT_FIELDS.items():
            if name not in point:
                errors.append(f"points[{i}] missing field {name!r}")
            elif bad_type(point[name], types):
                errors.append(f"points[{i}].{name} must be {_type_name(types)}")
    indices = [p.get("index") for p in doc["points"] if isinstance(p, dict)]
    if indices and indices != list(range(len(indices))):
        errors.append("point indices must be 0..n-1 in order")
    summary = doc["summary"]
    if isinstance(summary.get("points"), int):
        if summary["points"] != len(doc["points"]):
            errors.append("summary.points disagrees with len(points)")
    else:
        errors.append("summary.points must be int")
    return errors
