"""Experiment subsystem: seeded run tables over registered sweeps.

Public surface:

* :class:`ExperimentSpec` / :class:`FigureSpec` /
  :func:`register_experiment` / :data:`EXPERIMENTS` — declare a study:
  which sweep, which axes, how many repetitions, how the degradation
  figure renders.
* :class:`Experiment` — expand the run table, execute every
  ``(point, rep)`` cell with its own collision-free seed, persist a
  resumable artifact directory, aggregate the report.
* :class:`ExperimentReport` / :func:`validate_experiment_report` — the
  machine-readable result document CI archives and figures render from.
* ``table`` helpers — run-table expansion and canonical seed
  derivation.
* :func:`figure_svg` — deterministic SVG degradation curves.

See ``docs/EXPERIMENTS.md`` (generated from this registry) for the
run-table methodology, the artifact layout, and the JSON schema.
"""

from .catalog import experiments_markdown
from .figures import figure_svg
from .registry import (
    EXPERIMENTS,
    ExperimentError,
    ExperimentSpec,
    FigureSpec,
    register_experiment,
)
from .report import (
    MANIFEST_SCHEMA,
    RUN_SCHEMA,
    SCHEMA,
    ExperimentReport,
    PointAggregate,
    RunRecord,
    aggregate_runs,
    validate_experiment_report,
)
from .runner import EXECUTED, RESUMED, Experiment
from .table import Run, canonical_key, derive_seeds, expand_run_table

# registration is an import side effect: the studies join the registry
# when the package loads, the way scenario modules do
from . import studies  # noqa: E402,F401  isort:skip

__all__ = [
    "EXECUTED",
    "EXPERIMENTS",
    "MANIFEST_SCHEMA",
    "RESUMED",
    "RUN_SCHEMA",
    "SCHEMA",
    "Experiment",
    "ExperimentError",
    "ExperimentReport",
    "ExperimentSpec",
    "FigureSpec",
    "PointAggregate",
    "Run",
    "RunRecord",
    "aggregate_runs",
    "canonical_key",
    "derive_seeds",
    "expand_run_table",
    "experiments_markdown",
    "figure_svg",
    "register_experiment",
    "validate_experiment_report",
]
