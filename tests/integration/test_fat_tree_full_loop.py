"""Full debugging loop on a fat-tree with INT telemetry.

§4.1.3: "it is possible to use SwitchPointer with clean-slate solutions
such as INT to support trajectory tracing and epoch embedding over
arbitrary topologies."  This runs the complete §5.1-style diagnosis on
a k=4 fat-tree with the INT datapath — the configuration the VLAN
design cannot always serve.
"""

import pytest

from repro import SwitchPointerDeployment
from repro.analyzer import diagnose_contention
from repro.simnet.packet import PRIO_HIGH, PRIO_LOW
from repro.simnet.queues import StrictPriorityQueue
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import build_fat_tree
from repro.simnet.traffic import UdpCbrSource, UdpSink
from repro.simnet.device import _flow_hash
from repro.simnet.packet import FlowKey, PROTO_TCP, PROTO_UDP
from repro.switchd.datapath import MODE_INT


def predict_path(net, flow: FlowKey) -> list[str]:
    """Replicate the switches' deterministic ECMP walk for ``flow``."""
    here = net.hosts[flow.src].nic.peer_node
    path = []
    while here.name in net.switches:
        path.append(here.name)
        candidates = here.routes_for(flow.dst)
        out = candidates[_flow_hash(flow) % len(candidates)]
        here = out.peer_node
    return path


def shares_interswitch_link(a: list[str], b: list[str]) -> bool:
    la = set(zip(a, a[1:]))
    lb = set(zip(b, b[1:]))
    return bool(la & lb)


@pytest.fixture(scope="module")
def diagnosed():
    def qf():
        return StrictPriorityQueue(levels=3,
                                   capacity_bytes=4 * 1024 * 1024)
    net = build_fat_tree(4, queue_factory=qf)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3,
                                     epsilon_ms=1, delta_ms=2,
                                     mode=MODE_INT)
    sim = net.sim
    # victim: low-priority TCP across pods
    src, dst = net.hosts["h0_0_0"], net.hosts["h2_0_0"]
    victim_key = FlowKey(src.name, dst.name, 100, 200, PROTO_TCP)
    victim_path = predict_path(net, victim_key)
    # pick an aggressor sport whose ECMP walk shares a trunk link with
    # the victim (distinct src/dst pair, as in the paper's workloads)
    sport = next(
        p for p in range(7000, 7200)
        if shares_interswitch_link(
            victim_path,
            predict_path(net, FlowKey("h0_0_1", "h2_0_1", p, p,
                                      PROTO_UDP))))

    sender, receiver = open_tcp_flow(sim, src, dst, sport=100, dport=200,
                                     total_bytes=None, priority=PRIO_LOW,
                                     min_rto=0.010)
    sender.start()
    trigger = deploy.watch_flow(sender.flow)
    UdpSink(net.hosts["h2_0_1"], sport)
    UdpCbrSource(sim, net.hosts["h0_0_1"], "h2_0_1", sport=sport,
                 dport=sport, rate_bps=1e9, priority=PRIO_HIGH,
                 start=0.020, duration=0.003)
    net.run(until=0.060)
    sender.stop()
    trigger.stop()
    return net, deploy, sender


class TestFatTreeIntLoop:
    def test_victim_record_has_five_hop_path(self, diagnosed):
        net, deploy, sender = diagnosed
        rec = deploy.host_agents["h2_0_0"].store.get(sender.flow)
        assert rec is not None
        assert len(rec.switch_path) == 5
        assert rec.switch_path[0] == "edge0_0"

    def test_alert_fired_with_full_path(self, diagnosed):
        net, deploy, sender = diagnosed
        alerts = deploy.alerts()
        assert alerts
        assert len(alerts[0].switch_path) == 5

    def test_diagnosis_finds_the_burst(self, diagnosed):
        net, deploy, sender = diagnosed
        verdict = diagnose_contention(deploy.analyzer,
                                      deploy.alerts()[0])
        assert verdict.problem == "priority-contention"
        culprit_flows = {c.flow.src for c in verdict.culprits}
        assert "h0_0_1" in culprit_flows

    def test_contention_localized_to_shared_hops(self, diagnosed):
        """The aggressor shares only some of the victim's five hops;
        culprit attributions must stay on the victim's path."""
        net, deploy, sender = diagnosed
        verdict = diagnose_contention(deploy.analyzer,
                                      deploy.alerts()[0])
        victim_path = set(deploy.alerts()[0].switch_path)
        for c in verdict.culprits:
            assert c.switch in victim_path

    def test_every_path_switch_pointer_names_victim_dst(self, diagnosed):
        net, deploy, sender = diagnosed
        rec = deploy.host_agents["h2_0_0"].store.get(sender.flow)
        for sw in rec.switch_path:
            rng = rec.epochs_at(sw)
            hosts = deploy.analyzer.hosts_for(sw, rng, level=None)
            assert "h2_0_0" in hosts
