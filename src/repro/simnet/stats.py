"""Measurement probes.

These reproduce the *instrumentation* used in the paper's plots:

* :class:`ThroughputProbe` — per-window byte counts of one flow,
  convertible to a Gbps time series (Figs 2, 3, 4 y-axes).  The paper's
  end-host trigger measures throughput in 1 ms windows, so that is the
  default.
* :class:`InterArrivalProbe` — packet inter-arrival gaps of one flow
  (right-hand panels of Fig 2).
* :func:`attach_flow_tap` — observe one flow's packets as they leave a
  specific switch interface (Fig 3 plots the *same* flow's throughput at
  S1 and at S2).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from .link import Interface
from .packet import FlowKey, Packet


class ThroughputProbe:
    """Windowed byte counter for one flow.

    ``observe(nbytes, t)`` may be wired to a receiver callback or a
    switch tx tap.  ``series()`` returns ``[(window_start_s, gbps)]``
    covering every window from ``t0`` to the last observation (empty
    windows included, reported as 0.0 — starvation must be visible).
    """

    def __init__(self, window: float = 0.001, t0: float = 0.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.t0 = t0
        self._bins: dict[int, int] = {}
        self.total_bytes = 0
        self.last_t: Optional[float] = None

    def observe(self, nbytes: int, t: float) -> None:
        idx = int((t - self.t0) / self.window)
        self._bins[idx] = self._bins.get(idx, 0) + nbytes
        self.total_bytes += nbytes
        self.last_t = t if self.last_t is None else max(self.last_t, t)

    def on_packet(self, pkt: Packet, t: float) -> None:
        """Adapter matching socket/tap callback signatures."""
        self.observe(pkt.size, t)

    def series(self, until: Optional[float] = None) -> list[tuple[float, float]]:
        """Gbps per window, zero-filled, from t0 through the last sample."""
        if not self._bins and until is None:
            return []
        last_idx = max(self._bins) if self._bins else 0
        if until is not None:
            last_idx = max(last_idx, int((until - self.t0) / self.window) - 1)
        out = []
        for idx in range(0, last_idx + 1):
            gbps = self._bins.get(idx, 0) * 8 / self.window / 1e9
            out.append((self.t0 + idx * self.window, gbps))
        return out

    def rate_at(self, t: float) -> float:
        """Gbps of the window containing ``t``."""
        idx = int((t - self.t0) / self.window)
        return self._bins.get(idx, 0) * 8 / self.window / 1e9

    def mean_gbps(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.total_bytes * 8 / duration / 1e9


class InterArrivalProbe:
    """Records gaps between consecutive packets of one flow."""

    def __init__(self) -> None:
        self._last: Optional[float] = None
        self.samples: list[tuple[float, float]] = []  # (t, gap seconds)

    def on_packet(self, pkt: Packet, t: float) -> None:
        if self._last is not None:
            self.samples.append((t, t - self._last))
        self._last = t

    def max_gap(self) -> float:
        return max((g for _, g in self.samples), default=0.0)

    def max_gap_in(self, t_lo: float, t_hi: float) -> float:
        return max((g for t, g in self.samples if t_lo <= t <= t_hi),
                   default=0.0)

    def mean_gap(self) -> float:
        if not self.samples:
            return 0.0
        return sum(g for _, g in self.samples) / len(self.samples)


def attach_flow_tap(iface: Interface, flow: FlowKey,
                    probe: ThroughputProbe) -> None:
    """Feed ``probe`` with ``flow``'s packets serialized out of ``iface``."""

    def tap(pkt: Packet, t: float) -> None:
        if pkt.flow == flow:
            probe.observe(pkt.size, t)

    iface.tx_taps.append(tap)


def percentile(values: Iterable[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 on empty input."""
    data = sorted(values)
    if not data:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    rank = max(1, math.ceil(p / 100 * len(data)))
    return data[rank - 1]
