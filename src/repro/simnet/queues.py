"""Output-port queueing disciplines.

The paper's §2 phenomena are created by exactly two disciplines:

* :class:`DropTailFIFO` — the microburst scenario (Fig 2b): all packets
  treated equally, loss when the buffer overflows.
* :class:`StrictPriorityQueue` — the priority-contention scenarios
  (Figs 1, 2a, 3, 4): a higher-priority packet is always served before
  any lower-priority packet; low-priority traffic can be starved for as
  long as high-priority traffic keeps arriving (the Pica8 behaviour the
  paper exploits).

Both share the :class:`PacketQueue` interface consumed by
:class:`repro.simnet.link.Link` transmitters, and both keep drop/enqueue
statistics that the experiment harnesses read.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from .packet import Packet

#: Default buffer: ~170 full-size frames, in the range of shallow
#: datacenter ToR per-port buffers (256 KB).
DEFAULT_CAPACITY_BYTES = 256 * 1024


class QueueStats:
    """Counters shared by all queue types."""

    __slots__ = ("enqueued", "dequeued", "dropped", "bytes_enqueued",
                 "bytes_dropped", "max_depth_bytes")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.max_depth_bytes = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class PacketQueue:
    """Interface: bounded packet queue with byte accounting."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.depth_bytes = 0
        self.stats = QueueStats()

    def enqueue(self, pkt: Packet) -> bool:
        """Add ``pkt``; return ``False`` (and count a drop) on overflow."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to serve, or ``None``."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- shared bookkeeping ------------------------------------------------

    def _admit(self, pkt: Packet) -> bool:
        if self.depth_bytes + pkt.size > self.capacity_bytes:
            self.stats.dropped += 1
            self.stats.bytes_dropped += pkt.size
            return False
        self.depth_bytes += pkt.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += pkt.size
        if self.depth_bytes > self.stats.max_depth_bytes:
            self.stats.max_depth_bytes = self.depth_bytes
        return True

    def _release(self, pkt: Packet) -> Packet:
        self.depth_bytes -= pkt.size
        self.stats.dequeued += 1
        return pkt


class DropTailFIFO(PacketQueue):
    """Single FIFO with tail drop — the microburst substrate (Fig 2b)."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        super().__init__(capacity_bytes)
        self._q: deque[Packet] = deque()

    def enqueue(self, pkt: Packet) -> bool:
        if not self._admit(pkt):
            return False
        self._q.append(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._q:
            return None
        return self._release(self._q.popleft())

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._q)


class StrictPriorityQueue(PacketQueue):
    """Strict-priority scheduler over per-class FIFOs.

    Higher :attr:`Packet.priority` values are always served first; within
    a class, FIFO order.  The shared byte budget means a burst of
    high-priority arrivals can also crowd out buffer space — matching the
    "too much traffic" starvation behaviour in Fig 2(a).
    """

    def __init__(self, levels: int = 3,
                 capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        super().__init__(capacity_bytes)
        if levels < 1:
            raise ValueError("need at least one priority level")
        self.levels = levels
        self._qs: list[deque[Packet]] = [deque() for _ in range(levels)]

    def enqueue(self, pkt: Packet) -> bool:
        prio = min(max(pkt.priority, 0), self.levels - 1)
        if not self._admit(pkt):
            return False
        self._qs[prio].append(pkt)
        return True

    def dequeue(self) -> Optional[Packet]:
        for prio in range(self.levels - 1, -1, -1):
            q = self._qs[prio]
            if q:
                return self._release(q.popleft())
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._qs)

    def depth_of(self, priority: int) -> int:
        """Number of queued packets in one priority class."""
        return len(self._qs[min(max(priority, 0), self.levels - 1)])
