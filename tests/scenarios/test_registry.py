"""Tests for the scenario registry and the four-phase protocol."""

import pytest

from repro.scenarios import (REGISTRY, Knob, Scenario, ScenarioError,
                             ScenarioRegistry, ScenarioSpec, run_scenario)


def _spec(name, aliases=()):
    return ScenarioSpec(name=name, summary="s", paper_ref="p",
                        expected_diagnosis="d", aliases=aliases)


class _Dummy(Scenario):
    spec = _spec("dummy")

    def build(self):
        pass

    def run(self):
        pass

    def collect(self):
        return {}

    def diagnose(self):
        return []


class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = ScenarioRegistry()
        reg.register(_Dummy)
        clone = type("Clone", (_Dummy,), {"spec": _spec("dummy")})
        with pytest.raises(ScenarioError, match="duplicate"):
            reg.register(clone)

    def test_alias_colliding_with_name_rejected(self):
        reg = ScenarioRegistry()
        reg.register(_Dummy)
        other = type("Other", (_Dummy,),
                     {"spec": _spec("other", aliases=("dummy",))})
        with pytest.raises(ScenarioError, match="duplicate"):
            reg.register(other)

    def test_duplicate_alias_rejected(self):
        reg = ScenarioRegistry()
        a = type("A", (_Dummy,), {"spec": _spec("a", aliases=("x",))})
        b = type("B", (_Dummy,), {"spec": _spec("b", aliases=("x",))})
        reg.register(a)
        with pytest.raises(ScenarioError, match="duplicate"):
            reg.register(b)

    def test_class_without_spec_rejected(self):
        reg = ScenarioRegistry()
        with pytest.raises(ScenarioError, match="ScenarioSpec"):
            reg.register(type("NoSpec", (), {}))

    def test_smoke_knob_naming_undeclared_knob_rejected(self):
        reg = ScenarioRegistry()
        spec = ScenarioSpec(name="sk", summary="s", paper_ref="p",
                            expected_diagnosis="d",
                            knobs={"flows": Knob(1, "flow count")},
                            smoke_knobs={"flowz": 2})
        bad = type("Bad", (_Dummy,), {"spec": spec})
        with pytest.raises(ScenarioError,
                           match=r"smoke_knobs name undeclared knob\(s\) "
                                 r"\['flowz'\]"):
            reg.register(bad)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            REGISTRY.get("no-such-scenario")

    def test_alias_resolution(self):
        for alias, name in (("fig2a", "contention"), ("fig2b", "microburst"),
                            ("fig3", "red-lights"), ("fig4", "cascades"),
                            ("fig7", "contention"),
                            ("fig8", "load-imbalance")):
            assert REGISTRY.get(alias).spec.name == name
            assert alias in REGISTRY

    def test_registry_has_at_least_eight_scenarios(self):
        assert len(REGISTRY) >= 8
        for new in ("incast", "gray-failure", "polarization", "link-flap"):
            assert new in REGISTRY


class TestScenarioProtocol:
    def test_unknown_knob_rejected(self):
        cls = REGISTRY.get("gray-failure")
        with pytest.raises(ScenarioError, match="unknown knob"):
            cls(no_such_knob=1)

    def test_knob_defaults_and_overrides(self):
        cls = REGISTRY.get("gray-failure")
        sc = cls(fault_switch="S2")
        assert sc.p["fault_switch"] == "S2"
        assert sc.p["n_flows"] == cls.spec.knobs["n_flows"].default

    def test_build_must_set_network_and_deployment(self):
        with pytest.raises(ScenarioError, match="must set"):
            _Dummy().execute()

    def test_specs_are_well_formed(self):
        for spec in REGISTRY.specs():
            assert spec.name and spec.summary and spec.paper_ref
            assert spec.expected_diagnosis
            for knob_name, knob in spec.knobs.items():
                assert isinstance(knob, Knob), (spec.name, knob_name)
                assert knob.help
            unknown_smoke = set(spec.smoke_knobs) - set(spec.knobs)
            assert not unknown_smoke, (spec.name, unknown_smoke)


class TestRoundTrips:
    """Every registered scenario must complete all four phases quickly
    and produce a verdict (the acceptance bar for new plugins)."""

    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_round_trip(self, name):
        spec = REGISTRY.get(name).spec
        result = run_scenario(name, **spec.smoke_knobs)
        assert set(result.timings) == {"build", "run", "collect",
                                       "diagnose"}
        assert result.sim_time > 0
        assert result.network is not None
        assert result.deployment is not None
        assert result.switch_stats  # one entry per switch
        assert result.verdicts, f"{name} produced no verdict"
        for v in result.verdicts:
            assert v.narrative

    def test_run_scenario_via_alias(self):
        spec = REGISTRY.get("contention").spec
        result = run_scenario("fig2a", **spec.smoke_knobs)
        assert result.name == "contention"

    def test_summary_lines_render(self):
        spec = REGISTRY.get("gray-failure").spec
        result = run_scenario("gray-failure", **spec.smoke_knobs)
        text = "\n".join(result.summary_lines())
        assert "scenario: gray-failure" in text
        assert "diagnosis (gray-failure)" in text
