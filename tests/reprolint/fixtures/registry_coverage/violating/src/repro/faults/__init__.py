"""Fixture aggregator that forgets one registering module."""

from .base import Fault, register_fault

__all__ = ["Fault", "register_fault"]
