"""Deterministic SVG degradation figures from experiment reports.

``figure_svg`` renders one committed figure — per-point mean accuracy
as a 2px line with markers, the min/max envelope across repetitions as
a ~10 %-opacity wash, and an optional dashed vertical annotation at an
analytic boundary (the ε bound, a coverage threshold).  Pure string
assembly with fixed-precision coordinates: the same report always
yields the same bytes, which is what lets the figures be checked into
``results/figures/`` and re-verified by ``tools/plot_experiments.py
--check``.

Chart anatomy follows a single fixed style: recessive hairline
gridlines, one baseline axis, a single series (so no legend — the
title names the curve), values carried by axis ticks rather than
per-point labels, and all text in ink tokens rather than the series
color.
"""

from __future__ import annotations

from typing import Any, Optional

from .registry import ExperimentError, FigureSpec

# Light-surface palette (validated reference set).
_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_INK_MUTED = "#898781"
_GRID = "#e1e0d9"
_BASELINE = "#c3c2b7"
_SERIES = "#2a78d6"
_FRESHNESS = "#c2703f"
_FPR = "#9a4ac0"

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 56.0
_MARGIN_RIGHT = 24.0
_MARGIN_TOP = 64.0
_MARGIN_BOTTOM = 56.0

_FONT = 'font-family="system-ui, sans-serif"'


def _fmt(value: float) -> str:
    """Fixed two-decimal coordinate formatting (deterministic bytes)."""
    return f"{value:.2f}"


def _label(value: Any) -> str:
    """Tick-label formatting: trim floats the way %g does."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _series_points(
    doc: dict[str, Any], x_axis: str
) -> list[tuple[float, float, float, float]]:
    """``(x, mean, lo, hi)`` per grid point, sorted by x."""
    series: list[tuple[float, float, float, float]] = []
    for point in doc["points"]:
        params = point["params"]
        if x_axis not in params:
            raise ExperimentError(
                f"figure x_axis {x_axis!r} missing from point params "
                f"{sorted(params)}"
            )
        accuracy = point["accuracy"]
        series.append(
            (
                float(params[x_axis]),
                float(accuracy["mean"]),
                float(accuracy["min"]),
                float(accuracy["max"]),
            )
        )
    series.sort(key=lambda item: item[0])
    return series


def figure_svg(doc: dict[str, Any], fig: Optional[FigureSpec] = None) -> str:
    """Render one experiment report as a deterministic SVG figure.

    ``doc`` is a validated ``ExperimentReport`` JSON document.  When
    ``fig`` is omitted, the registered spec's figure is looked up by
    the report's experiment name.
    """
    if fig is None:
        from .registry import EXPERIMENTS

        fig = EXPERIMENTS.get(doc["experiment"]).figure
        if fig is None:
            raise ExperimentError(
                f"experiment {doc['experiment']!r} declares no figure"
            )
    series = _series_points(doc, fig.x_axis)
    if not series:
        raise ExperimentError("report has no points to plot")

    xs = [item[0] for item in series]
    x_lo, x_hi = min(xs), max(xs)
    if fig.vline is not None:
        x_lo, x_hi = min(x_lo, fig.vline), max(x_hi, fig.vline)
    span = (x_hi - x_lo) or 1.0
    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        return _MARGIN_LEFT + (x - x_lo) / span * plot_w

    def sy(y: float) -> float:
        # accuracy is a rate: the y scale is always [0, 1]
        return _MARGIN_TOP + (1.0 - y) * plot_h

    out: list[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'role="img" aria-label="{fig.title}">'
    )
    out.append(
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="{_SURFACE}"/>'
    )
    out.append(
        f'<text x="{_fmt(_MARGIN_LEFT)}" y="24" {_FONT} font-size="15" '
        f'font-weight="600" fill="{_INK}">{fig.title}</text>'
    )
    freshness: list[tuple[float, float]] = []
    fresh_max = 0.0
    if fig.freshness_series:
        freshness = [
            (
                float(point["params"][fig.x_axis]),
                float(point["freshness"]["mean"]),
            )
            for point in doc["points"]
        ]
        freshness.sort(key=lambda item: item[0])
        fresh_max = max((v for _, v in freshness), default=0.0)
    fpr: list[tuple[float, float]] = []
    if fig.fpr_series:
        fpr = [
            (
                float(point["params"][fig.x_axis]),
                float(point["directory_fpr"]["mean"]),
            )
            for point in doc["points"]
        ]
        fpr.sort(key=lambda item: item[0])
    reps = doc["reps"]
    subtitle = (
        f"mean of {reps} seeded repetitions per point; band: min–max"
    )
    if fig.freshness_series:
        subtitle += (
            f"; dashed: freshness (scaled, max {fresh_max:g} records)"
        )
    if fig.fpr_series:
        subtitle += "; dashed: pointer false-positive rate"
    out.append(
        f'<text x="{_fmt(_MARGIN_LEFT)}" y="42" {_FONT} font-size="12" '
        f'fill="{_INK_SECONDARY}">{subtitle}</text>'
    )

    # horizontal gridlines + y ticks at clean accuracy fractions
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = sy(tick)
        out.append(
            f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(_WIDTH - _MARGIN_RIGHT)}" y2="{_fmt(y)}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{_fmt(_MARGIN_LEFT - 8)}" y="{_fmt(y + 3.5)}" '
            f'{_FONT} font-size="11" text-anchor="end" '
            f'fill="{_INK_MUTED}">{_label(tick)}</text>'
        )

    # baseline + x ticks at the data's own grid values
    base_y = sy(0.0)
    out.append(
        f'<line x1="{_fmt(_MARGIN_LEFT)}" y1="{_fmt(base_y)}" '
        f'x2="{_fmt(_WIDTH - _MARGIN_RIGHT)}" y2="{_fmt(base_y)}" '
        f'stroke="{_BASELINE}" stroke-width="1"/>'
    )
    for x in xs:
        out.append(
            f'<text x="{_fmt(sx(x))}" y="{_fmt(base_y + 18)}" {_FONT} '
            f'font-size="11" text-anchor="middle" '
            f'fill="{_INK_MUTED}">{_label(x)}</text>'
        )
    out.append(
        f'<text x="{_fmt(_MARGIN_LEFT + plot_w / 2)}" '
        f'y="{_fmt(base_y + 38)}" {_FONT} font-size="12" '
        f'text-anchor="middle" fill="{_INK_SECONDARY}">'
        f"{fig.x_label}</text>"
    )

    # min–max envelope: the series hue as a wash, never a solid block
    band = " ".join(
        f"{_fmt(sx(x))},{_fmt(sy(hi))}" for x, _, _, hi in series
    )
    band += " " + " ".join(
        f"{_fmt(sx(x))},{_fmt(sy(lo))}" for x, _, lo, _ in reversed(series)
    )
    out.append(
        f'<polygon points="{band}" fill="{_SERIES}" fill-opacity="0.1"/>'
    )

    # analytic boundary annotation (dashed: an annotation, not a gridline)
    if fig.vline is not None:
        vx = sx(fig.vline)
        out.append(
            f'<line x1="{_fmt(vx)}" y1="{_fmt(_MARGIN_TOP)}" '
            f'x2="{_fmt(vx)}" y2="{_fmt(base_y)}" '
            f'stroke="{_INK_MUTED}" stroke-width="1" '
            f'stroke-dasharray="4 3"/>'
        )
        if fig.vline_label:
            out.append(
                f'<text x="{_fmt(vx + 6)}" y="{_fmt(_MARGIN_TOP + 14)}" '
                f'{_FONT} font-size="11" fill="{_INK_SECONDARY}">'
                f"{fig.vline_label}</text>"
            )

    # verdict-freshness overlay: dashed, scaled to its own maximum so
    # the [0, 1] accuracy scale can carry it; drawn under the accuracy
    # line (the primary series stays on top)
    if fig.freshness_series and freshness:
        scale = fresh_max or 1.0
        fresh_path = " ".join(
            f"{_fmt(sx(x))},{_fmt(sy(v / scale))}" for x, v in freshness
        )
        out.append(
            f'<polyline points="{fresh_path}" fill="none" '
            f'stroke="{_FRESHNESS}" stroke-width="1.5" '
            f'stroke-dasharray="5 4" stroke-linejoin="round" '
            f'stroke-linecap="round"/>'
        )
        for x, v in freshness:
            out.append(
                f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(v / scale))}" '
                f'r="3" fill="{_SURFACE}" stroke="{_FRESHNESS}" '
                f'stroke-width="1.5"/>'
            )

    # directory false-positive-rate overlay: a rate like accuracy, so
    # it shares the [0, 1] scale directly (no rescaling); dashed and
    # drawn under the accuracy line
    if fig.fpr_series and fpr:
        fpr_path = " ".join(
            f"{_fmt(sx(x))},{_fmt(sy(v))}" for x, v in fpr
        )
        out.append(
            f'<polyline points="{fpr_path}" fill="none" '
            f'stroke="{_FPR}" stroke-width="1.5" '
            f'stroke-dasharray="5 4" stroke-linejoin="round" '
            f'stroke-linecap="round"/>'
        )
        for x, v in fpr:
            out.append(
                f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(v))}" '
                f'r="3" fill="{_SURFACE}" stroke="{_FPR}" '
                f'stroke-width="1.5"/>'
            )

    # mean accuracy: 2px line, round joins, markers with a surface ring
    path = " ".join(
        f"{_fmt(sx(x))},{_fmt(sy(mean))}" for x, mean, _, _ in series
    )
    out.append(
        f'<polyline points="{path}" fill="none" stroke="{_SERIES}" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
    )
    for x, mean, _, _ in series:
        out.append(
            f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(mean))}" r="4" '
            f'fill="{_SERIES}" stroke="{_SURFACE}" stroke-width="2"/>'
        )

    out.append("</svg>")
    return "\n".join(out) + "\n"
