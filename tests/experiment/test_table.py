"""Run-table expansion properties: deterministic, collision-free seeds,
stable under axis reordering (the seeding contract docs/EXPERIMENTS.md
promises)."""

import pytest
from hypothesis import given, strategies as st

from repro.experiment import (
    EXPERIMENTS,
    ExperimentError,
    canonical_key,
    derive_seeds,
    expand_run_table,
)

#: small but varied axis grids: 1-3 axes, 1-4 values each
_axis_values = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=50),
        st.floats(
            min_value=0.0, max_value=50.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=1, max_size=4, unique=True,
)
_grids = st.dictionaries(
    st.sampled_from(["skew_ms", "deploy", "victims", "flows", "hosts"]),
    _axis_values,
    min_size=1, max_size=3,
)


class TestExpansionProperties:
    @given(grid=_grids, reps=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_expansion_is_deterministic(self, grid, reps, seed):
        assert (expand_run_table(grid, reps, seed)
                == expand_run_table(grid, reps, seed))

    @given(grid=_grids, reps=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_seeds_pairwise_distinct_across_table(self, grid, reps, seed):
        """No repetition or grid point ever reuses another cell's seed."""
        runs = expand_run_table(grid, reps, seed)
        seeds = [run.seed for run in runs]
        assert len(set(seeds)) == len(seeds)

    @given(grid=_grids, reps=st.integers(min_value=1, max_value=5),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_stable_under_axis_reordering(self, grid, reps, seed):
        """Reordering a spec's axes must not re-seed a committed study:
        the (params, rep) -> seed mapping is identical either way."""
        reversed_grid = dict(reversed(list(grid.items())))
        forward = {
            canonical_key(run.params, run.rep): run.seed
            for run in expand_run_table(grid, reps, seed)
        }
        backward = {
            canonical_key(run.params, run.rep): run.seed
            for run in expand_run_table(reversed_grid, reps, seed)
        }
        assert forward == backward

    @given(grid=_grids, reps=st.integers(min_value=1, max_value=4))
    def test_table_shape(self, grid, reps):
        runs = expand_run_table(grid, reps, 1729)
        points = 1
        for values in grid.values():
            points *= len(values)
        assert len(runs) == points * reps
        assert [run.index for run in runs] == list(range(len(runs)))
        # reps enumerate fastest, within each point
        assert [run.rep for run in runs] == [
            r for _ in range(points) for r in range(reps)
        ]


class TestRegisteredSpecs:
    def test_every_registered_table_is_collision_free(self):
        for name in EXPERIMENTS.names():
            spec = EXPERIMENTS.get(name)
            grid = {axis: list(vals) for axis, vals in spec.axes.items()}
            runs = expand_run_table(grid, spec.reps, 1729)
            seeds = [run.seed for run in runs]
            assert len(set(seeds)) == len(seeds), name
            assert spec.reps >= 3, (
                f"{name}: a degradation point needs statistical weight"
            )


class TestDeriveSeeds:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ExperimentError, match="unique"):
            derive_seeds(1, ["a|rep=0", "a|rep=0"])

    def test_salt_is_order_independent(self):
        keys = [f"skew_ms={v}|rep={r}" for v in (0, 1, 2) for r in (0, 1)]
        forward = derive_seeds(7, keys)
        backward = derive_seeds(7, list(reversed(keys)))
        assert forward == backward


class TestValidation:
    def test_zero_reps_rejected(self):
        with pytest.raises(ExperimentError, match="reps"):
            expand_run_table({"skew_ms": [0.0]}, 0, 1729)

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError, match="axis"):
            expand_run_table({}, 3, 1729)
