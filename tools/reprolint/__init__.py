"""reprolint: AST-based invariant checks no stock linter can see.

The repo's correctness story rests on invariants that live *between*
modules — bit-identical seeded RNG streams, simulated-time discipline,
the decorator-registry contracts scenarios/sweeps/faults share, the
sweep-report schema.  Each one is encoded here as a registered
:class:`Rule` (the same decorator-registry idiom as the scenario, fault
and sweep registries) and enforced by a blocking CI job::

    python -m tools.reprolint                # lint the tree (src/)
    python -m tools.reprolint --list         # rule catalogue
    python -m tools.reprolint --fix-baseline # accept current violations

The rule catalogue is rendered into ``docs/LINTING.md`` by
``tools/gen_lint_docs.py`` from the same :class:`RuleSpec` metadata
``--list`` prints — one source of truth, like every other registry.

A violation can be suppressed two ways, both deliberately loud:

* a ``# reprolint: allow[<token>]`` pragma on the offending line, for
  rules that declare a pragma token (e.g. ``wall-clock`` measurement
  sites in the sweep/scenario runners);
* a baseline entry (``.reprolint-baseline.json`` at the project root,
  written by ``--fix-baseline``) — a ratchet for onboarding a rule to a
  tree that does not yet pass it.  Stale entries fail the run, so the
  baseline only ever shrinks.  The committed tree carries none.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterator, Optional

from .model import Module, Project

__all__ = [
    "BASELINE_NAME",
    "RULES",
    "LintError",
    "Module",
    "Project",
    "Rule",
    "RuleRegistry",
    "RuleSpec",
    "Violation",
    "load_baseline",
    "register_rule",
    "run_lint",
    "write_baseline",
]

#: Baseline file name, resolved against the lint root.
BASELINE_NAME = ".reprolint-baseline.json"


class LintError(Exception):
    """Raised for registry misuse or invalid lint configuration."""


@dataclass(frozen=True)
class RuleSpec:
    """Registry metadata for one rule.

    The single source of truth ``--list`` and the generated
    ``docs/LINTING.md`` catalogue both render.

    Attributes
    ----------
    name:
        Registry key, kebab-case, unique.
    summary:
        One-line description of the invariant.
    rationale:
        Why the invariant matters — what breaks when it is violated.
    scope:
        Human-readable description of the files the rule examines.
    pragma:
        ``allow[<token>]`` token honored at declared exception sites,
        or None when the rule admits no inline exceptions.
    fix:
        How to repair a violation.
    """

    name: str
    summary: str
    rationale: str
    scope: str
    pragma: Optional[str] = None
    fix: str = ""


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what is wrong."""

    rule: str
    rel: str
    line: int
    message: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity — line numbers churn, messages rarely do."""
        return (self.rule, self.rel, self.message)

    def render(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


class Rule(abc.ABC):
    """Base class all rules implement (one ``check`` pass per run)."""

    spec: ClassVar[RuleSpec]

    @abc.abstractmethod
    def check(self, project: Project) -> Iterator[Violation]:
        """Yield every violation found in ``project``."""

    def violation(self, module: Module, line: int, message: str) -> Violation:
        return Violation(
            rule=self.spec.name, rel=module.rel, line=line, message=message
        )


class RuleRegistry:
    """Name -> rule-class registry (same idiom as the fault registry)."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Rule]] = {}

    def register(self, cls: type[Rule]) -> type[Rule]:
        """Class decorator: add ``cls`` under its spec name."""
        spec = getattr(cls, "spec", None)
        if not isinstance(spec, RuleSpec):
            raise LintError(f"{cls.__name__} must define a RuleSpec 'spec'")
        if spec.name in self._classes:
            raise LintError(f"duplicate rule name {spec.name!r}")
        self._classes[spec.name] = cls
        return cls

    def get(self, name: str) -> type[Rule]:
        try:
            return self._classes[name]
        except KeyError:
            raise LintError(
                f"unknown rule {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._classes)

    def specs(self) -> list[RuleSpec]:
        return [self._classes[n].spec for n in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry every rule registers into.
RULES = RuleRegistry()
register_rule = RULES.register


def run_lint(
    root: Path,
    paths: tuple[str, ...] = ("src",),
    rules: Optional[tuple[str, ...]] = None,
) -> list[Violation]:
    """Lint ``paths`` under ``root`` with every (or the named) rule(s).

    The programmatic entry the CLI, the tier-1 tree-clean test, and the
    per-rule fixture tests all share.  Violations come back sorted by
    location for stable output and baselines.
    """
    from . import rules as _rules  # noqa: F401  (registers the catalogue)

    project = Project.load(root, paths)
    names = list(rules) if rules is not None else RULES.names()
    found: list[Violation] = []
    for name in names:
        found.extend(RULES.get(name)().check(project))
    found.sort(key=lambda v: (v.rel, v.line, v.rule, v.message))
    return found


def load_baseline(root: Path) -> set[tuple[str, str, str]]:
    """The accepted-violation keys recorded at ``root``, if any."""
    path = root / BASELINE_NAME
    if not path.exists():
        return set()
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"unreadable baseline {path}: {exc}") from exc
    entries = doc.get("suppressions", []) if isinstance(doc, dict) else []
    return {
        (e["rule"], e["path"], e["message"])
        for e in entries
        if isinstance(e, dict) and {"rule", "path", "message"} <= set(e)
    }


def write_baseline(root: Path, violations: list[Violation]) -> Path:
    """Record ``violations`` as the accepted baseline (``--fix-baseline``)."""
    path = root / BASELINE_NAME
    doc = {
        "comment": (
            "reprolint baseline: accepted pre-existing violations. "
            "Regenerate with: python -m tools.reprolint --fix-baseline. "
            "Entries must only ever be removed."
        ),
        "suppressions": [
            {"rule": v.rule, "path": v.rel, "message": v.message} for v in violations
        ],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
