"""Unit tests for the simplified TCP Reno model."""

import pytest

from repro.simnet.packet import PRIO_HIGH
from repro.simnet.queues import DropTailFIFO, StrictPriorityQueue
from repro.simnet.tcp import open_tcp_flow
from repro.simnet.topology import Network
from repro.simnet.traffic import UdpCbrSource, UdpSink


def small_net(queue_factory=None):
    net = Network()
    s = net.add_switch("S")
    a = net.add_host("a")
    b = net.add_host("b")
    net.connect(a, s, queue_factory=queue_factory)
    net.connect(b, s, queue_factory=queue_factory)
    net.compute_routes()
    return net


class TestBasicTransfer:
    def test_sized_transfer_completes_exactly(self):
        net = small_net()
        sender, receiver = open_tcp_flow(
            net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
            total_bytes=100_000)
        sender.start()
        net.run(until=1.0)
        assert sender.done
        assert receiver.rcv_next == 100_000
        assert sender.completed_at is not None

    def test_throughput_approaches_line_rate(self):
        net = small_net()
        sender, receiver = open_tcp_flow(
            net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
            total_bytes=2_000_000)
        sender.start()
        net.run(until=1.0)
        # 2 MB at 1 Gbps is 16 ms on the wire; allow startup slack
        assert sender.completed_at < 0.025

    def test_no_losses_on_clean_path(self):
        net = small_net()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=500_000)
        sender.start()
        net.run(until=1.0)
        assert sender.retransmits == 0
        assert sender.timeouts == 0

    def test_on_complete_callback(self):
        net = small_net()
        done = []
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=10_000,
                                  on_complete=done.append)
        sender.start()
        net.run(until=1.0)
        assert len(done) == 1
        assert done[0] == sender.completed_at

    def test_start_delay_honored(self):
        net = small_net()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=10_000)
        sender.start(delay=0.1)
        net.run(until=0.05)
        assert sender.segments_sent == 0
        net.run(until=1.0)
        assert sender.done

    def test_conservation_acked_never_exceeds_sent(self):
        net = small_net()
        sender, receiver = open_tcp_flow(
            net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
            total_bytes=300_000)
        sender.start()
        net.run(until=1.0)
        assert sender.bytes_acked <= sender.snd_next
        assert receiver.bytes_received >= receiver.rcv_next


class TestLossRecovery:
    def test_recovers_through_tiny_buffer(self):
        """A shallow queue forces drops; the transfer must still finish."""
        def qf():
            return DropTailFIFO(capacity_bytes=6000)  # ~4 packets
        net = small_net(queue_factory=qf)
        sender, receiver = open_tcp_flow(
            net.sim, net.hosts["a"], net.hosts["b"], sport=1, dport=2,
            total_bytes=1_000_000)
        sender.start()
        net.run(until=2.0)
        assert sender.done, (sender.snd_una, sender.retransmits,
                             sender.timeouts)
        assert receiver.rcv_next == 1_000_000
        assert sender.retransmits > 0  # losses actually happened

    def test_rto_fires_under_total_starvation(self):
        """Strict-priority starvation longer than the RTO must time out."""
        def qf():
            return StrictPriorityQueue(levels=3,
                                       capacity_bytes=16 * 1024 * 1024)
        net = Network()
        s1 = net.add_switch("S1")
        s2 = net.add_switch("S2")
        net.connect(s1, s2, queue_factory=qf)
        for name in ("a", "b", "c", "d"):
            h = net.add_host(name)
            net.connect(h, s1 if name in ("a", "c") else s2,
                        queue_factory=qf)
        net.compute_routes()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=None,
                                  min_rto=0.010)
        sender.start()
        UdpSink(net.hosts["d"], 7)
        # 30 ms of line-rate high-priority traffic >> min RTO of 10 ms
        UdpCbrSource(net.sim, net.hosts["c"], "d", sport=7, dport=7,
                     rate_bps=1e9, priority=PRIO_HIGH, start=0.005,
                     duration=0.030)
        net.run(until=0.060)
        sender.stop()
        assert sender.timeouts >= 1
        assert sender.timeout_times[0] > 0.005

    def test_cwnd_resets_after_timeout(self):
        def qf():
            return StrictPriorityQueue(levels=3,
                                       capacity_bytes=16 * 1024 * 1024)
        net = small_net(queue_factory=qf)
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=None,
                                  min_rto=0.010)
        sender.start()
        net.run(until=0.002)
        cwnd_before = sender.cwnd
        # blackhole: replace the switch route so data vanishes
        net.switches["S"].clear_routes()
        net.run(until=0.050)
        assert sender.timeouts >= 1
        assert sender.cwnd <= cwnd_before
        assert sender.cwnd == pytest.approx(sender.mss)

    def test_rto_backs_off_exponentially(self):
        net = small_net()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=None,
                                  min_rto=0.010)
        sender.start()
        net.run(until=0.002)
        net.switches["S"].clear_routes()
        net.run(until=0.200)
        assert sender.timeouts >= 3
        gaps = [b - a for a, b in zip(sender.timeout_times,
                                      sender.timeout_times[1:])]
        assert all(g2 > g1 * 1.5 for g1, g2 in zip(gaps, gaps[1:]))


class TestFlowControlDetails:
    def test_stop_halts_new_data(self):
        net = small_net()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=None)
        sender.start()
        net.run(until=0.010)
        sender.stop()
        sent_at_stop = sender.segments_sent
        net.run(until=0.050)
        assert sender.segments_sent == sent_at_stop

    def test_priority_carried_on_segments_and_acks(self):
        net = small_net()
        prios = []
        net.hosts["b"].sniffers.append(
            lambda h, p, t: prios.append(p.priority))
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=20_000,
                                  priority=PRIO_HIGH)
        sender.start()
        net.run(until=0.5)
        assert prios and all(p == PRIO_HIGH for p in prios)

    def test_rtt_estimate_converges(self):
        net = small_net()
        sender, _ = open_tcp_flow(net.sim, net.hosts["a"], net.hosts["b"],
                                  sport=1, dport=2, total_bytes=500_000)
        sender.start()
        net.run(until=1.0)
        assert sender.srtt is not None
        # bare path RTT is ~tens of µs; queueing adds up to ~ms
        assert 0 < sender.srtt < 0.01
