"""SwitchPointer analyzer: coordination + debugging applications (§4.3, §5)."""

from .analyzer import Analyzer, HostsPerSwitch
from .apps import (Culprit, Verdict, diagnose_cascade, diagnose_contention,
                   diagnose_gray_failure, diagnose_gray_failure_online,
                   diagnose_incast, diagnose_link_flap,
                   diagnose_load_imbalance, diagnose_polarization,
                   diagnose_red_lights)
from .netdebug import (ConformanceReport, ConformanceViolation,
                       DropLocalization, check_path_conformance,
                       localize_packet_drops)
from .session import (DiagnosisSession, STATUS_COMPLETE, STATUS_DEGRADED,
                      STATUS_STALE, VERDICT_STATES)
from .autodebug import AutoDebugger, Incident

__all__ = [
    "Analyzer", "HostsPerSwitch",
    "Verdict", "Culprit",
    "diagnose_contention", "diagnose_red_lights", "diagnose_cascade",
    "diagnose_load_imbalance", "diagnose_incast", "diagnose_gray_failure",
    "diagnose_gray_failure_online",
    "diagnose_polarization", "diagnose_link_flap",
    "DiagnosisSession", "VERDICT_STATES",
    "STATUS_COMPLETE", "STATUS_DEGRADED", "STATUS_STALE",
    "DropLocalization", "localize_packet_drops",
    "ConformanceReport", "ConformanceViolation",
    "check_path_conformance",
    "AutoDebugger", "Incident",
]
