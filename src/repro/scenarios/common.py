"""Constants, queue factories, and topology helpers shared by the
scenario modules."""

from __future__ import annotations

from ..simnet.queues import DropTailFIFO, StrictPriorityQueue
from ..simnet.topology import Network

#: Pica8-class deep shared buffer (the paper's testbed switch family has
#: multi-MB packet memory; a shallow buffer would clip the starvation
#: episodes that Fig 2 shows at m = 8, 16).
DEEP_BUFFER_BYTES = 4 * 1024 * 1024
GBPS = 1e9


def priority_queue() -> StrictPriorityQueue:
    return StrictPriorityQueue(levels=3, capacity_bytes=DEEP_BUFFER_BYTES)


def fifo_queue() -> DropTailFIFO:
    return DropTailFIFO(capacity_bytes=DEEP_BUFFER_BYTES)


def build_diamond(n_pairs: int, *, trunk_bps: float,
                  host_bps: float) -> Network:
    """S1—{SPA,SPB}—S2 with ``n_pairs`` tx/rx host pairs.

    The two-spine diamond shared by the load-imbalance and link-flap
    scenarios; only the link rates differ between them.  ECMP candidate
    order at S1/S2 follows link creation order: SPA first, then SPB.
    """
    net = Network()
    s1 = net.add_switch("S1")
    spine_a = net.add_switch("SPA")
    spine_b = net.add_switch("SPB")
    s2 = net.add_switch("S2")
    for spine in (spine_a, spine_b):
        net.connect(s1, spine, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
        net.connect(spine, s2, rate_bps=trunk_bps,
                    queue_factory=fifo_queue)
    for i in range(n_pairs):
        tx = net.add_host(f"tx{i}")
        rx = net.add_host(f"rx{i}")
        net.connect(tx, s1, rate_bps=host_bps, queue_factory=fifo_queue)
        net.connect(rx, s2, rate_bps=host_bps, queue_factory=fifo_queue)
    net.compute_routes()
    return net
