"""Fault subsystem: protocol, parameter specs, and registry.

A *fault* is one injectable disturbance — a link going down, a switch
silently dropping a flow slice, a skewed clock, a crashed host agent —
packaged behind a four-verb protocol (**schedule → inject → heal →
describe**) so scenarios compose faults instead of open-coding
``sim.schedule_at`` callbacks:

    @register_fault
    class SilentDropFault(Fault):
        spec = FaultSpec(name="silent-drop", ...)
        def inject(self, ctx): ...
        def heal(self, ctx): ...

Registration mirrors the scenario registry of PR 2: the decorator is
all it takes for the fault to appear in ``python -m repro.cli faults
list`` and in the generated ``docs/FAULTS.md`` catalogue — the CLI and
the docs render the same :class:`FaultSpec` metadata.

Every fault carries two shared scheduling parameters on top of its own:
``start`` (simulated seconds at which :meth:`Fault.inject` fires) and
``stop`` (when :meth:`Fault.heal` fires; ``None`` = the fault persists
to the end of the run).  The :class:`~repro.faults.plan.FaultPlan`
composer turns those into simulator events and tracks each fault
through its ``pending → active → healed`` lifecycle.

This layer sits *below* the scenario package: faults import simnet,
core, and the deployment — never scenarios — so scenario modules are
free to import the registry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # import cycle guard: deployment is typing-only here
    from ..deployment import SwitchPointerDeployment
    from ..simnet.topology import Network

#: Lifecycle states a fault moves through under a FaultPlan.
PENDING = "pending"
ACTIVE = "active"
HEALED = "healed"

#: Reporting label (not a lifecycle state): an ACTIVE fault whose
#: injection fired after diagnosis began — it raced the analyzer's
#: query window, and the verdict is expected to degrade, not error.
ACTIVE_DURING_DIAGNOSIS = "active-during-diagnosis"


class FaultError(Exception):
    """Raised for registry misuse or invalid fault parameters."""


@dataclass(frozen=True)
class FaultParam:
    """One tunable parameter of a fault (default + help string)."""

    default: Any
    help: str


@dataclass(frozen=True)
class FaultSpec:
    """Registry metadata for one fault.

    The single source of truth both ``cli faults list`` and the
    generated ``docs/FAULTS.md`` catalogue render.

    Attributes
    ----------
    name:
        Registry key, kebab-case, unique.
    summary:
        One-line description (CLI ``faults list``).
    degrades:
        What evidence the fault removes or corrupts — which layer of
        the diagnosis pipeline it stresses.
    diagnosed_by:
        The analyzer app(s) that attribute the fault, or "(none)" for
        pure stressors like clock skew.
    params:
        Fault-specific parameters; ``start``/``stop`` are implicit on
        every fault and need not be declared.
    """

    name: str
    summary: str
    degrades: str
    diagnosed_by: str
    params: dict[str, FaultParam] = field(default_factory=dict)


@dataclass
class FaultContext:
    """What a fault gets to act on when it fires."""

    network: "Network"
    deployment: Optional["SwitchPointerDeployment"] = None

    def require_deployment(self, fault: "Fault") -> "SwitchPointerDeployment":
        if self.deployment is None:
            raise FaultError(
                f"fault {fault.spec.name!r} needs an instrumented "
                f"deployment in its context"
            )
        return self.deployment


#: The scheduling parameters every fault shares.
_COMMON_PARAMS: dict[str, FaultParam] = {
    "start": FaultParam(0.0, "simulated time (s) at which inject() fires"),
    "stop": FaultParam(None, "when heal() fires (s; None = never)"),
}


class Fault(abc.ABC):
    """Base class all faults implement (schedule → inject → heal → describe).

    Subclasses set ``spec`` (a :class:`FaultSpec`) and the two state
    transitions.  Parameter values arrive as constructor kwargs and are
    validated against ``spec.params`` plus the shared ``start``/``stop``;
    resolved values live in ``self.p``.  Lifecycle state is owned by the
    :class:`~repro.faults.plan.FaultPlan` driving the fault.
    """

    spec: ClassVar[FaultSpec]

    def __init__(self, **params: Any):
        valid = {**_COMMON_PARAMS, **self.spec.params}
        unknown = set(params) - set(valid)
        if unknown:
            raise FaultError(
                f"unknown param(s) for fault {self.spec.name!r}: "
                f"{sorted(unknown)}; valid: {sorted(valid)}"
            )
        self.p: dict[str, Any] = {
            name: params.get(name, spec.default) for name, spec in valid.items()
        }
        start, stop = self.p["start"], self.p["stop"]
        if start < 0:
            raise FaultError(f"fault {self.spec.name!r}: start must be >= 0")
        if stop is not None and stop <= start:
            # heal-before-inject (or at the same instant) is a plan bug,
            # not a runtime surprise — reject it at construction
            raise FaultError(
                f"fault {self.spec.name!r}: stop ({stop}) must be after "
                f"start ({start}) — cannot heal before injecting"
            )
        self.state = PENDING
        #: simulated time at which inject() actually fired (None while
        #: pending) — lets the plan tell a fault that raced the
        #: diagnosis window apart from one that fired during the run
        self.injected_at: Optional[float] = None

    # -- the two state transitions -----------------------------------------

    @abc.abstractmethod
    def inject(self, ctx: FaultContext) -> None:
        """Apply the disturbance to the running system."""

    @abc.abstractmethod
    def heal(self, ctx: FaultContext) -> None:
        """Undo the disturbance (restore what inject() saved)."""

    def finalize(self, ctx: FaultContext) -> None:
        """End-of-run cleanup hook (default: nothing).

        Called by the plan once the scenario's run phase is over —
        *without* healing: the fault's effects on the network stay as
        they are for the diagnosis phase, but any internal event
        process it drives (a flapper's timer) must stop scheduling
        past the run window.
        """

    # -- scheduling ---------------------------------------------------------

    def schedule(self, ctx: FaultContext) -> None:
        """Register this fault's inject/heal events with the simulator.

        The default schedule fires :meth:`inject` at ``start`` and
        :meth:`heal` at ``stop`` (when set).  Faults with their own
        internal event process (e.g. a flapper) still use this entry
        point — their ``inject`` starts the process, ``heal`` stops it.
        """
        sim = ctx.network.sim
        sim.schedule_at(self.p["start"], self._fire_inject, ctx)
        if self.p["stop"] is not None:
            sim.schedule_at(self.p["stop"], self._fire_heal, ctx)

    def _fire_inject(self, ctx: FaultContext) -> None:
        if self.state != PENDING:
            raise FaultError(
                f"fault {self.spec.name!r} injected twice (state {self.state})"
            )
        self.inject(ctx)
        self.state = ACTIVE
        self.injected_at = ctx.network.sim.now

    def _fire_heal(self, ctx: FaultContext) -> None:
        if self.state != ACTIVE:
            raise FaultError(
                f"fault {self.spec.name!r} healed in state {self.state!r} "
                f"(must be active)"
            )
        self.heal(ctx)
        self.state = HEALED

    # -- description --------------------------------------------------------

    def describe(self, *, state: Optional[str] = None) -> str:
        """One line: what this instance does, when, to what.

        ``state`` overrides the lifecycle state label — the plan uses
        it to report :data:`ACTIVE_DURING_DIAGNOSIS` for faults whose
        injection raced the analyzer's query window.
        """
        own = {
            k: v
            for k, v in sorted(self.p.items())
            if k not in ("start", "stop") and v not in (None, "", ())
        }
        args = ", ".join(f"{k}={v}" for k, v in own.items())
        when = f"@{self.p['start'] * 1e3:.1f}ms"
        if self.p["stop"] is not None:
            when += f"-{self.p['stop'] * 1e3:.1f}ms"
        label = state if state is not None else self.state
        return f"{self.spec.name}({args}) {when} [{label}]"


class FaultRegistry:
    """Name → fault-class registry (same idiom as the scenario registry)."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Fault]] = {}

    def register(self, cls: type[Fault]) -> type[Fault]:
        """Class decorator: add ``cls`` under its spec name."""
        spec = getattr(cls, "spec", None)
        if not isinstance(spec, FaultSpec):
            raise FaultError(f"{cls.__name__} must define a FaultSpec 'spec'")
        if spec.name in self._classes:
            raise FaultError(f"duplicate fault name {spec.name!r}")
        overlap = set(spec.params) & set(_COMMON_PARAMS)
        if overlap:
            raise FaultError(
                f"fault {spec.name!r} redeclares shared param(s) {sorted(overlap)}"
            )
        self._classes[spec.name] = cls
        return cls

    def get(self, name: str) -> type[Fault]:
        try:
            return self._classes[name]
        except KeyError:
            raise FaultError(
                f"unknown fault {name!r}; known: {', '.join(self.names())}"
            ) from None

    def create(self, name: str, **params: Any) -> Fault:
        """Instantiate a registered fault by name."""
        return self.get(name)(**params)

    def names(self) -> list[str]:
        return sorted(self._classes)

    def specs(self) -> list[FaultSpec]:
        return [self._classes[n].spec for n in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry every fault module registers into.
FAULTS = FaultRegistry()
register_fault = FAULTS.register
