"""ECMP hash polarization: a port-blind hash collapses multipath onto
one egress.

The classic polarization bug: a switch whose ECMP hash ignores the L4
ports (or reuses the exact function of the tier above it) sends every
flow of a host pair down the same spine, no matter how many connections
they open.  Utilization collapses to 1/n of the fabric while the other
spines idle.  The analyzer diagnoses it from host telemetry alone: the
per-egress flow census at the branch switch concentrates on one egress
even though the topology offers several — and the observed trajectories
deviate from the paths a healthy hash would have assigned (path
non-conformance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_polarization
from ..analyzer.netdebug import check_path_conformance
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..simnet.device import _flow_hash
from ..simnet.packet import PRIO_LOW, PROTO_UDP, FlowKey
from ..simnet.topology import Network, build_leaf_spine
from ..simnet.traffic import UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register


@dataclass
class PolarizationResult:
    """Output of one polarization run."""

    deployment: SwitchPointerDeployment
    network: Network
    polarized: bool
    branch_switch: str
    flows: list[FlowKey] = field(default_factory=list)
    #: healthy-hash spine assignment (what ECMP *should* have done)
    expected_spine: dict[FlowKey, str] = field(default_factory=dict)
    spine_tx_bytes: dict[str, int] = field(default_factory=dict)
    off_policy_flows: int = 0


def _port_blind(flow: FlowKey) -> int:
    """The buggy hash: blind to sport/dport (polarizes per host pair)."""
    return _flow_hash(FlowKey(flow.src, flow.dst, 0, 0, flow.proto))


@register
class PolarizationScenario(Scenario):
    """Many connections of one host pair, one (buggy) hashing leaf.

    ``n_flows`` UDP flows run h0_0→h1_0 over a 2-leaf/2-spine fabric,
    with source ports chosen so a *healthy* 5-tuple hash splits them
    evenly across the spines.  With ``polarized=True`` the source leaf
    gets the port-blind hash and every flow lands on one spine.
    """

    spec = ScenarioSpec(
        name="polarization",
        summary="a port-blind ECMP hash sends every flow of a host pair "
                "down one spine",
        paper_ref="§2.4 extended use case; ECMP hash-polarization "
                  "faults in multi-tier clos fabrics",
        expected_diagnosis="ecmp-polarization (suspect: the overloaded "
                           "spine)",
        knobs={
            "n_flows": Knob(8, "parallel connections h0_0→h1_0"),
            "polarized": Knob(True, "install the port-blind hash on "
                                    "leaf0 (False = healthy control)"),
            "duration": Knob(0.030, "per-flow CBR duration (s)"),
            "rate_mbps": Knob(50.0, "per-flow CBR rate (Mbit/s)"),
            "skew_threshold": Knob(0.8, "egress share that counts as "
                                        "polarized"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
        },
        aliases=("ecmp-polarization",),
        smoke_knobs={"n_flows": 4, "duration": 0.020},
    )

    def build(self) -> None:
        p = self.p
        n = p["n_flows"]
        net = build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy
        self.branch_switch = "leaf0"
        src, dst = "h0_0", "h1_0"

        # ECMP candidate order at leaf0 follows link creation order:
        # spine0 first, then spine1 (see Network.compute_routes).
        spines = ("spine0", "spine1")

        # Pick source ports whose *healthy* hash alternates spines, so
        # the control run is provably balanced and the polarized run's
        # skew is entirely the bad hash's doing.
        self.flows: list[FlowKey] = []
        self.expected_spine: dict[FlowKey, str] = {}
        want = 0
        sport = 9000
        rate = p["rate_mbps"] * 1e6
        while len(self.flows) < n:
            flow = FlowKey(src, dst, sport, sport, PROTO_UDP)
            healthy = _flow_hash(flow) % 2
            if healthy == want:
                UdpSink(self.network.hosts[dst], sport)
                UdpCbrSource(net.sim, net.hosts[src], dst, sport=sport,
                             dport=sport, rate_bps=rate,
                             packet_size=1500, priority=PRIO_LOW,
                             start=0.0, duration=p["duration"])
                self.flows.append(flow)
                self.expected_spine[flow] = spines[healthy]
                want = 1 - want
            sport += 1

        if p["polarized"]:
            net.switches["leaf0"].ecmp_hash = _port_blind

    def run(self) -> None:
        self.network.run(until=self.p["duration"] + 0.010)

    def collect(self) -> dict:
        net = self.network
        leaf0 = net.switches["leaf0"]
        spine_bytes = {
            sp: net.link_between("leaf0", sp).iface_of(leaf0).tx_bytes
            for sp in ("spine0", "spine1")}
        # cross-check: observed trajectories vs the healthy assignment
        expected_paths = {
            flow: ["leaf0", spine, "leaf1"]
            for flow, spine in self.expected_spine.items()}
        conformance = check_path_conformance(
            self.deployment.analyzer, expected_paths=expected_paths)
        self.payload = PolarizationResult(
            deployment=self.deployment, network=net,
            polarized=self.p["polarized"],
            branch_switch=self.branch_switch, flows=list(self.flows),
            expected_spine=dict(self.expected_spine),
            spine_tx_bytes=spine_bytes,
            off_policy_flows=len(conformance.violations))
        return {
            "spine_tx_bytes": spine_bytes,
            "off_policy_flows": self.payload.off_policy_flows,
            "flow_count": len(self.flows),
        }

    def diagnose(self) -> list[Verdict]:
        deploy = self.deployment
        last_epoch = deploy.datapaths["leaf0"].clock.epoch_of(
            self.network.sim.now)
        return [diagnose_polarization(
            deploy.analyzer, self.branch_switch,
            epochs=EpochRange(0, last_epoch),
            skew_threshold=self.p["skew_threshold"])]


register_sweep(SweepSpec(
    scenario="polarization",
    summary="port-blind hash skew flagged as the parallel-connection "
            "count scales",
    expect_problem="ecmp-polarization",
    axes={
        "flows": "n_flows",
        "alpha_ms": "alpha_ms",
        "rate_mbps": "rate_mbps",
    },
    default_grid={"flows": (8, 32, 128)},
    nightly_grid={"flows": (8, 32)},
))
