"""ExperimentReport aggregation and schema validation — including the
regression contract that a fault scheduled past the run window surfaces
as pending and is counted, never silently dropped."""

import copy

import pytest

from repro.experiment import (
    EXPERIMENTS,
    Experiment,
    RunRecord,
    validate_experiment_report,
)


@pytest.fixture(scope="module")
def pending_fault_report(tmp_path_factory):
    """One tiny study whose agent-crash fault is scheduled far past the
    run window (crash_at >> duration), so it can never fire."""
    out_dir = tmp_path_factory.mktemp("pending") / "study"
    exp = Experiment(
        EXPERIMENTS.get("skew-degradation"),
        grid={"skew_ms": [0.0]},
        reps=2,
        extra_knobs={"crash_host": "h1_0", "crash_at": 1.0},
    )
    report = exp.execute(out_dir)
    assert report is not None
    return out_dir, report


class TestPendingFaults:
    def test_pending_fault_surfaces_in_run_artifacts(
        self, pending_fault_report
    ):
        out_dir, _ = pending_fault_report
        import json

        for path in sorted((out_dir / "runs").glob("point*.json")):
            doc = json.loads(path.read_text(encoding="utf-8"))
            plan = doc["result"]["measurements"]["fault_plan"]
            assert any(line.endswith("[pending]") for line in plan), plan

    def test_pending_fault_counted_by_aggregation(
        self, pending_fault_report
    ):
        """A never-fired fault must show up in the per-run records, the
        per-point aggregate, and the summary — not vanish."""
        _, report = pending_fault_report
        doc = report.to_json()
        assert validate_experiment_report(doc) == []
        assert all(run["pending_faults"] >= 1 for run in doc["runs"])
        point = doc["points"][0]
        assert point["pending_faults"] == sum(
            run["pending_faults"] for run in doc["runs"]
        )
        assert doc["summary"]["pending_faults"] == point["pending_faults"]
        assert doc["summary"]["pending_faults"] >= 2

    def test_armed_fault_is_not_pending(self, tmp_path):
        """The control: the same fault scheduled inside the window heals
        and contributes zero to the pending count."""
        exp = Experiment(
            EXPERIMENTS.get("skew-degradation"),
            grid={"skew_ms": [0.0]},
            reps=1,
            extra_knobs={"crash_host": "h1_0", "crash_at": 0.005},
        )
        report = exp.execute(tmp_path)
        assert report.to_json()["summary"]["pending_faults"] == 0


class TestRunRecord:
    def test_ok_requires_no_error_and_correct_diagnosis(self):
        record = RunRecord(
            point=0, rep=0, params={}, seed=1, diagnosis_ok=True
        )
        assert record.ok
        assert not RunRecord(
            point=0, rep=0, params={}, seed=1,
            diagnosis_ok=True, error="boom",
        ).ok
        assert not RunRecord(
            point=0, rep=0, params={}, seed=1, diagnosis_ok=False
        ).ok


class TestValidator:
    @pytest.fixture(scope="class")
    def valid_doc(self, tmp_path_factory):
        exp = Experiment(
            EXPERIMENTS.get("skew-degradation"),
            grid={"skew_ms": [0.0]},
            reps=1,
        )
        report = exp.execute(tmp_path_factory.mktemp("valid") / "study")
        return report.to_json()

    def test_valid_report_passes(self, valid_doc):
        assert validate_experiment_report(valid_doc) == []

    def test_unknown_top_level_field_rejected(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        doc["surprise"] = 1
        assert any(
            "unknown top-level field 'surprise'" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_missing_field_rejected(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        del doc["grid"]
        assert any(
            "grid" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_bool_is_not_an_int(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        doc["runs"][0]["seed"] = True
        assert any(
            "seed" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_stat_triple_enforced(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        del doc["points"][0]["accuracy"]["min"]
        assert any(
            "missing 'min'" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_summary_consistency_enforced(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        doc["summary"]["runs"] += 1
        assert any(
            "disagrees" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_wrong_schema_id_rejected(self, valid_doc):
        doc = copy.deepcopy(valid_doc)
        doc["schema"] = "switchpointer.experiment-report/v0"
        assert any(
            "unknown schema" in problem
            for problem in validate_experiment_report(doc)
        )

    def test_report_excludes_wall_clock(self, valid_doc):
        """The byte-identical-resume contract: nothing host-dependent
        crosses from the run artifacts into the report."""
        for run in valid_doc["runs"]:
            assert "wall_time_s" not in run
            assert "phase_s" not in run
            assert "ingest_records_per_s" not in run
