"""End-host flow-record storage (§4.2, §6 prototype description).

The paper's OVS module keeps, per flow: the 5-tuple, the list of
switchIDs on the path, a series of epoch ranges corresponding to each
switchID, byte/packet counts, and a DSCP value as flow priority —
"initially maintained in memory and flushed to a local storage,
implemented using MongoDB".  We reproduce the same record schema with an
in-memory table plus a JSON-lines spill file standing in for MongoDB
(the storage backend is irrelevant to system behaviour; see DESIGN.md).

Beyond the flat table, the store maintains a **per-switch inverted
index** so the (switchID, epochID) header filter of §3 no longer scans
every record on the host.  Index invariants:

* ``_by_switch[sw]`` holds exactly the live records ``r`` with
  ``sw in r.epoch_ranges`` — membership is added the moment a record
  first observes ``sw`` (via the record's store listener) and removed
  when the record is evicted or replaced.
* ``_sorted[sw]``, when present, is a cache of the bucket ordered by
  ``(epoch lo at sw, record creation seq)``; it is dropped whenever the
  bucket's membership changes or any member's ``lo`` at ``sw`` moves
  (``lo`` only ever decreases under :meth:`EpochRange.union`), and
  rebuilt lazily on the next windowed query.  ``hi`` extensions never
  invalidate it: queries read ``hi`` from the live record.
* query results are ordered by record creation sequence, which equals
  the flat table's insertion order — indexed queries return
  byte-identical payloads to a linear scan of ``_records``.
"""

from __future__ import annotations

import heapq
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey


@dataclass
class FlowRecord:
    """Telemetry accumulated for one flow at its destination host.

    ``epoch_ranges`` maps switchID → the union of per-packet epoch
    ranges at that switch; ``bytes_by_epoch`` counts payload bytes per
    *observed* (embedding-switch) epochID — the "<switchID, a list of
    epochIDs, a list of byte counts per epoch>" tuples of §5.1 are
    assembled from these two.

    A record owned by a :class:`FlowRecordStore` carries a back-pointer
    (``_store``) so :meth:`observe` can keep the store's per-switch
    index in sync; standalone records (tests, deserialization) work
    unchanged with no store attached.
    """

    flow: FlowKey
    switch_path: list[str] = field(default_factory=list)
    epoch_ranges: dict[str, EpochRange] = field(default_factory=dict)
    bytes_by_epoch: dict[int, int] = field(default_factory=dict)
    packets: int = 0
    bytes: int = 0
    priority: int = 0
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None
    _store: Optional["FlowRecordStore"] = field(
        default=None, repr=False, compare=False)
    _seq: int = field(default=0, repr=False, compare=False)
    #: the owning store's ingest count when this record last absorbed a
    #: packet — the watermark delta queries (``since_seq``) filter on.
    #: Records mutate in place as epoch ranges widen, so incremental
    #: readers key on "updated since my last watermark", not creation.
    _update_seq: int = field(default=0, repr=False, compare=False)

    def observe(self, *, nbytes: int, t: float, priority: int,
                switch_path: list[str],
                ranges: dict[str, EpochRange],
                observed_epoch: Optional[int]) -> None:
        """Fold one decoded packet into the record."""
        self.packets += 1
        self.bytes += nbytes
        self.priority = priority
        if self.first_seen is None:
            self.first_seen = t
        self.last_seen = t
        if switch_path:
            self.switch_path = list(switch_path)
        new_switches: list[str] = []
        lo_moved: list[str] = []
        for sw, rng in ranges.items():
            prev = self.epoch_ranges.get(sw)
            if prev is None:
                self.epoch_ranges[sw] = rng
                new_switches.append(sw)
                continue
            merged = prev.union(rng)
            if merged != prev:
                self.epoch_ranges[sw] = merged
                if merged.lo != prev.lo:
                    lo_moved.append(sw)
        if self._store is not None and (new_switches or lo_moved):
            self._store._on_epochs_updated(self, new_switches, lo_moved)
        if observed_epoch is not None:
            self.bytes_by_epoch[observed_epoch] = (
                self.bytes_by_epoch.get(observed_epoch, 0) + nbytes)

    def epochs_at(self, switch: str) -> Optional[EpochRange]:
        return self.epoch_ranges.get(switch)

    def traversed(self, switch: str) -> bool:
        return switch in self.epoch_ranges

    # -- (de)serialization for the disk spill --------------------------------

    def to_json(self) -> dict:
        return {
            "flow": list(self.flow),
            "switch_path": self.switch_path,
            "epoch_ranges": {sw: [r.lo, r.hi]
                             for sw, r in self.epoch_ranges.items()},
            "bytes_by_epoch": {str(e): b
                               for e, b in self.bytes_by_epoch.items()},
            "packets": self.packets,
            "bytes": self.bytes,
            "priority": self.priority,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FlowRecord":
        rec = cls(flow=FlowKey(*doc["flow"]))
        rec.switch_path = list(doc["switch_path"])
        rec.epoch_ranges = {sw: EpochRange(lo, hi)
                            for sw, (lo, hi) in doc["epoch_ranges"].items()}
        rec.bytes_by_epoch = {int(e): b
                              for e, b in doc["bytes_by_epoch"].items()}
        rec.packets = doc["packets"]
        rec.bytes = doc["bytes"]
        rec.priority = doc["priority"]
        rec.first_seen = doc["first_seen"]
        rec.last_seen = doc["last_seen"]
        return rec


def _record_seq(rec: "FlowRecord") -> int:
    return rec._seq


class SeqCounter:
    """Monotonic record-creation counter, shareable across stores.

    Query results are ordered by record-creation sequence; a
    :class:`~repro.hostd.sharded.ShardedRecordStore` hands one counter
    to all of its shards so the merged order equals the order a single
    flat store would have produced.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def take(self) -> int:
        v = self.value
        self.value += 1
        return v


def _staleness(rec: FlowRecord) -> tuple[float, int]:
    # a record with no observation yet is the one being created right
    # now — never the eviction victim.  Ties on last_seen (simultaneous
    # delivery events are common) break by creation sequence, which
    # keeps flat and sharded stores choosing identical victims: the
    # flat store's candidate order is already seq order, the sharded
    # store's is shard-grouped, so the tie-break must be explicit.
    t = rec.last_seen if rec.last_seen is not None else float("inf")
    return (t, rec._seq)


class FlowRecordStore:
    """Per-host table of :class:`FlowRecord`, with optional disk spill.

    ``max_records`` bounds the in-memory table the way the paper's OVS
    module does ("initially maintained in memory and flushed to a local
    storage"): when the bound is exceeded, the stalest records (by
    ``last_seen``) are spilled to disk (or dropped if no spill path is
    configured) until the table is back under the bound.

    The per-switch inverted index (module docstring) makes
    :meth:`flows_through` cost O(records at the switch) instead of
    O(records on the host).
    """

    def __init__(self, host_name: str,
                 spill_path: Optional[Path] = None,
                 max_records: Optional[int] = None,
                 seq_counter: Optional[SeqCounter] = None):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.host_name = host_name
        self.spill_path = Path(spill_path) if spill_path else None
        self.max_records = max_records
        self._records: dict[FlowKey, FlowRecord] = {}
        #: switchID -> {flow -> record}: exactly the records that
        #: traversed the switch (index invariant 1)
        self._by_switch: dict[str, dict[FlowKey, FlowRecord]] = {}
        #: switchID -> ([lo epochs], [(lo, seq, record)]) sorted cache
        self._sorted: dict[str, tuple[list[int],
                                      list[tuple[int, int, FlowRecord]]]] = {}
        self._seq = seq_counter if seq_counter is not None else SeqCounter()
        self._deferring = False
        #: Optional hook run before any read-side entry point (`get`,
        #: `scan_through`, ...).  The host agent points it at its
        #: batched-ingest flush so *every* consumer — query engine,
        #: triggers, analyzer apps reading ``agent.store`` directly —
        #: observes a table that has seen all sniffed packets.
        self.before_read: Optional[Callable[[], object]] = None
        self.peak_records = 0
        self.spilled = 0
        self.evicted = 0
        #: decoded packets folded into the table (ingest throughput)
        self.ingested = 0

    def record_for(self, flow: FlowKey) -> FlowRecord:
        rec = self._records.get(flow)
        if rec is None:
            rec = FlowRecord(flow=flow, _store=self,
                             _seq=self._seq.take())
            self._records[flow] = rec
            if len(self._records) > self.peak_records:
                self.peak_records = len(self._records)
            if (self.max_records is not None and not self._deferring
                    and len(self._records) > self.max_records):
                self._evict()
        return rec

    # -- batched ingestion ---------------------------------------------------

    def begin_batch(self) -> None:
        """Defer eviction checks until :meth:`end_batch`.

        Batched ingestion (``hostd.agent``) folds many decoded packets
        into records back-to-back; checking the memory bound once per
        batch instead of once per packet is what makes the bound
        affordable at thousand-host sweep scale.  ``peak_records`` still
        observes the within-batch high-water mark.
        """
        self._deferring = True

    def end_batch(self) -> None:
        self._deferring = False
        if (self.max_records is not None
                and len(self._records) > self.max_records):
            self._evict()

    def ingest(self, flow: FlowKey, *, nbytes: int, t: float,
               priority: int, switch_path: list[str],
               ranges: dict[str, EpochRange],
               observed_epoch: Optional[int]) -> FlowRecord:
        """One decoded packet → record update (decoder entry point)."""
        self.ingested += 1
        rec = self.record_for(flow)
        rec._update_seq = self.ingested
        rec.observe(nbytes=nbytes, t=t, priority=priority,
                    switch_path=switch_path, ranges=ranges,
                    observed_epoch=observed_epoch)
        return rec

    # -- inverted-index maintenance ------------------------------------------

    def _on_epochs_updated(self, rec: FlowRecord, new_switches: list[str],
                           lo_moved: list[str]) -> None:
        """Record listener: keep per-switch membership + sort fresh."""
        for sw in new_switches:
            self._by_switch.setdefault(sw, {})[rec.flow] = rec
            self._sorted.pop(sw, None)
        for sw in lo_moved:
            self._sorted.pop(sw, None)

    def _index_record(self, rec: FlowRecord) -> None:
        """Adopt a fully-formed record (deserialized from disk)."""
        rec._store = self
        for sw in rec.epoch_ranges:
            self._by_switch.setdefault(sw, {})[rec.flow] = rec
            self._sorted.pop(sw, None)

    def _unindex_record(self, rec: FlowRecord) -> None:
        rec._store = None
        for sw in rec.epoch_ranges:
            bucket = self._by_switch.get(sw)
            if bucket is not None:
                bucket.pop(rec.flow, None)
                if not bucket:
                    del self._by_switch[sw]
            self._sorted.pop(sw, None)

    def _sorted_bucket(self, switch: str
                       ) -> tuple[list[int],
                                  list[tuple[int, int, FlowRecord]]]:
        cached = self._sorted.get(switch)
        if cached is None:
            entries = sorted(
                (rec.epoch_ranges[switch].lo, rec._seq, rec)
                for rec in self._by_switch.get(switch, {}).values())
            cached = ([lo for lo, _, _ in entries], entries)
            self._sorted[switch] = cached
        return cached

    # -- eviction --------------------------------------------------------------

    def _evict(self, *, spill: bool = True) -> None:
        """Spill/drop stalest records until under the memory bound."""
        assert self.max_records is not None
        excess = len(self._records) - self.max_records
        if excess <= 0:
            return
        victims = heapq.nsmallest(excess, self._records.values(),
                                  key=_staleness)
        self._drop_records(victims, spill=spill)

    def _drop_records(self, victims: list[FlowRecord], *,
                      spill: bool = True) -> None:
        """Spill (optionally) then unindex+drop the given records.

        Shared by the local eviction policy above and by
        :class:`~repro.hostd.sharded.ShardedRecordStore`, whose global
        memory bound picks victims across shards and hands each shard
        its share — the index bookkeeping is identical either way.
        """
        if spill and self.spill_path is not None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            with self.spill_path.open("a", encoding="utf-8") as fh:
                for rec in victims:
                    fh.write(json.dumps(rec.to_json()) + "\n")
                    self.spilled += 1
        for rec in victims:
            del self._records[rec.flow]
            self._unindex_record(rec)
            self.evicted += 1

    def drop_all(self) -> int:
        """Lose every in-memory record without spilling (crash loss).

        Unlike eviction this is not an orderly spill: nothing reaches
        disk and the ``evicted``/``spilled`` counters are untouched —
        the records are simply gone, which is what the agent-crash
        fault models.  Returns how many were lost.
        """
        lost = len(self._records)
        self._records.clear()
        self._by_switch.clear()
        self._sorted.clear()
        return lost

    def _notify_read(self) -> None:
        if self.before_read is not None:
            self.before_read()

    def get(self, flow: FlowKey) -> Optional[FlowRecord]:
        self._notify_read()
        return self._records.get(flow)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self._records.values())

    # -- the §3 header filter ----------------------------------------------

    def flows_through(self, switch: str,
                      epochs: Optional[EpochRange] = None
                      ) -> list[FlowRecord]:
        """Records whose path crossed ``switch`` (in ``epochs``, if given).

        This is the header-filtering primitive of §3: "filter the headers
        for packets that match a (switchID, epochID) pair".  Served from
        the inverted index; results come back in record-creation order,
        identical to a linear scan of the flat table.
        """
        return self.scan_through(switch, epochs)[0]

    def scan_through(self, switch: str,
                     epochs: Optional[EpochRange] = None, *,
                     since_seq: Optional[int] = None
                     ) -> tuple[list[FlowRecord], int]:
        """:meth:`flows_through` plus the number of records examined.

        The second element is the query-execution cost the RPC latency
        model charges: the size of the index bucket actually inspected,
        not the size of the whole table.

        ``since_seq`` turns the scan into a **delta query**: only
        records updated after that ingest watermark (the store's
        ``ingested`` count at the previous read) are returned.  Because
        a record's epoch range at a switch only ever widens, matching
        is monotone — re-reading deltas and merging by flow reproduces
        exactly the one-shot answer at the same watermark.
        """
        self._notify_read()
        bucket = self._by_switch.get(switch)
        if not bucket:
            return [], 0
        if epochs is None:
            matches = sorted(bucket.values(), key=_record_seq)
            scanned = len(matches)
            if since_seq is not None:
                matches = [rec for rec in matches
                           if rec._update_seq > since_seq]
            return matches, scanned
        # sorted-by-lo cache + bisect: records with lo > epochs.hi can
        # never intersect the window and are skipped without a look
        los, entries = self._sorted_bucket(switch)
        cut = bisect_right(los, epochs.hi)
        hits = [(seq, rec) for _, seq, rec in entries[:cut]
                if rec.epoch_ranges[switch].hi >= epochs.lo
                and (since_seq is None or rec._update_seq > since_seq)]
        hits.sort()
        return [rec for _, rec in hits], cut

    def linear_flows_through(self, switch: str,
                             epochs: Optional[EpochRange] = None
                             ) -> list[FlowRecord]:
        """Reference O(N) scan of the flat table (pre-index behaviour).

        Kept as the equivalence oracle for the index property tests and
        the baseline for the query benchmarks; not used on the query
        path.
        """
        out = []
        for rec in self._records.values():
            rng = rec.epochs_at(switch)
            if rng is None:
                continue
            if epochs is not None and not rng.intersects(epochs):
                continue
            out.append(rec)
        return out

    # -- MongoDB-substitute spill --------------------------------------------

    def flush_to_disk(self) -> int:
        """Append all in-memory records to the JSON-lines spill file."""
        if self.spill_path is None:
            raise RuntimeError("no spill path configured")
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("a", encoding="utf-8") as fh:
            for rec in self._records.values():
                fh.write(json.dumps(rec.to_json()) + "\n")
                self.spilled += 1
        return self.spilled

    @classmethod
    def load_from_disk(cls, host_name: str, spill_path: Path, *,
                       max_records: Optional[int] = None
                       ) -> "FlowRecordStore":
        """Rebuild a store from a spill file.

        ``max_records`` carries the memory bound over to the reloaded
        store: if the file holds more records than the bound, the
        stalest surplus is dropped (counted in ``evicted``) — never
        re-appended to the file being read.
        """
        store = cls(host_name, spill_path=spill_path,
                    max_records=max_records)
        with Path(spill_path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                store._adopt_json_line(line)
        store.peak_records = max(store.peak_records, len(store._records))
        if max_records is not None:
            store._evict(spill=False)
        return store

    def _adopt_json_line(self, line: str) -> None:
        """Replay one spill-file line into the table (reload path)."""
        self._adopt_record(FlowRecord.from_json(json.loads(line)))

    def _adopt_record(self, rec: FlowRecord) -> bool:
        """Adopt a deserialized record; True when its flow is new here."""
        prev = self._records.get(rec.flow)
        if prev is not None:
            # a later spill of the same flow supersedes the
            # earlier one, keeping its position in the table
            self._unindex_record(prev)
            rec._seq = prev._seq
        else:
            rec._seq = self._seq.take()
        self._records[rec.flow] = rec
        self._index_record(rec)
        return prev is None
