"""Property-based tests: queue conservation and priority invariants."""

from hypothesis import given, settings, strategies as st

from repro.simnet.packet import make_udp
from repro.simnet.queues import DropTailFIFO, StrictPriorityQueue

ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq"),
                  st.integers(min_value=64, max_value=1500),
                  st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("deq"), st.just(0), st.just(0))),
    max_size=200)


def run_ops(q, sequence):
    enqueued = dequeued = dropped = 0
    for op, size, prio in sequence:
        if op == "enq":
            pkt = make_udp("a", "b", 1, 2, size, priority=prio)
            if q.enqueue(pkt):
                enqueued += size
            else:
                dropped += size
        else:
            pkt = q.dequeue()
            if pkt is not None:
                dequeued += pkt.size
    return enqueued, dequeued, dropped


@settings(max_examples=100, deadline=None)
@given(sequence=ops, capacity=st.integers(min_value=1500, max_value=8000))
def test_fifo_byte_conservation(sequence, capacity):
    q = DropTailFIFO(capacity_bytes=capacity)
    enqueued, dequeued, dropped = run_ops(q, sequence)
    assert enqueued == dequeued + q.depth_bytes
    assert q.depth_bytes <= capacity
    assert q.stats.bytes_dropped == dropped


@settings(max_examples=100, deadline=None)
@given(sequence=ops, capacity=st.integers(min_value=1500, max_value=8000))
def test_priority_byte_conservation(sequence, capacity):
    q = StrictPriorityQueue(levels=3, capacity_bytes=capacity)
    enqueued, dequeued, dropped = run_ops(q, sequence)
    assert enqueued == dequeued + q.depth_bytes
    assert q.depth_bytes <= capacity


@settings(max_examples=100, deadline=None)
@given(sizes_prios=st.lists(
    st.tuples(st.integers(min_value=64, max_value=1500),
              st.integers(min_value=0, max_value=2)),
    min_size=1, max_size=50))
def test_priority_drain_order_is_sorted(sizes_prios):
    """Draining a strict-priority queue yields non-increasing classes."""
    q = StrictPriorityQueue(levels=3, capacity_bytes=10**9)
    for size, prio in sizes_prios:
        q.enqueue(make_udp("a", "b", 1, 2, size, priority=prio))
    drained = []
    while True:
        pkt = q.dequeue()
        if pkt is None:
            break
        drained.append(pkt.priority)
    assert drained == sorted(drained, reverse=True)


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(min_value=64, max_value=1500),
                      min_size=1, max_size=50))
def test_fifo_preserves_order(sizes):
    q = DropTailFIFO(capacity_bytes=10**9)
    pkts = [make_udp("a", "b", i, 2, s) for i, s in enumerate(sizes)]
    for p in pkts:
        q.enqueue(p)
    out = []
    while True:
        p = q.dequeue()
        if p is None:
            break
        out.append(p)
    assert out == pkts
