"""The committed tree passes every rule with no baseline escape hatch.

This is the same check CI's static-analysis job runs; keeping it in
tier-1 means a violation fails locally in seconds, not at PR time.
"""

from pathlib import Path

from tools.reprolint import BASELINE_NAME, run_lint

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    violations = run_lint(REPO, paths=("src",))
    assert violations == [], "\n".join(v.render() for v in violations)


def test_no_baseline_is_committed():
    """The baseline is an onboarding ratchet, not a parking lot."""
    assert not (REPO / BASELINE_NAME).exists()
