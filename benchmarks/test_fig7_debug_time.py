"""Fig 7 — debugging time for priority-based flow contention.

Paper: the full loop — detection (<1 ms), alert to analyzer (2-3 ms),
pointer retrieval (7-8 ms per switch), diagnosis (grows with the number
of consulted hosts) — completes in under 100 ms for m ∈ {1,2,4,8,16}.

Shape checks: every phase within its paper band; diagnosis grows with
m; total < 100 ms for all m.
"""

import pytest

from repro.analyzer.apps import diagnose_contention
from repro.scenarios import run_contention_scenario

from benchmarks.reporting import emit

FLOW_COUNTS = [1, 2, 4, 8, 16]


def run_sweep():
    rows = {}
    for m in FLOW_COUNTS:
        res = run_contention_scenario(m, discipline="priority",
                                      duration=0.045, burst_start=0.010)
        assert res.alerts, f"no alert for m={m}"
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        rows[m] = verdict
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_debug_time_breakdown(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["m    detect_ms  alert_ms  pointer_ms  diagnosis_ms  "
             "total_ms  hosts  verdict"]
    for m in FLOW_COUNTS:
        v = rows[m]
        p = v.breakdown.parts
        lines.append(
            f"{m:3d}  {p['problem_detection'] * 1e3:9.2f}  "
            f"{p['alert_to_analyzer'] * 1e3:8.2f}  "
            f"{p['pointer_retrieval'] * 1e3:10.2f}  "
            f"{p['diagnosis'] * 1e3:12.2f}  "
            f"{v.total_time_s * 1e3:8.1f}  "
            f"{len(v.hosts_consulted):5d}  {v.problem}")
    lines.append("(paper: total < 100 ms; detection <1 ms; alert 2-3 ms; "
                 "~7-8 ms per pointer; diagnosis grows with hosts)")
    emit("fig7_debug_time", lines)

    for m, v in rows.items():
        parts = v.breakdown.parts
        assert v.problem == "priority-contention"
        assert v.total_time_s < 0.100, m
        assert parts["problem_detection"] <= 0.001
        assert 0.002 <= parts["alert_to_analyzer"] <= 0.003
    # diagnosis latency grows with the number of UDP flows (each to a
    # different host, so more hosts are consulted)
    diag = [rows[m].breakdown.parts["diagnosis"] for m in FLOW_COUNTS]
    assert diag[0] < diag[-1]
    hosts = [len(rows[m].hosts_consulted) for m in FLOW_COUNTS]
    assert hosts == sorted(hosts)
    assert hosts[-1] >= 16
