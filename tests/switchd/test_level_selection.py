"""Tests for §4.1.1's level-selection access pattern.

Recent epochs answer from level 1; recycled windows escalate to coarser
levels; ancient windows fall back to the pushed (offline) history.  A
level must never give a *partial* answer.
"""

from repro.core.epoch import EpochClock, EpochRange
from repro.core.pointer import HierarchicalPointerStore
from repro.switchd.agent import SwitchAgent


def agent_with_history(alpha=4, k=3, n=50):
    clock = EpochClock(alpha)
    store = HierarchicalPointerStore(n, alpha=alpha, k=k)
    agent = SwitchAgent("S1", clock, store)
    return agent, store


class TestLevelEscalation:
    def test_recent_epoch_served_from_level1(self):
        agent, store = agent_with_history()
        store.update(epoch=100, slot=7)
        slots, source = agent.best_effort_slots(100, 100)
        assert slots == {7}
        assert source == "level1"

    def test_recycled_level1_escalates_to_level2(self):
        agent, store = agent_with_history(alpha=4, k=3)
        store.update(epoch=0, slot=7)
        # burn through level 1's four sets (epochs 1..4 reuse them) but
        # stay inside level 2's first window span (level-2 set covers
        # 4 epochs; its 4 sets span 16)
        for e in range(1, 6):
            store.update(epoch=e, slot=10 + e)
        assert store.snapshot(1, 0) is None  # level 1 recycled
        slots, source = agent.best_effort_slots(0, 0)
        assert source == "level2"
        assert 7 in slots  # coarser answer still names the host

    def test_coarser_answer_is_superset(self):
        """Escalation may add hosts (coarser window) but never lose."""
        agent, store = agent_with_history(alpha=4, k=3)
        for e in range(6):
            store.update(epoch=e, slot=e)
        slots, source = agent.best_effort_slots(0, 0)
        assert source == "level2"
        assert {0, 1, 2, 3} <= slots  # the whole level-2 window

    def test_ancient_window_falls_back_offline(self):
        agent, store = agent_with_history(alpha=4, k=2)
        store.update(epoch=0, slot=7)
        # move far beyond the top level's span (alpha^2 = 16 epochs)
        for e in range(1, 40):
            store.update(epoch=e, slot=1)
        slots, source = agent.best_effort_slots(0, 0)
        assert source == "offline"
        assert 7 in slots

    def test_untouched_window_answers_empty_without_escalating(self):
        """A window that was never written is *legitimately* empty —
        "no packets forwarded" — and level 1 can say so directly."""
        agent, store = agent_with_history()
        store.update(epoch=5, slot=3)
        slots, source = agent.best_effort_slots(500, 510)
        assert slots == set()
        assert source == "level1"

    def test_negative_epochs_are_empty(self):
        agent, store = agent_with_history()
        store.update(epoch=0, slot=3)
        slots, source = agent.best_effort_slots(-3, 0)
        assert slots == {3}
        assert source == "level1"

    def test_partial_level_coverage_escalates(self):
        """If level 1 retains only half the requested window, it must
        not answer — the full window comes from level 2."""
        agent, store = agent_with_history(alpha=4, k=3)
        store.update(epoch=0, slot=7)
        store.update(epoch=1, slot=8)
        # recycle epoch-0's set (epoch 4 maps to set 0) but keep epoch 1
        store.update(epoch=4, slot=9)
        assert store.snapshot(1, 0) is None
        assert store.snapshot(1, 1) is not None
        slots, source = agent.best_effort_slots(0, 1)
        assert source == "level2"
        assert {7, 8} <= slots


class TestAnalyzerAutoLevel:
    def test_hosts_for_level_none(self):
        from repro import SwitchPointerDeployment
        from repro.simnet.packet import make_udp
        from repro.simnet.topology import build_linear

        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=4, k=3,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        # traffic through epochs 1..6 recycles level-1 window 0
        for i in range(1, 7):
            net.sim.schedule_at(i * 0.004 + 0.001,
                                lambda: net.hosts["h1_1"].send(
                                    make_udp("h1_1", "h2_1", 2, 9, 400)))
        net.run()
        # strict level-1 query lost epoch 0 ...
        assert deploy.analyzer.hosts_for(
            "S1", EpochRange(0, 0), level=1) == []
        # ... automatic selection still answers from level 2
        hosts = deploy.analyzer.hosts_for("S1", EpochRange(0, 0),
                                          level=None)
        assert "h2_0" in hosts
