"""Incast microburst: N synchronized senders converge on one receiver.

The classic datacenter fan-in collapse (the workload Laminar-style TCP
studies target): a barrier-synchronized group of senders all answer one
aggregator at the same instant, overflowing the shallow buffer on the
receiver's last-hop downlink.  A long-lived victim flow to the same
receiver collapses with it; the analyzer classifies the event as incast
because every epoch-sharing culprit at the convergence switch targets
the victim's own destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_incast
from ..deployment import SwitchPointerDeployment
from ..hostd.triggers import VictimAlert
from ..simnet.packet import PRIO_LOW, FlowKey
from ..simnet.stats import ThroughputProbe
from ..simnet.topology import Network, build_leaf_spine
from ..simnet.traffic import TcpTimedFlow, UdpCbrSource, UdpSink
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS


@dataclass
class IncastResult:
    """Output of one incast run."""

    n_senders: int
    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    throughput: ThroughputProbe
    burst_start: float
    burst_duration: float
    receiver: str
    convergence_switch: str
    alerts: list[VictimAlert] = field(default_factory=list)
    tcp_timeouts: int = 0
    downlink_queue_drops: int = 0


@register
class IncastScenario(Scenario):
    """N-to-1 synchronized senders on a leaf-spine fabric.

    The receiver ``h0_0`` sits behind ``leaf0`` with default shallow
    (256 KB) FIFO port buffers; the victim TCP flow and all ``n_senders``
    burst flows originate behind ``leaf1``.  At ``burst_start`` every
    sender transmits at line rate simultaneously — the leaf0→h0_0
    downlink queue overflows and the victim collapses.
    """

    spec = ScenarioSpec(
        name="incast",
        summary="N-to-1 synchronized senders overflow the receiver's "
                "last-hop buffer",
        paper_ref="§2.4 extended use case; incast fan-in collapse "
                  "(PAPERS.md: datacenter TCP incast studies)",
        expected_diagnosis="incast (suspect: the receiver's leaf)",
        knobs={
            "n_senders": Knob(8, "synchronized burst senders"),
            "duration": Knob(0.040, "victim TCP flow duration (s)"),
            "burst_start": Knob(0.015, "synchronized burst onset (s)"),
            "burst_duration": Knob(0.002, "burst length (s)"),
            "min_fan_in": Knob(3, "culprits needed to call it incast"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
        },
        smoke_knobs={"n_senders": 4, "duration": 0.025,
                     "burst_start": 0.008},
    )

    def build(self) -> None:
        p = self.p
        n = p["n_senders"]
        # default (shallow, 256 KB) FIFO queues: incast needs buffer
        # overflow at the downlink, not priority starvation
        net = build_leaf_spine(n_leaves=2, n_spines=2,
                               hosts_per_leaf=n + 1, rate_bps=GBPS)
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy
        self.receiver = "h0_0"
        self.convergence_switch = "leaf0"

        self.tput = ThroughputProbe(window=0.001)
        self.victim_app = TcpTimedFlow(
            net.sim, net.hosts["h1_0"], net.hosts[self.receiver],
            duration=p["duration"], sport=100, dport=200,
            priority=PRIO_LOW, on_payload=self.tput.on_packet)
        self.victim = self.victim_app.sender.flow
        self.trigger = deploy.watch_flow(self.victim)

        # the synchronized responders: h1_1..h1_n all answer h0_0 at once
        for j in range(1, n + 1):
            UdpSink(net.hosts[self.receiver], 7000 + j)
            UdpCbrSource(net.sim, net.hosts[f"h1_{j}"], self.receiver,
                         sport=7000 + j, dport=7000 + j, rate_bps=GBPS,
                         priority=PRIO_LOW, start=p["burst_start"],
                         duration=p["burst_duration"])

    def run(self) -> None:
        self.network.run(until=self.p["duration"] + 0.020)
        self.trigger.stop()

    def collect(self) -> dict:
        p = self.p
        net = self.network
        leaf0 = net.switches["leaf0"]
        downlink = net.link_between("leaf0", self.receiver).iface_of(leaf0)
        self.payload = IncastResult(
            n_senders=p["n_senders"], deployment=self.deployment,
            network=net, victim=self.victim, throughput=self.tput,
            burst_start=p["burst_start"],
            burst_duration=p["burst_duration"],
            receiver=self.receiver,
            convergence_switch=self.convergence_switch,
            alerts=list(self.deployment.alerts()),
            tcp_timeouts=self.victim_app.sender.timeouts,
            downlink_queue_drops=downlink.queue.stats.dropped)
        return {
            "alerts": len(self.payload.alerts),
            "tcp_timeouts": self.payload.tcp_timeouts,
            "downlink_queue_drops": self.payload.downlink_queue_drops,
            "victim_rate_at_burst_gbps": round(
                self.tput.rate_at(p["burst_start"] + 0.0005), 3),
        }

    def diagnose(self) -> list[Verdict]:
        alerts = self.deployment.alerts()
        if not alerts:
            return []
        return [diagnose_incast(self.deployment.analyzer, alerts[0],
                                min_fan_in=self.p["min_fan_in"])]
