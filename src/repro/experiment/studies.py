"""The registered degradation studies.

Importing this module registers every experiment — the registration
idiom shared with scenarios/sweeps/faults.  The first two studies are
the curves the fault axes already expose (the paper's core robustness
claims):

* **skew-degradation** — diagnosis accuracy as clock skew crosses the
  ε-asynchrony bound.  Timestamp reconciliation tolerates pairwise skew
  up to ε = α (the epoch length, 10 ms at default knobs): victim skew
  of 5 ms puts pairwise divergence exactly at the bound, and past it
  ordering breaks down and accuracy falls off a cliff.
* **deploy-degradation** — accuracy as partial deployment thins
  switch coverage.  The underlying sweep pins a spare (`deploy_spare`)
  so its nightly grid stays green; the *study* unpins it (the point is
  to chart degradation, not avoid it), so stripping switches genuinely
  removes telemetry and accuracy decays with coverage, seed by seed.
* **rpc-latency-degradation** — *online* diagnosis as per-RPC latency
  stretches the analyzer's query window across a mid-diagnosis agent
  crash.  At zero extra latency the verdict lands before the crash
  (complete, accurate); as latency grows the crash races the window —
  first the verdict merely degrades (the missing host named, the
  suspect still localized), then the path query itself is lost and
  accuracy collapses.  Freshness (records ingested while diagnosing)
  grows with the window throughout: the figure charts both.
* **directory-degradation** — blackhole localization as the per-set
  sketch bit budget of the ``bloom`` directory backend shrinks below
  one bit per host (:mod:`repro.directory`).  At budget 0 the sketch
  saturates (bit-identical to the exact bitmap: FPR 0, full accuracy);
  tightening budgets first inflate the search radius (pointer false
  positives cost extra host queries but the spatial cut survives),
  then flood the cut itself — downstream switches appear to keep
  naming the victim's destination — and localization collapses.  The
  figure charts accuracy *and* the measured pointer false-positive
  rate against the budget.
"""

from __future__ import annotations

from .registry import ExperimentSpec, FigureSpec, register_experiment

register_experiment(
    ExperimentSpec(
        name="skew-degradation",
        sweep="clock-skew",
        summary=(
            "diagnosis accuracy falling off as victim clock skew "
            "crosses the ε-asynchrony bound"
        ),
        # the axis stops at α (10 ms): skew beyond one full epoch
        # breaks epoch arithmetic outright rather than degrading
        axes={"skew_ms": (0.0, 2.0, 5.0, 8.0, 10.0)},
        reps=5,
        figure=FigureSpec(
            x_axis="skew_ms",
            x_label="injected victim clock skew (ms)",
            title="Diagnosis accuracy vs clock skew",
            vline=5.0,
            vline_label="ε bound (pairwise skew = α)",
        ),
    )
)

register_experiment(
    ExperimentSpec(
        name="deploy-degradation",
        sweep="partial-deployment",
        summary=(
            "diagnosis accuracy decaying as partial deployment strips "
            "switch telemetry below spare coverage"
        ),
        axes={"deploy": (1.0, 0.9, 0.75, 0.5, 0.25)},
        reps=5,
        # the sweep pins deploy_spare="S3" so its own nightly grid
        # never strips the fault switch; the study unpins it — the
        # curve exists only when coverage genuinely thins
        base_knobs={"deploy_spare": ""},
        figure=FigureSpec(
            x_axis="deploy",
            x_label="fraction of switches running telemetry",
            title="Diagnosis accuracy vs deployment fraction",
        ),
    )
)

register_experiment(
    ExperimentSpec(
        name="rpc-latency-degradation",
        sweep="rpc-latency",
        summary=(
            "online diagnosis accuracy collapsing — and verdict "
            "freshness cost growing — as per-RPC latency stretches the "
            "query window across a mid-diagnosis agent crash"
        ),
        axes={"rpc_ms": (0.0, 2.0, 5.0, 10.0, 20.0)},
        reps=5,
        figure=FigureSpec(
            x_axis="rpc_ms",
            x_label="extra per-RPC latency (ms, simulated)",
            title="Online diagnosis vs RPC latency",
            # measured crossing: past ~5.4 ms the victim's path query
            # is still in flight when the h4_0 agent dies at 100 ms,
            # so localization loses its trajectory evidence
            vline=5.4,
            vline_label="path query crosses the crash",
            freshness_series=True,
        ),
    )
)

register_experiment(
    ExperimentSpec(
        name="directory-degradation",
        sweep="directory-bits",
        summary=(
            "blackhole localization accuracy collapsing — and pointer "
            "false positives rising — as the bloom directory's per-set "
            "bit budget shrinks below one bit per host"
        ),
        # the default gray-failure topology has 16 hosts, so the exact
        # bitmap is S = 16 bits per set: the 16-bit point saturates
        # (bit-identical to exact) and every budget below it is
        # genuinely lossy — a monotone memory axis for the figure
        axes={"dir_bits": (2, 4, 6, 8, 12, 16)},
        reps=5,
        figure=FigureSpec(
            x_axis="dir_bits",
            x_label="sketch bit budget per pointer set (0 = saturating)",
            title="Diagnosis accuracy vs directory memory",
            vline=16.0,
            vline_label="S = one bit per host",
            fpr_series=True,
        ),
    )
)
