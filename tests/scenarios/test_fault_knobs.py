"""The shared ambient-fault knobs (skew_ms / deploy_frac / crash_host)
on the rewired scenarios, and the registry declarations themselves."""

from repro.faults import FAULTS
from repro.scenarios import REGISTRY, run_scenario


class TestFaultDeclarations:
    def test_rewired_scenarios_declare_registry_faults(self):
        expected = {
            "gray-failure": ("silent-drop",),
            "polarization": ("ecmp-polarization",),
            "link-flap": ("link-flap",),
        }
        for name, faults in expected.items():
            assert REGISTRY.get(name).spec.faults == faults

    def test_declared_faults_exist_in_fault_registry(self):
        for spec in REGISTRY.specs():
            for fault in spec.faults:
                assert fault in FAULTS

    def test_fault_plan_reported_in_measurements(self):
        res = run_scenario("gray-failure", n_flows=2)
        plan = res.measurements["fault_plan"]
        assert len(plan) == 1 and "silent-drop" in plan[0]
        assert "[active]" in plan[0]


class TestClockSkewKnob:
    def test_diagnosis_survives_skew_within_epsilon(self):
        res = run_scenario("gray-failure", n_flows=4, skew_ms=2.0)
        assert res.verdicts
        assert all(v.suspect == "S3" for v in res.verdicts)

    def test_diagnosis_survives_skew_at_the_epsilon_bound(self):
        # offsets span ±skew_ms, so skew_ms=5 means pairwise skew up
        # to 10 ms = α = ε — the largest value the bound still covers
        res = run_scenario("gray-failure", n_flows=4, skew_ms=5.0)
        assert res.verdicts
        assert all(v.suspect == "S3" for v in res.verdicts)

    def test_skew_fault_joins_the_plan(self):
        res = run_scenario("gray-failure", n_flows=2, skew_ms=2.0)
        assert any("clock-skew" in line
                   for line in res.measurements["fault_plan"])


class TestDeployFracKnob:
    def test_diagnosis_survives_partial_deployment_with_spared_fault(self):
        res = run_scenario("gray-failure", n_flows=4, deploy_frac=0.5,
                           deploy_spare="S3")
        assert res.verdicts
        assert all(v.suspect == "S3" for v in res.verdicts)
        stripped = res.measurements["uninstrumented_switches"]
        assert len(stripped) == 2
        assert "S1" not in stripped and "S3" not in stripped

    def test_polarization_diagnoses_with_stripped_spines(self):
        # the branch switch is auto-spared; everything else may go —
        # the census then runs on host-only evidence for the spines
        res = run_scenario("polarization", n_flows=8, deploy_frac=0.25)
        v = res.verdict("ecmp-polarization")
        assert v is not None and v.imbalanced
        assert v.suspect in ("spine0", "spine1")


class TestCrashKnob:
    def test_bystander_crash_keeps_diagnosis(self):
        res = run_scenario("gray-failure", n_flows=2, crash_host="h2_0",
                           crash_at=0.030)
        assert res.verdicts
        assert all(v.suspect == "S3" for v in res.verdicts)

    def test_victim_destination_crash_loses_localization(self):
        # the records the localization needs die with the agent: the
        # verdict degrades to "no spatial cut" instead of a suspect
        res = run_scenario("gray-failure", n_flows=2,
                           crash_host="h4_0", crash_at=0.030)
        assert res.verdicts
        assert all(v.suspect is None for v in res.verdicts)

    def test_crash_then_restart_recovers_post_restart_evidence(self):
        res = run_scenario("gray-failure", n_flows=2,
                           crash_host="h4_1", crash_at=0.010)
        agent = res.deployment.host_agents["h4_1"]
        assert not agent.alive


class TestBackgroundKnobs:
    """Satellite: polarization and link-flap grew bg_* knobs."""

    def test_polarization_with_background_still_flags(self):
        res = run_scenario("polarization", n_flows=8, bg_flows=100)
        v = res.verdict("ecmp-polarization")
        assert v is not None and v.imbalanced
        assert res.measurements["flow_count"] == 108
        assert res.measurements["bg_packets_delivered"] > 0

    def test_polarization_background_avoids_the_branch(self):
        res = run_scenario("polarization", n_flows=8, bg_flows=100)
        # nothing but the 8 parallel connections crossed leaf0
        leaf0 = res.network.switches["leaf0"]
        census = res.verdict("ecmp-polarization").distribution
        assert sum(len(v) for v in census.values()) == 8
        assert leaf0.forwarded > 0

    def test_link_flap_with_background_still_localizes(self):
        res = run_scenario("link-flap", n_flows=8, bg_flows=100)
        v = res.verdict("link-flap")
        assert v is not None and v.suspect == "S1-SPA"
        assert res.measurements["flow_count"] == 109
        assert res.measurements["bg_packets_delivered"] > 0

    def test_link_flap_background_stays_off_the_trunk(self):
        res = run_scenario("link-flap", n_flows=4, bg_flows=50)
        # background endpoints are dedicated tx-side hosts: no
        # background flow appears in the churn census at S1's spines
        v = res.verdict("link-flap")
        assert v is not None and v.suspect == "S1-SPA"
