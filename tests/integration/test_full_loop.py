"""Integration: the complete §3 walkthrough on each §5 application.

Every test here runs the entire system — traffic through the simulated
fabric, per-switch pointer maintenance + header embedding, destination
decoding, trigger, alert, analyzer pointer retrieval, host consultation,
verdict — exactly the loop the paper's example narrates.
"""

import pytest

from repro.analyzer.apps import (diagnose_cascade, diagnose_contention,
                                 diagnose_load_imbalance,
                                 diagnose_red_lights)
from repro.core.epoch import EpochRange
from repro.scenarios import (run_cascades_scenario,
                             run_contention_scenario,
                             run_load_imbalance_scenario,
                             run_red_lights_scenario)


class TestTooMuchTraffic:
    @pytest.mark.parametrize("m", [1, 4, 8])
    def test_priority_contention_end_to_end(self, m):
        res = run_contention_scenario(m, discipline="priority")
        assert res.alerts, f"no alert for m={m}"
        verdict = diagnose_contention(res.deployment.analyzer,
                                      res.alerts[0])
        assert verdict.problem == "priority-contention"
        udp_culprits = {c.flow.src for c in verdict.culprits
                        if c.flow.is_udp}
        assert {f"h1_{j}" for j in range(1, m + 1)} <= udp_culprits

    def test_starvation_grows_with_burst_size(self):
        """Fig 2(a): larger m, longer victim starvation."""
        starvation = {}
        for m in (2, 8, 16):
            res = run_contention_scenario(m, discipline="priority",
                                          watch=False)
            starvation[m] = res.starvation_ms()
        assert starvation[2] < starvation[8] < starvation[16]
        # m bursts of 1 ms each need ~m ms to drain at line rate
        assert starvation[16] > 8.0

    def test_interarrival_grows_with_burst_size(self):
        gaps = {}
        for m in (1, 4, 8):
            res = run_contention_scenario(m, discipline="priority",
                                          watch=False)
            gaps[m] = res.max_gap_ms()
        assert gaps[1] < gaps[4] < gaps[8]
        assert gaps[8] == pytest.approx(8.0, rel=0.3)

    def test_fifo_microburst_smaller_gap_inflation(self):
        """Fig 2(b): FIFO spreads the pain; inter-arrival inflation is
        far milder than under strict priority."""
        prio = run_contention_scenario(8, discipline="priority",
                                       watch=False)
        fifo = run_contention_scenario(8, discipline="fifo", watch=False)
        assert fifo.max_gap_ms() < prio.max_gap_ms() / 4

    def test_large_burst_causes_timeout(self):
        """§2.1: 'may, at the extreme, lead to TCP timeout'."""
        res = run_contention_scenario(16, discipline="priority",
                                      watch=False)
        assert res.tcp_timeouts >= 1


class TestTooManyRedLights:
    @pytest.fixture(scope="class")
    def res(self):
        return run_red_lights_scenario()

    def test_cumulative_degradation_across_switches(self, res):
        b1, d1 = res.burst1
        window = (b1, res.burst2[0] + res.burst2[1] + 0.001)
        s1_min = min(g for t, g in res.tput_at_s1.series()
                     if window[0] <= t <= window[1])
        s2_min = min(g for t, g in res.tput_at_s2.series()
                     if window[0] <= t <= window[1])
        dst_min = min(g for t, g in res.tput_at_dst.series()
                      if window[0] <= t <= window[1])
        assert s2_min <= s1_min
        assert dst_min <= s1_min

    def test_spatial_correlation_diagnosis(self, res):
        assert res.alerts
        verdict = diagnose_red_lights(res.deployment.analyzer,
                                      res.alerts[0])
        switches_with_culprits = {c.switch for c in verdict.culprits}
        assert {"S1", "S2"} <= switches_with_culprits
        # the two UDP flows are attributed to the right switches
        srcs = {(c.switch, c.flow.src) for c in verdict.culprits}
        assert ("S1", "B") in srcs
        assert ("S2", "C") in srcs

    def test_alert_names_full_path(self, res):
        alert = res.alerts[0]
        assert alert.switch_path == ["S1", "S2", "S3"]


class TestTrafficCascades:
    def test_cascade_chain_via_recursive_reexamination(self):
        res = run_cascades_scenario(cascaded=True)
        assert res.alerts
        verdict = diagnose_cascade(res.deployment.analyzer, res.alerts[0])
        assert verdict.cascade_chain == [res.flow_ce, res.flow_af,
                                         res.flow_bd]
        assert "cascade chain" in verdict.narrative

    def test_without_contention_no_chain_found(self):
        res = run_cascades_scenario(cascaded=False)
        # even if a completion artifact alert fires, no cascade exists
        if res.alerts:
            verdict = diagnose_cascade(res.deployment.analyzer,
                                       res.alerts[0])
            assert res.flow_bd not in verdict.cascade_chain

    def test_cascade_slows_victim_completion(self):
        base = run_cascades_scenario(cascaded=False)
        casc = run_cascades_scenario(cascaded=True)
        assert casc.ce_completed_at > base.ce_completed_at


class TestLoadImbalance:
    def test_end_to_end_detection(self):
        res = run_load_imbalance_scenario(6)
        verdict = diagnose_load_imbalance(
            res.deployment.analyzer, res.suspect_switch,
            epochs=EpochRange(0, res.last_epoch))
        assert verdict.imbalanced
        assert len(verdict.hosts_consulted) == 6

    def test_diagnosis_time_scales_with_servers(self):
        """Fig 8: latency grows ~linearly with consulted servers."""
        times = {}
        for n in (4, 16):
            res = run_load_imbalance_scenario(n)
            verdict = diagnose_load_imbalance(
                res.deployment.analyzer, res.suspect_switch,
                epochs=EpochRange(0, res.last_epoch))
            times[n] = verdict.total_time_s
        assert times[16] > times[4]
        ratio = (times[16] / times[4])
        assert 2.0 < ratio < 4.5  # dominated by 4x connection setups
