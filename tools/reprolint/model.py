"""The project model rules check against: parsed modules + name maps.

One :class:`Project` is built per lint run: every ``.py`` file under the
requested paths is parsed once, and rules share the resulting
:class:`Module` objects — AST, source lines, ``# reprolint:
allow[...]`` pragma lines, and an import-derived name map that resolves
a call site like ``perf_counter()`` or ``dt.now()`` back to its
qualified origin (``time.perf_counter``, ``datetime.datetime.now``).

Everything here is stdlib ``ast``; no module under check is ever
imported, so a violating fixture tree (or a tree that currently fails
its own invariants) can still be linted.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: ``# reprolint: allow[wall-clock]`` (one or more comma-separated tokens).
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*allow\[([a-z0-9_,\- ]+)\]")

#: Directories never scanned.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}

#: Compound statements whose span covers their whole body — useless as
#: a pragma window (a pragma inside an ``if`` body must not bless the
#: header's call).  Pragma matching falls back to the call's own lines.
_COMPOUND_STMT = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Match,
)


@dataclass
class Module:
    """One parsed source file."""

    path: Path
    rel: str  # posix path relative to the project root
    tree: ast.Module
    lines: list[str]
    #: line number -> set of allow tokens on that line
    pragmas: dict[int, set[str]] = field(default_factory=dict)
    #: local name -> qualified origin ("time", "time.perf_counter", ...)
    imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, rel: str) -> Optional["Module"]:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError):
            # unreadable / unparsable files are not this linter's beat
            # (ruff and the interpreter both fail louder); skip them
            return None
        mod = cls(path=path, rel=rel, tree=tree, lines=source.splitlines())
        for lineno, line in enumerate(mod.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                tokens = {t.strip() for t in match.group(1).split(",")}
                mod.pragmas[lineno] = {t for t in tokens if t}
        mod._index_imports()
        return mod

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                prefix = "." * node.level + node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{prefix}.{alias.name}"

    def qualified_call(self, call: ast.Call) -> Optional[str]:
        """Resolve ``call``'s target to a dotted origin name, if possible.

        ``time.perf_counter()`` -> ``time.perf_counter`` (via ``import
        time``); ``pc()`` -> ``time.perf_counter`` (via ``from time
        import perf_counter as pc``); ``datetime.datetime.now()`` ->
        ``datetime.datetime.now``.  Returns None for calls on computed
        objects (``obj.method()`` where ``obj`` is not an import).
        """
        parts: list[str] = []
        node = call.func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)])

    def allows(
        self, node: ast.AST, token: str, *, stmt: Optional[ast.stmt] = None
    ) -> bool:
        """Is ``node`` blessed by an ``allow[token]`` pragma?

        The pragma may sit on any line the node spans, or — for a call
        wrapped across lines — on any line of its innermost enclosing
        *simple* statement (compound statements span their whole body
        and are ignored as windows).
        """
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        if stmt is not None and not isinstance(stmt, _COMPOUND_STMT):
            start = min(start, stmt.lineno)
            end = max(end, stmt.end_lineno or stmt.lineno)
        return any(
            token in self.pragmas.get(lineno, ()) for lineno in range(start, end + 1)
        )

    def calls_with_statements(self) -> Iterator[tuple[ast.Call, ast.stmt]]:
        """Every Call node paired with its innermost enclosing statement."""

        def walk(
            node: ast.AST, stmt: Optional[ast.stmt]
        ) -> Iterator[tuple[ast.Call, ast.stmt]]:
            for child in ast.iter_child_nodes(node):
                inner = child if isinstance(child, ast.stmt) else stmt
                if isinstance(child, ast.Call) and inner is not None:
                    yield child, inner
                yield from walk(child, inner)

        first = self.tree.body[0] if self.tree.body else None
        yield from walk(self.tree, first)


@dataclass
class Project:
    """Every parsed module of one lint run, keyed by root-relative path."""

    root: Path
    modules: dict[str, Module] = field(default_factory=dict)

    @classmethod
    def load(cls, root: Path, paths: tuple[str, ...]) -> "Project":
        project = cls(root=root.resolve())
        for entry in paths:
            base = (project.root / entry).resolve()
            if base.is_file() and base.suffix == ".py":
                project._add(base)
                continue
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in path.parts):
                    continue
                project._add(path)
        return project

    def _add(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        if rel in self.modules:
            return
        module = Module.parse(path, rel)
        if module is not None:
            self.modules[rel] = module

    def under(self, *prefixes: str) -> Iterator[Module]:
        """Modules whose root-relative path starts with any prefix."""
        for rel in sorted(self.modules):
            if any(
                rel == p or rel.startswith(p.rstrip("/") + "/") for p in prefixes
            ):
                yield self.modules[rel]

    def get(self, rel: str) -> Optional[Module]:
        return self.modules.get(rel)

    def __len__(self) -> int:
        return len(self.modules)
