"""Fig 10 — switch memory (a) and data-plane→control-plane bandwidth (b).

Paper sweep: n ∈ {100K, 1M} end-hosts, α ∈ {10, 20} ms, k ∈ 1..5.
Anchors: 3.45 MB at (1M, 10, 3); 345 KB at (100K, 10, 3); bandwidth
drops 100 → 10 Mbps from k=1 → k=2 at (1M, 10); memory grows with k and
α while bandwidth falls exponentially in k.

The analytic rows come from :mod:`repro.core.sizing`; a live
hierarchical store + switch agent cross-checks both formulas by
construction and by measured pushes.
"""

import pytest

from repro.core.epoch import EpochClock
from repro.core.mphf import MinimalPerfectHash
from repro.core.pointer import HierarchicalPointerStore
from repro.core.sizing import (push_bandwidth_bps, sweep,
                               total_switch_memory_bytes)
from repro.switchd.agent import SwitchAgent

from benchmarks.reporting import emit

NS = [100_000, 1_000_000]
ALPHAS = [10, 20]
KS = [1, 2, 3, 4, 5]


@pytest.mark.benchmark(group="fig10")
def test_fig10_overheads_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: sweep(NS, ALPHAS, KS), rounds=1, iterations=1)
    lines = ["      n  alpha_ms  k   memory_MB  bandwidth_Mbps"]
    for p in points:
        row = p.as_row()
        lines.append(f"{row['n']:8d}  {row['alpha_ms']:7d}  "
                     f"{row['k']:2d}  {row['memory_MB']:9.3f}  "
                     f"{row['bandwidth_Mbps']:13.4f}")
    lines.append("(paper anchors: 3.45 MB @ n=1M,alpha=10,k=3; "
                 "345 KB @ n=100K; 100->10 Mbps from k=1->2 @ n=1M,"
                 "alpha=10)")
    emit("fig10_overheads", lines)

    assert total_switch_memory_bytes(1_000_000, 10, 3) == pytest.approx(
        3.45e6, rel=0.05)
    assert total_switch_memory_bytes(100_000, 10, 3) == pytest.approx(
        345e3, rel=0.05)
    assert push_bandwidth_bps(1_000_000, 10, 1) == pytest.approx(100e6)
    assert push_bandwidth_bps(1_000_000, 10, 2) == pytest.approx(10e6)
    # memory monotone in k for every (n, alpha)
    for n in NS:
        for a in ALPHAS:
            mems = [total_switch_memory_bytes(n, a, k) for k in KS]
            bws = [push_bandwidth_bps(n, a, k) for k in KS]
            assert mems == sorted(mems)
            assert bws == sorted(bws, reverse=True)


@pytest.mark.benchmark(group="fig10")
def test_fig10_live_store_cross_check(benchmark):
    """A real store + agent reproduces both formulas by measurement."""
    n, alpha, k = 5_000, 10, 2

    def run():
        clock = EpochClock(alpha)
        store = HierarchicalPointerStore(n, alpha=alpha, k=k)
        agent = SwitchAgent("S", clock, store)
        # 3 seconds of simulated epochs, one update each
        n_epochs = 300
        for e in range(n_epochs):
            store.update(e, e % n)
        store.flush_top()
        elapsed_s = n_epochs * alpha / 1000.0
        return store, agent, elapsed_s

    store, agent, elapsed_s = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    measured_bw = agent.push_bandwidth_bps(elapsed_s)
    predicted_bw = push_bandwidth_bps(n, alpha, k)
    lines = [
        f"live store (n={n}, alpha={alpha}, k={k}):",
        f"  memory bits: measured {store.memory_bits}, "
        f"formula {(alpha * (k - 1) + 1) * n}",
        f"  push bandwidth: measured {measured_bw:.0f} bps, "
        f"formula {predicted_bw:.0f} bps",
    ]
    emit("fig10_live_cross_check", lines)
    assert store.memory_bits == (alpha * (k - 1) + 1) * n
    # padding bits in the byte-aligned wire form inflate pushes by <8/n
    assert measured_bw == pytest.approx(predicted_bw, rel=0.01)


@pytest.mark.benchmark(group="fig10")
def test_fig10_mphf_measured_size(benchmark):
    """§6.1: the MPHF auxiliary state is small (paper: 70 KB/100K keys).

    We measure our hash-displace construction at n=20K and extrapolate
    linearly — construction is offline, so benchmark time here is the
    (analyzer-side) build cost."""
    n = 20_000
    keys = [f"10.0.{i // 256}.{i % 256}" for i in range(n)]
    mphf = benchmark.pedantic(
        lambda: MinimalPerfectHash.build(keys), rounds=1, iterations=1)
    bits_per_key = mphf.bits_per_key()
    per_100k_kb = bits_per_key * 100_000 / 8 / 1000
    emit("fig10_mphf_size", [
        f"n={n}: {bits_per_key:.2f} bits/key switch-side state",
        f"extrapolated per 100K hosts: {per_100k_kb:.1f} KB "
        f"(paper/CMPH-FCH: ~70 KB)",
    ])
    slots = {mphf.lookup(k) for k in keys}
    assert len(slots) == n
    assert bits_per_key < 8.0  # same order as the paper's 5.6 bits/key
