"""Telemetry headers carried in packets (§4.1.3).

Two encodings, as in the paper:

* :class:`VlanDoubleTag` — the commodity-switch design: IEEE 802.1ad
  double tagging.  The outer tag carries a *linkID* (the CherryPick-style
  sampled link that pins the end-to-end path on clos topologies); the
  inner tag carries the *epochID* of the switch that embedded the link
  tag.  Each VLAN ID field is 12 bits, so the epoch travels modulo 4096
  and the decoder unwraps it (:func:`repro.core.epoch.unwrap_epoch`).

* :class:`IntStack` — the clean-slate INT design: every switch on the
  path appends a full ``(switchID, epochID)`` record.  Works on
  arbitrary topologies at the cost of per-hop header growth.

Both expose ``wire_overhead_bytes()`` so experiments can account for
header tax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

VLAN_ID_BITS = 12
VLAN_ID_MODULUS = 1 << VLAN_ID_BITS      # 4096
VLAN_TAG_BYTES = 4                        # TPID(2) + TCI(2) per 802.1Q tag


class HeaderError(Exception):
    """Raised on malformed or out-of-range telemetry fields."""


@dataclass
class VlanDoubleTag:
    """802.1ad double tag: outer = linkID, inner = epochID mod 4096.

    ``link_id`` must fit the 12-bit VLAN ID space; topologies needing
    more distinct sampled links than 4096 are out of scope for the
    commodity design (the paper's fat-tree argument needs only the
    aggregate-core links).
    """

    link_id: int
    epoch_tag: int  # epochID mod 4096

    def __post_init__(self) -> None:
        if not 0 <= self.link_id < VLAN_ID_MODULUS:
            raise HeaderError(
                f"link_id {self.link_id} exceeds 12-bit VLAN ID space")
        if not 0 <= self.epoch_tag < VLAN_ID_MODULUS:
            raise HeaderError(
                f"epoch_tag {self.epoch_tag} not reduced mod 4096")

    @classmethod
    def embed(cls, link_id: int, absolute_epoch: int) -> "VlanDoubleTag":
        if absolute_epoch < 0:
            raise HeaderError("epoch cannot be negative")
        return cls(link_id=link_id,
                   epoch_tag=absolute_epoch % VLAN_ID_MODULUS)

    def wire_overhead_bytes(self) -> int:
        return 2 * VLAN_TAG_BYTES

    def encode(self) -> bytes:
        """Pack both tags as they would appear on the wire (TCI only)."""
        return bytes(((self.link_id >> 8) & 0x0F, self.link_id & 0xFF,
                      (self.epoch_tag >> 8) & 0x0F, self.epoch_tag & 0xFF))

    @classmethod
    def decode(cls, blob: bytes) -> "VlanDoubleTag":
        if len(blob) != 4:
            raise HeaderError(f"expected 4 TCI bytes, got {len(blob)}")
        link = ((blob[0] & 0x0F) << 8) | blob[1]
        epoch = ((blob[2] & 0x0F) << 8) | blob[3]
        return cls(link_id=link, epoch_tag=epoch)


@dataclass(frozen=True)
class IntHop:
    """One INT record: which switch, in which of its epochs."""

    switch_id: str
    epoch: int


@dataclass
class IntStack:
    """Clean-slate INT header: per-hop (switchID, epochID) records."""

    hops: list[IntHop] = field(default_factory=list)

    #: Bytes per INT record: 4 for a switch identifier + 4 for the epoch.
    BYTES_PER_HOP = 8
    #: INT shim/metadata header.
    BASE_BYTES = 4

    def push(self, switch_id: str, epoch: int) -> None:
        if epoch < 0:
            raise HeaderError("epoch cannot be negative")
        self.hops.append(IntHop(switch_id=switch_id, epoch=epoch))

    def switch_path(self) -> list[str]:
        return [h.switch_id for h in self.hops]

    def epoch_at(self, switch_id: str) -> Optional[int]:
        for h in self.hops:
            if h.switch_id == switch_id:
                return h.epoch
        return None

    def wire_overhead_bytes(self) -> int:
        return self.BASE_BYTES + self.BYTES_PER_HOP * len(self.hops)

    def __len__(self) -> int:
        return len(self.hops)
