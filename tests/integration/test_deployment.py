"""Integration tests for deployment wiring, INT mode, skew, offline path."""

import pytest

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.core.sizing import store_memory_bits
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_fat_tree, build_linear
from repro.switchd.datapath import MODE_INT


class TestDeploymentWiring:
    def test_every_switch_and_host_instrumented(self):
        net = build_linear(3, 2)
        deploy = SwitchPointerDeployment(net)
        assert set(deploy.datapaths) == set(net.switches)
        assert set(deploy.switch_agents) == set(net.switches)
        assert set(deploy.host_agents) == set(net.hosts)

    def test_defaults_follow_paper_example(self):
        net = build_linear(2, 1)
        deploy = SwitchPointerDeployment(net)
        assert deploy.alpha_ms == 10
        assert deploy.k == 3
        assert deploy.epsilon_ms == 10   # ε = α
        assert deploy.delta_ms == 20     # Δ = 2α

    def test_total_pointer_memory_matches_formula(self):
        net = build_linear(3, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=3)
        expected = 3 * store_memory_bits(len(net.hosts), 10, 3)
        assert deploy.total_pointer_memory_bits() == expected

    def test_rule_tables_only_in_vlan_mode(self):
        net = build_linear(2, 1)
        vlan = SwitchPointerDeployment(net)
        assert set(vlan.rule_tables) == set(net.switches)
        net2 = build_linear(2, 1)
        intd = SwitchPointerDeployment(net2, mode=MODE_INT)
        assert intd.rule_tables == {}

    def test_commodity_limit_enforcement(self):
        from repro.switchd.rules import RuleModelError
        net = build_linear(2, 1)
        with pytest.raises(RuleModelError):
            SwitchPointerDeployment(net, alpha_ms=10,
                                    enforce_commodity_limit=True)
        net2 = build_linear(2, 1)
        SwitchPointerDeployment(net2, alpha_ms=20,
                                enforce_commodity_limit=True)  # ok


class TestIntModeOnFatTree:
    def test_int_deployment_decodes_everywhere(self):
        """INT works on arbitrary topologies (§4.1.3's clean-slate
        path) — exercise a fat-tree inter-pod flow."""
        net = build_fat_tree(4)
        deploy = SwitchPointerDeployment(net, mode=MODE_INT,
                                         epsilon_ms=1, delta_ms=2)
        src, dst = "h0_0_0", "h3_1_1"
        for _ in range(3):
            net.hosts[src].send(make_udp(src, dst, 1, 9, 500))
        net.run()
        rec = deploy.host_agents[dst].store.get(
            next(iter(deploy.host_agents[dst].store)).flow)
        assert len(rec.switch_path) == 5
        # every traversed switch's pointer names the destination
        for sw in rec.switch_path:
            hosts = deploy.analyzer.hosts_for(sw, EpochRange(0, 0))
            assert dst in hosts


class TestClockSkew:
    def test_skewed_deployment_still_covers_truth(self):
        skews = {"S1": 0.004, "S2": -0.004, "S3": 0.002}
        net = build_linear(3, 1)
        deploy = SwitchPointerDeployment(
            net, alpha_ms=10, epsilon_ms=10, delta_ms=20,
            skew_of=lambda n: skews.get(n, 0.0))
        send_at = 0.0499
        net.sim.schedule(send_at, lambda: net.hosts["h1_0"].send(
            make_udp("h1_0", "h3_0", 1, 9, 500)))
        net.run()
        rec = next(iter(deploy.host_agents["h3_0"].store))
        for sw in ("S1", "S2", "S3"):
            clock = deploy.datapaths[sw].clock
            true_epoch = clock.epoch_of(send_at)
            rng = rec.epochs_at(sw)
            assert true_epoch in rng, (sw, true_epoch, (rng.lo, rng.hi))
            # and the pointer at that switch is in the recorded epoch
            hosts = deploy.analyzer.hosts_for(sw, rng)
            assert "h3_0" in hosts


class TestOfflineDiagnosisPath:
    def test_recycled_epochs_still_answerable_from_pushes(self):
        """After live level-1 sets recycle, the pushed top-level history
        must still name the hosts (coarser window — §4.1.1's offline
        path)."""
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=4, k=2,
                                         epsilon_ms=1, delta_ms=2)
        sim = net.sim
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        # advance time far beyond level-1 retention (alpha^2 = 16 ms)
        for t in (0.050, 0.090, 0.130, 0.170):
            sim.schedule(t, lambda: net.hosts["h1_1"].send(
                make_udp("h1_1", "h2_1", 2, 9, 500)))
        net.run()
        # live level-1 window for epoch 0 is long recycled
        live = deploy.analyzer.hosts_for("S1", EpochRange(0, 0))
        assert "h2_0" not in live
        offline = deploy.analyzer.hosts_for("S1", EpochRange(0, 0),
                                            offline=True)
        assert "h2_0" in offline


class TestDirectoryChurn:
    def test_rebuild_and_rewire(self):
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        new_dir = deploy.analyzer.rebuild_directory(net.host_names)
        # distribute: swap MPHF on every datapath (what the paper's
        # analyzer push does)
        for dp in deploy.datapaths.values():
            dp.mphf = new_dir.mphf
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 500))
        net.run()
        slots = deploy.switch_agents["S1"].pull_hosts_slots(0, 0)
        assert new_dir.hosts_of(slots) == ["h2_0"]
