"""Synthetic datacenter workload generation.

The paper's micro-benchmarks use hand-placed flows; for the
directory-precision studies (how many hosts land in a pointer under
realistic traffic) we also need fabric-scale background workloads with
the usual datacenter statistics:

* **heavy-tailed flow sizes** — most flows are mice, most bytes belong
  to elephants (bounded Pareto, as in the Benson/Roy traffic studies
  the paper cites for packet sizes);
* **Poisson flow arrivals** with a configurable rate;
* **uniform or skewed endpoint selection** over the host set.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from .packet import DEFAULT_MTU, PRIO_LOW, FlowKey
from .topology import Network
from .traffic import UdpCbrSource, UdpSink


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic workload."""

    arrival_rate_per_s: float = 2000.0
    mean_flow_bytes: int = 100_000
    pareto_shape: float = 1.2          # <2: heavy tail
    min_flow_bytes: int = 1_500
    max_flow_bytes: int = 10_000_000
    flow_rate_bps: float = 1e9
    duration_s: float = 0.1
    priority: int = PRIO_LOW
    seed: int = 42

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto shape must exceed 1 (finite mean)")
        if not 0 < self.min_flow_bytes <= self.max_flow_bytes:
            raise ValueError("invalid flow size bounds")


@dataclass
class GeneratedFlow:
    """One flow the generator scheduled."""

    flow: FlowKey
    size_bytes: int
    start: float
    source: UdpCbrSource


class WorkloadGenerator:
    """Schedules a :class:`WorkloadSpec` onto a network's hosts.

    Flows are UDP at a fixed rate with size-derived duration — enough to
    exercise pointers, records, and queries without TCP dynamics (use
    the scenario builders when congestion control matters).
    """

    def __init__(self, network: Network, spec: WorkloadSpec, *,
                 senders: Optional[list[str]] = None,
                 receivers: Optional[list[str]] = None,
                 base_port: int = 40_000):
        self.network = network
        self.spec = spec
        self.rng = random.Random(spec.seed)
        hosts = network.host_names
        self.senders = senders if senders is not None else hosts
        self.receivers = receivers if receivers is not None else hosts
        if not self.senders or not self.receivers:
            raise ValueError("need at least one sender and receiver")
        self.base_port = base_port
        self.flows: list[GeneratedFlow] = []
        self._sinks: set[tuple[str, int]] = set()

    # -- distributions --------------------------------------------------------

    def flow_size(self) -> int:
        """Bounded-Pareto flow size with the spec's mean."""
        shape = self.spec.pareto_shape
        # scale so that the unbounded Pareto mean matches mean_flow_bytes
        scale = self.spec.mean_flow_bytes * (shape - 1) / shape
        scale = max(scale, self.spec.min_flow_bytes)
        u = self.rng.random()
        size = scale / (u ** (1 / shape))
        return int(min(max(size, self.spec.min_flow_bytes),
                       self.spec.max_flow_bytes))

    def next_interarrival(self) -> float:
        return self.rng.expovariate(self.spec.arrival_rate_per_s)

    def pick_pair(self) -> tuple[str, str]:
        while True:
            src = self.rng.choice(self.senders)
            dst = self.rng.choice(self.receivers)
            if src != dst:
                return src, dst

    # -- scheduling -----------------------------------------------------------

    def schedule(self) -> list[GeneratedFlow]:
        """Plan all flows for the spec duration onto the simulator."""
        sim = self.network.sim
        t = sim.now
        end = sim.now + self.spec.duration_s
        i = 0
        while True:
            t += self.next_interarrival()
            if t >= end:
                break
            src_name, dst_name = self.pick_pair()
            size = self.flow_size()
            port = self.base_port + i
            self._ensure_sink(dst_name, port)
            duration = max(size * 8 / self.spec.flow_rate_bps, 1e-6)
            source = UdpCbrSource(
                sim, self.network.hosts[src_name], dst_name,
                sport=port, dport=port, rate_bps=self.spec.flow_rate_bps,
                packet_size=min(DEFAULT_MTU, max(64, size)),
                priority=self.spec.priority, start=t, duration=duration)
            self.flows.append(GeneratedFlow(flow=source.flow,
                                            size_bytes=size, start=t,
                                            source=source))
            i += 1
        return self.flows

    def _ensure_sink(self, host_name: str, port: int) -> None:
        key = (host_name, port)
        if key not in self._sinks:
            UdpSink(self.network.hosts[host_name], port)
            self._sinks.add(key)

    # -- post-run statistics ---------------------------------------------------

    def size_percentiles(self, ps=(50, 90, 99)) -> dict[int, int]:
        sizes = sorted(f.size_bytes for f in self.flows)
        if not sizes:
            return {p: 0 for p in ps}
        out = {}
        for p in ps:
            rank = max(1, math.ceil(p / 100 * len(sizes)))
            out[p] = sizes[rank - 1]
        return out

    def elephant_byte_share(self, threshold: int = 1_000_000) -> float:
        """Fraction of bytes in flows >= threshold (tail check)."""
        total = sum(f.size_bytes for f in self.flows)
        if total == 0:
            return 0.0
        big = sum(f.size_bytes for f in self.flows
                  if f.size_bytes >= threshold)
        return big / total
