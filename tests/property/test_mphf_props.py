"""Property-based tests: the MPHF is minimal and perfect on any key set."""

from hypothesis import given, settings, strategies as st

from repro.core.mphf import HostDirectory, MinimalPerfectHash

key_sets = st.sets(
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=24),
    min_size=1, max_size=200)


@settings(max_examples=60, deadline=None)
@given(keys=key_sets)
def test_bijection_onto_slot_range(keys):
    ordered = sorted(keys)
    mphf = MinimalPerfectHash.build(ordered)
    slots = [mphf.lookup(k) for k in ordered]
    assert sorted(slots) == list(range(len(ordered)))


@settings(max_examples=40, deadline=None)
@given(keys=key_sets)
def test_serialization_preserves_function(keys):
    ordered = sorted(keys)
    mphf = MinimalPerfectHash.build(ordered)
    clone = MinimalPerfectHash.deserialize(mphf.serialize())
    assert all(clone.lookup(k) == mphf.lookup(k) for k in ordered)


@settings(max_examples=40, deadline=None)
@given(keys=key_sets)
def test_members_always_contained(keys):
    ordered = sorted(keys)
    mphf = MinimalPerfectHash.build(ordered)
    assert all(mphf.contains(k) for k in ordered)


@settings(max_examples=40, deadline=None)
@given(keys=st.sets(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=150))
def test_directory_roundtrip_arbitrary_host_labels(keys):
    hosts = [f"host-{k}" for k in sorted(keys)]
    directory = HostDirectory(hosts)
    for h in hosts:
        assert directory.host_of(directory.slot_of(h)) == h


@settings(max_examples=25, deadline=None)
@given(keys=key_sets, load=st.sampled_from([2.0, 3.0, 5.0]))
def test_bucket_load_never_breaks_perfection(keys, load):
    ordered = sorted(keys)
    mphf = MinimalPerfectHash.build(ordered, bucket_load=load)
    assert len({mphf.lookup(k) for k in ordered}) == len(ordered)
