"""The ``exact`` directory backend: the paper's one-bit-per-host bitmap.

This is :class:`~repro.core.pointer.PointerSet` registered behind the
directory interface — the §4.1.1 design, the equivalence reference the
property suite pins every sketch against, and what ``"auto"`` resolves
to unless an override is active.  It ignores the ``directory_bits``
budget: an exact directory always costs S bits per set (one bit per
end-host slot), which is precisely the scaling cliff the sketch
backends exist to trade against.
"""

from __future__ import annotations

from ..core.pointer import PointerSet
from .registry import DirectorySet, register_directory


@register_directory(
    "exact",
    summary="one-bit-per-host PointerSet bitmap — the equivalence "
    "reference (zero false positives)",
    memory_note="always `S` bits per set (ignores `directory_bits`)",
)
def _exact_factory(n_slots: int, bits: int, hashes: int) -> DirectorySet:
    return PointerSet(n_slots)
