"""Property-based tests pinning the sketch backends to the exact bitmap.

Three contracts, exercised over arbitrary insert sequences, budgets,
and hierarchy geometries:

* **superset on every query** — whatever the budget, a sketch answers
  membership/enumeration with a superset of the true members, through
  unions and serialize round-trips included (the registry's one-sided
  approximation contract).
* **bit-identity at saturating budgets** — ``bits=0`` (or any budget
  >= n_slots) sizes a bloom filter at one bit per slot, making it
  payload-identical to :class:`PointerSet`; the default knob values are
  therefore exact-equivalent by construction.
* **hierarchy equivalence across coalescing/recycling** — an exact
  store and a sketch store driven by the same update sequence rotate
  windows identically; every surviving sketch snapshot covers its exact
  twin's slots, and its shadow truth matches the exact payload exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.core.pointer import HierarchicalPointerStore, PointerSet
from repro.directory import decode_directory_set, make_directory_set

N_SLOTS = 64

slot_sets = st.sets(
    st.integers(min_value=0, max_value=N_SLOTS - 1), max_size=32)
budgets = st.integers(min_value=8, max_value=N_SLOTS)
hash_counts = st.integers(min_value=1, max_value=4)
backends = st.sampled_from(["bloom", "lsh"])

updates = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200),          # epoch
              st.integers(min_value=0, max_value=N_SLOTS - 1)),  # slot
    min_size=1, max_size=150)


@settings(max_examples=80, deadline=None)
@given(members=slot_sets, extras=slot_sets, backend=backends,
       bits=budgets, hashes=hash_counts)
def test_sketch_answers_are_supersets_everywhere(
        members, extras, backend, bits, hashes):
    ds = make_directory_set(backend, N_SLOTS, bits=bits, hashes=hashes)
    for slot in members:
        ds.set_slot(slot)
    assert all(ds.test_slot(s) for s in members)
    assert members <= set(ds.iter_slots())

    other = make_directory_set(backend, N_SLOTS, bits=bits, hashes=hashes)
    for slot in extras:
        other.set_slot(slot)
    ds.union_into(other)
    union = members | extras
    assert all(other.test_slot(s) for s in union)

    dup = decode_directory_set(backend, N_SLOTS, other.to_bytes(),
                               bits=bits, hashes=hashes)
    assert dup.to_bytes() == other.to_bytes()
    assert all(dup.test_slot(s) for s in union)


@settings(max_examples=80, deadline=None)
@given(members=slot_sets,
       bits=st.sampled_from([0, N_SLOTS, 4 * N_SLOTS]),
       hashes=hash_counts)
def test_saturating_bloom_is_bit_identical_to_exact(members, bits, hashes):
    exact = PointerSet(N_SLOTS)
    bloom = make_directory_set("bloom", N_SLOTS, bits=bits, hashes=hashes)
    for slot in members:
        exact.set_slot(slot)
        bloom.set_slot(slot)
    assert bloom.to_bytes() == exact.to_bytes()
    assert set(bloom.iter_slots()) == members
    assert bloom.estimate() == len(members)
    assert not any(
        bloom.test_slot(s) for s in range(N_SLOTS) if s not in members)


@settings(max_examples=40, deadline=None)
@given(ops=updates, alpha=st.sampled_from([2, 4]),
       k=st.integers(min_value=1, max_value=3), backend=backends,
       bits=st.sampled_from([12, 24, 0]), hashes=hash_counts)
def test_sketch_hierarchy_tracks_exact_across_recycling(
        ops, alpha, k, backend, bits, hashes):
    exact = HierarchicalPointerStore(N_SLOTS, alpha=alpha, k=k)
    sketch = HierarchicalPointerStore(
        N_SLOTS, alpha=alpha, k=k,
        set_factory=lambda: make_directory_set(
            backend, N_SLOTS, bits=bits, hashes=hashes))
    for epoch, slot in sorted(ops):
        exact.update(epoch, slot)
        sketch.update(epoch, slot)
    touched = sorted({epoch for epoch, _ in ops})
    for level in range(1, k + 1):
        for epoch in touched:
            ref = exact.snapshot(level, epoch)
            got = sketch.snapshot(level, epoch)
            # lazy rotation is slot-arithmetic only: both stores must
            # agree on which windows survived
            assert (ref is None) == (got is None)
            if ref is None:
                continue
            assert got.segment == ref.segment
            # the sketch covers the exact twin's slots (superset), and
            # its shadow truth is the exact payload itself
            assert set(ref.slots()) <= set(got.slots())
            assert got.true_slots() == ref.slots()
            # serialize round-trip preserves the pulled superset
            dup = decode_directory_set(
                got.backend, got.n_slots, got.bits,
                bits=got.bits_budget, hashes=got.hashes)
            assert dup.to_bytes() == got.bits
            assert set(ref.slots()) <= set(dup.iter_slots())


@settings(max_examples=40, deadline=None)
@given(ops=updates, alpha=st.sampled_from([2, 4]),
       k=st.integers(min_value=1, max_value=3))
def test_saturating_sketch_store_answers_bit_identical(ops, alpha, k):
    """At the default budget (0 = saturating) the whole hierarchy is
    exact-equivalent: every surviving window answers identically."""
    exact = HierarchicalPointerStore(N_SLOTS, alpha=alpha, k=k)
    bloom = HierarchicalPointerStore(
        N_SLOTS, alpha=alpha, k=k,
        set_factory=lambda: make_directory_set("bloom", N_SLOTS, bits=0))
    for epoch, slot in sorted(ops):
        exact.update(epoch, slot)
        bloom.update(epoch, slot)
    for level in range(1, k + 1):
        for epoch in {e for e, _ in ops}:
            ref = exact.snapshot(level, epoch)
            got = bloom.snapshot(level, epoch)
            assert (ref is None) == (got is None)
            if ref is not None:
                assert got.bits == ref.bits
                assert got.slots() == ref.slots()
