"""Unit tests for topology builders and routing."""

import pytest

from repro.simnet.packet import PROTO_UDP, make_udp
from repro.simnet.topology import (Network, TopologyError, build_fat_tree,
                                   build_leaf_spine, build_linear,
                                   build_star)


class TestNetwork:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(TopologyError):
            net.add_switch("x")

    def test_node_lookup(self):
        net = Network()
        h = net.add_host("h")
        s = net.add_switch("s")
        assert net.node("h") is h
        assert net.node("s") is s
        with pytest.raises(TopologyError):
            net.node("ghost")

    def test_link_between(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        link = net.connect(a, b)
        assert net.link_between("a", "b") is link
        assert net.link_between("b", "a") is link
        with pytest.raises(TopologyError):
            net.link_between("a", "ghost")

    def test_link_by_id(self):
        net = Network()
        a, b = net.add_host("a"), net.add_host("b")
        link = net.connect(a, b)
        assert net.link_by_id(link.link_id) is link
        with pytest.raises(TopologyError):
            net.link_by_id(10**9)


class TestLinear:
    def test_shape(self):
        net = build_linear(3, 2)
        assert len(net.switches) == 3
        assert len(net.hosts) == 6
        # chain + host links
        assert len(net.links) == 2 + 6

    def test_end_to_end_delivery(self):
        net = build_linear(3, 1)
        got = []
        net.hosts["h3_0"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 500))
        net.run()
        assert got[0].hops == ["S1", "S2", "S3"]

    def test_unique_shortest_path(self):
        net = build_linear(3, 1)
        paths = net.shortest_paths("h1_0", "h3_0")
        assert len(paths) == 1
        assert paths[0] == ["h1_0", "S1", "S2", "S3", "h3_0"]


class TestStar:
    def test_all_hosts_reach_each_other(self):
        net = build_star(4)
        got = []
        net.hosts["h3"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h0"].send(make_udp("h0", "h3", 1, 9, 500))
        net.run()
        assert len(got) == 1
        assert got[0].hops == ["S1"]

    def test_needs_a_host(self):
        with pytest.raises(TopologyError):
            build_star(0)


class TestLeafSpine:
    def test_shape(self):
        net = build_leaf_spine(n_leaves=4, n_spines=2, hosts_per_leaf=3)
        assert len(net.switches) == 6
        assert len(net.hosts) == 12
        assert len(net.links) == 4 * 2 + 12

    def test_cross_leaf_path_is_three_switches(self):
        net = build_leaf_spine(4, 2, 1)
        paths = net.shortest_paths("h0_0", "h3_0")
        for p in paths:
            switches = [n for n in p if n in net.switches]
            assert len(switches) == 3  # leaf, spine, leaf
        assert len(paths) == 2  # one per spine

    def test_same_leaf_path_stays_local(self):
        net = build_leaf_spine(2, 2, 2)
        paths = net.shortest_paths("h0_0", "h0_1")
        assert paths == [["h0_0", "leaf0", "h0_1"]]

    def test_delivery_across_fabric(self):
        net = build_leaf_spine(3, 2, 2)
        got = []
        net.hosts["h2_1"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h0_0"].send(make_udp("h0_0", "h2_1", 1, 9, 500))
        net.run()
        assert len(got) == 1


class TestFatTree:
    def test_k4_shape(self):
        net = build_fat_tree(4)
        # k=4: 4 cores, 8 aggs, 8 edges, 16 hosts
        assert len(net.switches) == 4 + 8 + 8
        assert len(net.hosts) == 16

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(3)

    def test_interpod_path_is_five_hops(self):
        net = build_fat_tree(4)
        paths = net.shortest_paths("h0_0_0", "h1_0_0")
        for p in paths:
            switches = [n for n in p if n in net.switches]
            assert len(switches) == 5  # edge-agg-core-agg-edge

    def test_intrapod_cross_edge_is_three_hops(self):
        net = build_fat_tree(4)
        paths = net.shortest_paths("h0_0_0", "h0_1_0")
        for p in paths:
            switches = [n for n in p if n in net.switches]
            assert len(switches) == 3

    def test_delivery_across_pods(self):
        net = build_fat_tree(4)
        got = []
        net.hosts["h3_1_1"].bind(PROTO_UDP, 9, lambda p, t: got.append(p))
        net.hosts["h0_0_0"].send(make_udp("h0_0_0", "h3_1_1", 1, 9, 500))
        net.run()
        assert len(got) == 1
        assert len(got[0].hops) == 5


class TestPathThroughLink:
    def test_linear_link_pins_path(self):
        net = build_linear(3, 1)
        link = net.link_between("S1", "S2")
        path = net.path_through_link("h1_0", "h3_0", link)
        assert path == ["h1_0", "S1", "S2", "S3", "h3_0"]

    def test_unrelated_link_returns_none(self):
        net = build_linear(3, 2)
        host_link = net.link_between("h2_0", "S2")
        assert net.path_through_link("h1_0", "h3_0", host_link) is None

    def test_leaf_spine_spine_link_pins(self):
        net = build_leaf_spine(3, 2, 1)
        link = net.link_between("leaf0", "spine1")
        path = net.path_through_link("h0_0", "h2_0", link)
        assert path is not None
        assert "spine1" in path


class TestRouting:
    def test_all_pairs_reachable_on_fat_tree(self):
        net = build_fat_tree(4)
        hosts = net.host_names
        src = net.hosts[hosts[0]]
        delivered = []
        for dst in hosts[1:4]:
            net.hosts[dst].bind(PROTO_UDP, 9,
                                lambda p, t: delivered.append(p.dst))
            src.send(make_udp(src.name, dst, 1, 9, 200))
        net.run()
        assert sorted(delivered) == sorted(hosts[1:4])

    def test_routes_only_on_shortest_paths(self):
        net = build_leaf_spine(2, 2, 1)
        leaf0 = net.switches["leaf0"]
        # toward a host on the same leaf there must be exactly one
        # candidate (the host port), never a detour via a spine
        routes = leaf0.routes_for("h0_0")
        assert len(routes) == 1
        # toward a remote host both spine links are candidates (ECMP)
        routes = leaf0.routes_for("h1_0")
        assert len(routes) == 2
