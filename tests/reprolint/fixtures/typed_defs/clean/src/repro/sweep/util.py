"""Fixture: typed-core functions fully annotated."""

from typing import Iterable


def scale(value: float, factor: float) -> float:
    return value * factor


def total(values: Iterable[float]) -> float:
    out = 0.0
    for v in values:
        out += v
    return out


class Accumulator:
    def __init__(self, start: float):
        self.value = start
