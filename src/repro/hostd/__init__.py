"""SwitchPointer end-host component (PathDump extended, §4.2)."""

from .records import FlowRecord, FlowRecordStore, SeqCounter
from .sharded import ShardedRecordStore
from .decoder import TelemetryDecoder
from .triggers import (SwitchEpochTuple, TcpTimeoutTrigger,
                       ThroughputDropTrigger, VictimAlert,
                       alert_tuples_from_record)
from .query import FlowSummary, QueryEngine, QueryResult
from .agent import HostAgent
from . import aggregate

__all__ = [
    "FlowRecord", "FlowRecordStore", "SeqCounter",
    "ShardedRecordStore",
    "TelemetryDecoder",
    "ThroughputDropTrigger", "TcpTimeoutTrigger", "VictimAlert",
    "SwitchEpochTuple", "alert_tuples_from_record",
    "QueryEngine", "QueryResult", "FlowSummary",
    "HostAgent",
    "aggregate",
]
