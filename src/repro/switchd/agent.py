"""Switch control-plane agent (§4.1, §4.3 switch side).

One agent runs per switch.  It owns:

* the **pull API** the analyzer uses: "give me the pointer sets at
  level ℓ covering epochs [lo, hi]" — answered from the live
  hierarchical store;
* the **push sink**: top-level pointer sets the dataplane hands over
  every αᵏ ms are appended to a persistent history (the control-plane
  storage used for offline diagnosis), with bandwidth accounting that
  the Fig 10(b) cross-check reads;
* the **epoch-advance process**: in VLAN mode a rule update per epoch
  rewrites the epochID rule (§4.1.3); modelled via the rule table.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Optional

from ..core.epoch import EpochClock
from ..core.pointer import HierarchicalPointerStore, PointerSnapshot
from ..simnet.engine import PeriodicTimer, Simulator
from .rules import RuleTable


def covering_snapshots(snaps: list[PointerSnapshot], los: list[int],
                       epoch_lo: int, epoch_hi: int) -> list[PointerSnapshot]:
    """Pushed snapshots overlapping ``[epoch_lo, epoch_hi]``, by bisect.

    ``los`` is the parallel sorted list of each snapshot's ``epoch_lo``
    (pushes arrive in window order, so maintaining it is an append).
    Every pushed set sits at the same level and therefore covers the
    same span, which turns the interval-overlap test into one
    contiguous slice — the inverted-index idiom from the query index,
    replacing the old linear scan over the whole push history.
    """
    if not snaps or epoch_hi < los[0]:
        return []
    span = snaps[0].epochs_covered
    start = bisect_left(los, epoch_lo - span + 1)
    stop = bisect_right(los, epoch_hi)
    return snaps[start:stop]


def _record_push(snaps: list[PointerSnapshot], los: list[int],
                 snap: PointerSnapshot) -> None:
    """Append a push, preserving the sorted ``epoch_lo`` index."""
    lo = snap.epoch_lo
    if los and lo < los[-1]:
        idx = bisect_right(los, lo)
        snaps.insert(idx, snap)
        los.insert(idx, lo)
    else:
        snaps.append(snap)
        los.append(lo)


class SwitchAgent:
    """Control-plane side of one SwitchPointer switch."""

    def __init__(self, name: str, clock: EpochClock,
                 store: HierarchicalPointerStore, *,
                 rule_table: Optional[RuleTable] = None):
        self.name = name
        self.clock = clock
        self.store = store
        self.rule_table = rule_table
        self.pushed_history: list[PointerSnapshot] = []
        #: parallel sorted epoch_lo index over pushed_history (bisect)
        self._pushed_lo: list[int] = []
        self.bytes_pushed = 0
        self.pull_requests = 0
        store.on_push = self._on_push

    # -- push model -----------------------------------------------------------

    def _on_push(self, snap: PointerSnapshot) -> None:
        _record_push(self.pushed_history, self._pushed_lo, snap)
        # sketch backends push their (smaller) serialized payload; the
        # measurement-only truth shadow never crosses this link
        self.bytes_pushed += len(snap.bits)

    def push_bandwidth_bps(self, elapsed_s: float) -> float:
        """Measured data-plane→control-plane rate over ``elapsed_s``."""
        if elapsed_s <= 0:
            return 0.0
        return self.bytes_pushed * 8 / elapsed_s

    # -- pull API (what the analyzer RPCs) -----------------------------------

    def pull(self, level: int, epoch_lo: int,
             epoch_hi: int) -> list[PointerSnapshot]:
        """Live pointer sets at ``level`` intersecting the epoch range."""
        self.pull_requests += 1
        return self.store.snapshots_covering(level, epoch_lo, epoch_hi)

    def pull_hosts_slots(self, epoch_lo: int, epoch_hi: int,
                         level: int = 1) -> set[int]:
        """Union of destination slots recorded in the epoch range."""
        self.pull_requests += 1
        return self.store.slots_for_epochs(epoch_lo, epoch_hi, level=level)

    def best_effort_slots(self, epoch_lo: int,
                          epoch_hi: int) -> tuple[set[int], str]:
        """Answer from the finest level that still covers the window.

        This is the §4.1.1 access pattern the hierarchy exists for:
        recent epochs are served from level 1 (per-epoch precision);
        once level 1 has recycled, successively coarser levels answer;
        when even the top level has moved on, the pushed history (the
        offline path) is consulted.  Returns the slots plus a label of
        the source used (``"level1"``..``"levelk"`` or ``"offline"``).

        A level "covers" the window only if no epoch in it has been
        *recycled* there — a partial answer from a half-recycled level
        would silently drop hosts, which the directory must never do.
        Epochs that were simply never written answer "no hosts", which
        is correct, at any level.
        """
        snaps, source = self.best_effort_snapshots(epoch_lo, epoch_hi)
        slots: set[int] = set()
        for snap in snaps:
            slots.update(snap.slots())
        return slots, source

    def best_effort_snapshots(
            self, epoch_lo: int,
            epoch_hi: int) -> tuple[list[PointerSnapshot], str]:
        """The snapshots behind :meth:`best_effort_slots`, plus source.

        The analyzer consumes snapshots (not pre-merged slot sets) so it
        can score a sketch's answer against its shadow truth bitmap.
        """
        self.pull_requests += 1
        if epoch_hi < 0:
            return [], "level1"  # entirely pre-history: empty
        for level in range(1, self.store.k + 1):
            statuses = [self.store.epoch_status(level, e)
                        for e in range(epoch_lo, epoch_hi + 1)]
            if any(s == "recycled" for s in statuses):
                continue  # data loss at this level: escalate
            return self.store.snapshots_covering(
                level, max(0, epoch_lo), max(0, epoch_hi)), f"level{level}"
        return self.offline_snapshots(epoch_lo, epoch_hi), "offline"

    def offline_snapshots(self, epoch_lo: int,
                          epoch_hi: int) -> list[PointerSnapshot]:
        """Pushed (persistent) top-level sets overlapping the range,
        found by bisect over the sorted ``epoch_lo`` index."""
        return covering_snapshots(self.pushed_history, self._pushed_lo,
                                  epoch_lo, epoch_hi)

    def offline_slots(self, epoch_lo: int, epoch_hi: int) -> set[int]:
        """Slots from *pushed* (persistent) top-level history.

        This is the offline-diagnosis path: coarse αᵏ ms granularity,
        but available after the live sets have been recycled.
        """
        slots: set[int] = set()
        for snap in self.offline_snapshots(epoch_lo, epoch_hi):
            slots.update(snap.slots())
        return slots

    # -- epoch process --------------------------------------------------------

    def start_epoch_process(self, sim: Simulator) -> PeriodicTimer:
        """Begin per-epoch activity (epochID rule rewrite accounting)."""

        def on_epoch() -> None:
            if self.rule_table is not None:
                self.rule_table.advance_epoch(self.clock.epoch_of(sim.now))

        return PeriodicTimer(sim, self.clock.alpha_s, on_epoch)


class ControlPlaneStore:
    """Network-wide persistent store of pushed pointers (offline path).

    The paper pushes each switch's top-level set to "persistent storage"
    on the controller; this aggregates them for offline queries across
    switches.
    """

    def __init__(self) -> None:
        self._by_switch: dict[str, list[PointerSnapshot]] = {}
        self._lo_by_switch: dict[str, list[int]] = {}

    def ingest(self, switch_name: str, snap: PointerSnapshot) -> None:
        snaps = self._by_switch.setdefault(switch_name, [])
        los = self._lo_by_switch.setdefault(switch_name, [])
        _record_push(snaps, los, snap)

    def snapshots(self, switch_name: str) -> list[PointerSnapshot]:
        return list(self._by_switch.get(switch_name, []))

    def snapshots_covering(self, switch_name: str, epoch_lo: int,
                           epoch_hi: int) -> list[PointerSnapshot]:
        return covering_snapshots(
            self._by_switch.get(switch_name, []),
            self._lo_by_switch.get(switch_name, []), epoch_lo, epoch_hi)

    def slots_for(self, switch_name: str, epoch_lo: int,
                  epoch_hi: int) -> set[int]:
        slots: set[int] = set()
        for snap in self.snapshots_covering(switch_name, epoch_lo,
                                            epoch_hi):
            slots.update(snap.slots())
        return slots
