"""Incast microburst: N synchronized senders converge on one receiver.

The classic datacenter fan-in collapse (the workload Laminar-style TCP
studies target): a barrier-synchronized group of senders all answer one
aggregator at the same instant, overflowing the shallow buffer on the
receiver's last-hop downlink.  A long-lived victim flow to the same
receiver collapses with it; the analyzer classifies the event as incast
because every epoch-sharing culprit at the convergence switch targets
the victim's own destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyzer.apps import Verdict, diagnose_incast
from ..deployment import SwitchPointerDeployment
from ..hostd.triggers import VictimAlert
from ..simnet.packet import PRIO_LOW, FlowKey
from ..simnet.stats import ThroughputProbe
from ..simnet.topology import (Network, build_fat_tree_for_hosts,
                               build_leaf_spine)
from ..simnet.traffic import TcpTimedFlow, UdpCbrSource, UdpSink
from ..sweep import SweepSpec, register_sweep
from .base import Knob, Scenario, ScenarioSpec, register
from .common import (GBPS, background_knobs, fault_knobs,
                     install_fault_knobs, launch_background)


@dataclass
class IncastResult:
    """Output of one incast run."""

    n_senders: int
    deployment: SwitchPointerDeployment
    network: Network
    victim: FlowKey
    throughput: ThroughputProbe
    burst_start: float
    burst_duration: float
    receiver: str
    convergence_switch: str
    alerts: list[VictimAlert] = field(default_factory=list)
    tcp_timeouts: int = 0
    downlink_queue_drops: int = 0


@register
class IncastScenario(Scenario):
    """N-to-1 synchronized senders converging on one receiver.

    The receiver sits behind its last-hop switch with default shallow
    (256 KB) FIFO port buffers; the victim TCP flow and all
    ``n_senders`` burst flows originate behind other switches.  At
    ``burst_start`` every sender transmits at line rate simultaneously —
    the receiver's downlink queue overflows and the victim collapses.

    The ``hosts`` knob sizes the fabric for scale sweeps: 0 keeps the
    historical minimal two-leaf topology; any larger count builds a
    leaf-spine (or, with ``fabric=fat-tree``, a multi-pod fat-tree) of
    that many hosts — the active flows stay the same, what scales is the
    population every SwitchPointer layer (directory, pointer stores,
    host agents) has to carry.
    """

    spec = ScenarioSpec(
        name="incast",
        summary="N-to-1 synchronized senders overflow the receiver's "
                "last-hop buffer",
        paper_ref="§2.4 extended use case; incast fan-in collapse "
                  "(PAPERS.md: datacenter TCP incast studies)",
        expected_diagnosis="incast (suspect: the receiver's leaf)",
        knobs={
            "n_senders": Knob(8, "synchronized burst senders"),
            "duration": Knob(0.040, "victim TCP flow duration (s)"),
            "burst_start": Knob(0.015, "synchronized burst onset (s)"),
            "burst_duration": Knob(0.002, "burst length (s)"),
            "min_fan_in": Knob(3, "culprits needed to call it incast"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
            "hosts": Knob(0, "total fabric hosts (0 = minimal fabric "
                             "for n_senders)"),
            "fabric": Knob("leaf-spine",
                           "fabric family: leaf-spine or fat-tree"),
            "records_per_host": Knob(0, "hostd record-table bound "
                                        "(0 = unbounded)"),
            "record_shards": Knob(1, "record-store shards per host "
                                     "agent (>1 = sharded store)"),
            "ingest_batch": Knob(1, "sniffed packets decoded per "
                                    "ingest batch"),
            "record_backend": Knob("auto", "record-store backend: "
                                           "flat, sharded, columnar, "
                                           "or auto"),
            **background_knobs(),
            **fault_knobs(),
        },
        smoke_knobs={"n_senders": 4, "duration": 0.025,
                     "burst_start": 0.008},
    )

    def _build_fabric(self) -> Network:
        """Size the fabric from the ``hosts``/``fabric`` knobs."""
        p = self.p
        n = p["n_senders"]
        want = p["hosts"]
        if p["fabric"] == "fat-tree":
            # the receiver's edge switch absorbs up to hosts_per_edge
            # hosts, which don't count toward the n+1 remote endpoints
            # the workload needs — grow the population until enough
            # hosts land outside that edge (converges in a few steps:
            # each retry adds at least the remaining deficit)
            size = max(want, 2 * (n + 1))
            for _ in range(8):
                net = build_fat_tree_for_hosts(size, rate_bps=GBPS)
                receiver = net.host_names[0]
                graph = net.graph()
                edge = next(nb for nb in graph.neighbors(receiver)
                            if nb in net.switches)
                remote = sum(1 for h in net.host_names
                             if h != receiver and edge not in graph[h])
                if remote >= n + 1:
                    break
                size += (n + 1) - remote
        elif p["fabric"] == "leaf-spine":
            if want <= 0:
                # the historical minimal shape: receiver behind leaf0,
                # victim source + senders behind leaf1
                return build_leaf_spine(n_leaves=2, n_spines=2,
                                        hosts_per_leaf=n + 1,
                                        rate_bps=GBPS)
            n_leaves = max(2, min(64, -(-want // 64)))
            per_leaf = max(n + 1, -(-want // n_leaves))
            net = build_leaf_spine(n_leaves=n_leaves,
                                   n_spines=max(2, n_leaves // 4),
                                   hosts_per_leaf=per_leaf,
                                   rate_bps=GBPS)
        else:
            raise ValueError(
                f"fabric must be leaf-spine or fat-tree, "
                f"got {p['fabric']!r}")
        return net

    def build(self) -> None:
        p = self.p
        n = p["n_senders"]
        # default (shallow, 256 KB) FIFO queues: incast needs buffer
        # overflow at the downlink, not priority starvation
        net = self._build_fabric()
        deploy = SwitchPointerDeployment(
            net, alpha_ms=p["alpha_ms"], k=p["k"],
            records_per_host=p["records_per_host"] or None,
            record_shards=p["record_shards"],
            ingest_batch=p["ingest_batch"],
            record_backend=p["record_backend"])
        self.network, self.deployment = net, deploy
        self.receiver = net.host_names[0]
        # the receiver's last-hop switch is where the fan-in converges
        graph = net.graph()
        self.convergence_switch = next(
            nb for nb in graph.neighbors(self.receiver)
            if nb in net.switches)
        # victim source + burst senders live behind *other* switches so
        # every flow crosses the fabric into the receiver's downlink
        remote = [h for h in net.host_names
                  if h != self.receiver
                  and self.convergence_switch not in graph[h]]
        if len(remote) < n + 1:
            raise ValueError(
                f"fabric too small: {len(remote)} hosts outside the "
                f"receiver's switch, need {n + 1} "
                f"(n_senders + victim source)")
        victim_src, senders = remote[0], remote[1:n + 1]

        self.tput = ThroughputProbe(window=0.001)
        self.victim_app = TcpTimedFlow(
            net.sim, net.hosts[victim_src], net.hosts[self.receiver],
            duration=p["duration"], sport=100, dport=200,
            priority=PRIO_LOW, on_payload=self.tput.on_packet)
        self.victim = self.victim_app.sender.flow
        self.trigger = deploy.watch_flow(self.victim)

        # the synchronized responders all answer the receiver at once
        for j, sender in enumerate(senders, start=1):
            UdpSink(net.hosts[self.receiver], 7000 + j)
            UdpCbrSource(net.sim, net.hosts[sender], self.receiver,
                         sport=7000 + j, dport=7000 + j, rate_bps=GBPS,
                         priority=PRIO_LOW, start=p["burst_start"],
                         duration=p["burst_duration"])

        # ambient stressor knobs (clock skew, partial deployment, agent
        # crash); the victim path's CherryPick embedder is spared so
        # the collapse stays observable at the receiver
        embedder = deploy.planner.embedding_hop(victim_src,
                                                self.receiver)
        install_fault_knobs(
            self, extra_spare=(embedder,) if embedder else ())

        # the background flow population (the sweep flows= axis): kept
        # away from the receiver so none of it can masquerade as a
        # fan-in culprit at the convergence switch
        self.background = launch_background(
            net, p, duration=p["duration"], exclude=(self.receiver,))

    def run(self) -> None:
        self.network.run(until=self.p["duration"] + 0.020)
        self.trigger.stop()

    def collect(self) -> dict:
        p = self.p
        net = self.network
        leaf = net.switches[self.convergence_switch]
        downlink = net.link_between(self.convergence_switch,
                                    self.receiver).iface_of(leaf)
        self.payload = IncastResult(
            n_senders=p["n_senders"], deployment=self.deployment,
            network=net, victim=self.victim, throughput=self.tput,
            burst_start=p["burst_start"],
            burst_duration=p["burst_duration"],
            receiver=self.receiver,
            convergence_switch=self.convergence_switch,
            alerts=list(self.deployment.alerts()),
            tcp_timeouts=self.victim_app.sender.timeouts,
            downlink_queue_drops=downlink.queue.stats.dropped)
        bg = self.background
        return {
            "alerts": len(self.payload.alerts),
            "fabric_hosts": len(net.hosts),
            "fabric_switches": len(net.switches),
            "tcp_timeouts": self.payload.tcp_timeouts,
            "downlink_queue_drops": self.payload.downlink_queue_drops,
            "victim_rate_at_burst_gbps": round(
                self.tput.rate_at(p["burst_start"] + 0.0005), 3),
            # n_senders bursts + the victim + the background population
            "flow_count": p["n_senders"] + 1 +
                          (bg.n_flows if bg is not None else 0),
            "bg_packets_delivered": (bg.delivered
                                     if bg is not None else 0),
        }

    def diagnose(self) -> list[Verdict]:
        alerts = self.deployment.alerts()
        if not alerts:
            return []
        return [diagnose_incast(self.deployment.analyzer, alerts[0],
                                min_fan_in=self.p["min_fan_in"])]


register_sweep(SweepSpec(
    scenario="incast",
    summary="fan-in collapse diagnosed at fabric populations from 64 "
            "to 4096 hosts",
    expect_problem="incast",
    axes={
        "hosts": "hosts",
        "flows": "bg_flows",
        "records": "records_per_host",
        "alpha_ms": "alpha_ms",
        "senders": "n_senders",
        "shards": "record_shards",
        "batch": "ingest_batch",
        "backend": "record_backend",
        "fabric": "fabric",
        "mix": "bg_mix",
    },
    default_grid={"hosts": (64, 256, 1024, 4096)},
    nightly_grid={"hosts": (64, 256, 1024)},
    base_knobs={"record_shards": 8, "ingest_batch": 16},
))

register_sweep(SweepSpec(
    scenario="incast",
    name="incast-scale",
    summary="fan-in collapse diagnosed under background populations of "
            "hundreds to thousands of concurrent flows",
    expect_problem="incast",
    axes={
        "hosts": "hosts",
        "flows": "bg_flows",
        "mix": "bg_mix",
        "flow_kb": "bg_flow_kb",
        "alpha_ms": "alpha_ms",
        "records": "records_per_host",
        "backend": "record_backend",
    },
    default_grid={"hosts": (256,), "flows": (200, 1000, 2000)},
    nightly_grid={"hosts": (64,), "flows": (200, 1000)},
    # the combined top ends of both scale axes ride along as explicit
    # points — the full cross product would not fit the nightly
    # budget, these two points do (see budget_note)
    nightly_points=(
        {"hosts": 4096, "flows": 2000},
        {"hosts": 65536, "flows": 100000, "backend": "columnar"},
    ),
    budget_note="hosts=4096 flows=2000 measured at ~15 s wall on one "
                "dev-container core (build 3.8 s, run 10.6 s, diagnose "
                "0.05 s; 80-switch leaf-spine, 2009 concurrent flows). "
                "hosts=65536 flows=100000 backend=columnar measured at "
                "~115 s wall (build 26 s, run 79 s, diagnose 10 s; "
                "64-leaf/16-spine fabric, 65,536 hosts, 100k background "
                "flows on the columnar record store with host-to-host "
                "shortest paths decomposed through the 80-switch "
                "subgraph). Adding further top-end points must "
                "re-measure and keep the whole nightly run under "
                "~10 min.",
    base_knobs={"record_shards": 8, "ingest_batch": 16},
))
