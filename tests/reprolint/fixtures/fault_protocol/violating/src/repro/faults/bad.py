"""Fixture: three protocol breaches in one fault class."""

from typing import Any

from .base import Fault, register_fault


@register_fault
class BadFault(Fault):
    spec = "bad"

    # no heal() at all: the injected state can never be undone
    def inject(self, ctx: Any) -> None:
        self._saved = ctx  # saved but never referenced again
        self.records_lost = 1  # public measurement attr: exempt

    def describe(self, verbose: bool) -> str:
        return "bad" if verbose else "b"
