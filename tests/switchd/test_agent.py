"""Unit tests for the switch control-plane agent."""

import pytest

from repro.core.epoch import EpochClock
from repro.core.pointer import HierarchicalPointerStore
from repro.simnet.engine import Simulator
from repro.switchd.agent import ControlPlaneStore, SwitchAgent
from repro.switchd.rules import RuleTable


def make_agent(alpha=10, k=2, n=50):
    clock = EpochClock(alpha)
    store = HierarchicalPointerStore(n, alpha=alpha, k=k)
    agent = SwitchAgent("S1", clock, store)
    return agent, store


class TestPullApi:
    def test_pull_returns_covering_snapshots(self):
        agent, store = make_agent()
        store.update(epoch=3, slot=7)
        store.update(epoch=4, slot=9)
        snaps = agent.pull(level=1, epoch_lo=3, epoch_hi=4)
        assert [s.segment for s in snaps] == [3, 4]
        assert agent.pull_requests == 1

    def test_pull_hosts_slots_union(self):
        agent, store = make_agent()
        store.update(epoch=3, slot=7)
        store.update(epoch=4, slot=9)
        assert agent.pull_hosts_slots(3, 4) == {7, 9}

    def test_pull_empty_window(self):
        agent, _ = make_agent()
        assert agent.pull(level=1, epoch_lo=0, epoch_hi=5) == []


class TestPushModel:
    def test_pushes_recorded_with_bandwidth(self):
        agent, store = make_agent(alpha=10, k=2, n=80)
        # top window = 10 epochs; cross two boundaries
        for e in range(25):
            store.update(epoch=e, slot=e % 80)
        assert len(agent.pushed_history) == 2
        assert agent.bytes_pushed == 2 * 10  # 80 bits -> 10 bytes each
        assert agent.push_bandwidth_bps(1.0) == pytest.approx(160.0)

    def test_offline_slots_from_history(self):
        agent, store = make_agent(alpha=10, k=2)
        for e in range(10):
            store.update(epoch=e, slot=e)
        store.update(epoch=10, slot=42)  # pushes window 0
        assert agent.offline_slots(0, 9) == set(range(10))
        assert agent.offline_slots(20, 30) == set()

    def test_zero_elapsed_bandwidth(self):
        agent, _ = make_agent()
        assert agent.push_bandwidth_bps(0.0) == 0.0


class TestEpochProcess:
    def test_rule_updates_once_per_epoch(self):
        sim = Simulator()
        clock = EpochClock(10)
        store = HierarchicalPointerStore(10, alpha=10, k=2)
        table = RuleTable(switch_name="S1", port_count=4, alpha_ms=10,
                          enforce_commodity_limit=False)
        agent = SwitchAgent("S1", clock, store, rule_table=table)
        timer = agent.start_epoch_process(sim)
        sim.run(until=0.055)
        timer.stop()
        assert table.epoch_updates == 5


class TestControlPlaneStore:
    def test_ingest_and_query(self):
        cps = ControlPlaneStore()
        agent, store = make_agent(alpha=10, k=2)
        store.on_push = lambda snap: cps.ingest("S1", snap)
        for e in range(10):
            store.update(epoch=e, slot=e)
        store.flush_top()
        assert len(cps.snapshots("S1")) == 1
        assert cps.slots_for("S1", 0, 9) == set(range(10))
        assert cps.slots_for("S1", 50, 60) == set()
        assert cps.snapshots("S9") == []
