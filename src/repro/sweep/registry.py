"""Sweep registry: which scenarios sweep, along which axes.

A :class:`SweepSpec` is declared *next to the scenario it exercises*
(same module, same registration idiom as the scenario registry of PR 2):

    from ..sweep import SweepSpec, register_sweep

    register_sweep(SweepSpec(
        scenario="incast",
        summary="fan-in collapse from 64 to 4096 fabric hosts",
        expect_problem="incast",
        axes={"hosts": "hosts", "records": "records_per_host"},
        default_grid={"hosts": (64, 256, 1024)},
        ...
    ))

Axes are *names on the grid command line* bound to scenario knobs; the
indirection keeps sweep vocabulary uniform (``hosts``, ``records``,
``alpha_ms``) even where scenarios name their knobs differently.  The
CLI ``sweep`` command and the generated ``docs/SWEEPS.md`` catalogue
both render these specs — one source of truth, like scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .grid import GridError


class SweepError(Exception):
    """Raised for registry misuse or invalid sweep parameters."""


@dataclass(frozen=True)
class SweepSpec:
    """Sweep metadata for one registered sweep.

    Attributes
    ----------
    scenario:
        Scenario-registry name this sweep executes.
    name:
        The sweep's own registry key.  Defaults to ``scenario``; give
        it explicitly when several sweeps exercise the same scenario
        along different axes (``incast`` sweeps the fabric population,
        ``incast-scale`` the concurrent-flow population).
    summary:
        One-line description (CLI ``sweep list``, docs catalogue).
    expect_problem:
        The ``Verdict.problem`` a correct point must report; per-point
        ``diagnosis_ok`` in the report is exactly "some verdict matched".
    expect_suspect_knob:
        Optional name of a scenario knob whose (resolved) value must
        also appear among the verdict suspects — e.g. gray-failure's
        ``fault_switch``.  Without it, a diagnosis that names the right
        problem but localizes nothing would still count as correct.
    axes:
        Grid-axis name → scenario knob it binds.
    default_grid:
        Axis → value tuple used when ``--grid`` is not given.
    nightly_grid:
        Reduced grid for the scheduled CI run (``sweep nightly``
        expands every registered spec at this grid) and the smoke
        benchmark.  Mandatory at registration: a sweep the nightly
        driver cannot run would silently shrink CI's coverage.
    nightly_points:
        Explicit extra points appended to the nightly grid's cartesian
        expansion — for combined top-end points (``hosts=4096
        flows=2000``) whose full cross product would blow the nightly
        wall-time budget.  Each entry maps axis names to one value.
    budget_note:
        Free-form wall-time note rendered in ``docs/SWEEPS.md`` —
        record the measured cost of the expensive points so grid
        growth stays a deliberate, budgeted decision.
    base_knobs:
        Fixed knob overrides applied to every point (e.g. a shortened
        run duration so thousand-host points stay tractable).
    """

    scenario: str
    summary: str
    expect_problem: str
    axes: dict[str, str]
    default_grid: dict[str, tuple[Any, ...]]
    nightly_grid: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    nightly_points: tuple[dict[str, Any], ...] = ()
    budget_note: Optional[str] = None
    base_knobs: dict[str, Any] = field(default_factory=dict)
    expect_suspect_knob: Optional[str] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name is None:
            # frozen dataclass: assign through object.__setattr__
            object.__setattr__(self, "name", self.scenario)

    def knobs_for(self, params: dict[str, Any]) -> dict[str, Any]:
        """Resolve one grid point's axis values into scenario knobs."""
        knobs = dict(self.base_knobs)
        for axis, value in params.items():
            knob = self.axes.get(axis)
            if knob is None:
                raise GridError(
                    f"unknown axis {axis!r} for sweep {self.name!r}; "
                    f"valid: {', '.join(sorted(self.axes))}"
                )
            knobs[knob] = value
        return knobs

    @property
    def cli_example(self) -> str:
        grid = " ".join(
            f"--grid {axis}={','.join(str(v) for v in values)}"
            for axis, values in self.default_grid.items()
        )
        return f"python -m repro.cli sweep run {self.name} {grid}"


def _load_declarations() -> None:
    """Import the scenario package, which registers every sweep.

    Sweeps are declared next to their scenarios, so a consumer that
    imported only :mod:`repro.sweep` (benchmarks, tools) would otherwise
    see an empty registry.  Deferred to first lookup — never module
    scope — because scenario modules import this package to register.
    """
    from .. import scenarios  # noqa: F401


class SweepRegistry:
    """Sweep name → sweep-spec registry."""

    def __init__(self) -> None:
        self._specs: dict[str, SweepSpec] = {}

    def register(self, spec: SweepSpec) -> SweepSpec:
        if spec.name in self._specs:
            raise SweepError(f"duplicate sweep name {spec.name!r}")
        if not spec.default_grid:
            raise SweepError(f"sweep {spec.name!r} needs a default grid")
        if not spec.nightly_grid:
            # every registered sweep is part of the nightly CI coverage
            raise SweepError(
                f"sweep {spec.name!r} needs a nightly grid "
                f"(`sweep nightly` runs every registered spec)"
            )
        for grid_name in ("default_grid", "nightly_grid"):
            for axis in getattr(spec, grid_name):
                if axis not in spec.axes:
                    raise SweepError(
                        f"sweep {spec.name!r}: {grid_name} axis "
                        f"{axis!r} is not declared in axes"
                    )
        for i, point in enumerate(spec.nightly_points):
            bad = [axis for axis in point if axis not in spec.axes]
            if bad:
                raise SweepError(
                    f"sweep {spec.name!r}: nightly_points[{i}] axis "
                    f"{bad[0]!r} is not declared in axes"
                )
        self._validate_knob_bindings(spec)
        self._specs[spec.name] = spec
        return spec

    @staticmethod
    def _validate_knob_bindings(spec: SweepSpec) -> None:
        """Every axis/base knob must be declared by the spec's scenario.

        Sweeps are declared right after their scenario class in the
        same module, so the scenario is normally resolvable here; when
        it is not (a sweep declared ahead of its scenario), the static
        ``knob-declaration`` pass of ``tools/reprolint`` still covers
        the binding.  Either way a typo'd knob name fails before any
        point runs, with the offender named.
        """
        # call-time import: scenario modules import this package to
        # register their sweeps, so module scope would be a cycle
        from ..scenarios.base import REGISTRY as scenarios

        if spec.scenario not in scenarios:
            return
        declared = scenarios.get(spec.scenario).spec.knobs
        for axis, knob in spec.axes.items():
            if knob not in declared:
                raise SweepError(
                    f"sweep {spec.name!r}: axis {axis!r} binds knob "
                    f"{knob!r}, which scenario {spec.scenario!r} does "
                    f"not declare; declared: {', '.join(sorted(declared))}"
                )
        for source, names in (
            ("base_knobs", spec.base_knobs),
            ("expect_suspect_knob", [spec.expect_suspect_knob]),
        ):
            for knob in names:
                if knob is not None and knob not in declared:
                    raise SweepError(
                        f"sweep {spec.name!r}: {source} names knob "
                        f"{knob!r}, which scenario {spec.scenario!r} "
                        f"does not declare; declared: "
                        f"{', '.join(sorted(declared))}"
                    )

    def get(self, name: str) -> SweepSpec:
        _load_declarations()
        try:
            return self._specs[name]
        except KeyError:
            raise SweepError(
                f"no sweep registered for {name!r}; "
                f"known: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        _load_declarations()
        return sorted(self._specs)

    def specs(self) -> list[SweepSpec]:
        return [self._specs[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        _load_declarations()
        return name in self._specs

    def __len__(self) -> int:
        _load_declarations()
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry scenario modules register sweeps into.
SWEEPS = SweepRegistry()
register_sweep = SWEEPS.register
