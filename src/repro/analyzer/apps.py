"""Debugging applications (§5 and beyond).

Each diagnosis takes the analyzer and an alert (or a suspect switch)
and returns a verdict with the latency breakdown the paper plots.

The four §5 diagnoses, one per subsection:

* :func:`diagnose_contention` — §5.1 "too much traffic": who contended
  with the victim at the alerted switch, and was it priority-based or a
  microburst?  (Fig 7's four phases: detection, alert, pointer
  retrieval, diagnosis.)
* :func:`diagnose_red_lights` — §5.2: per-switch culprits along the
  victim's path; the victim must share ≥ 1 epoch with each culprit at
  the corresponding switch.
* :func:`diagnose_cascade` — §5.3: recursive re-examination — when a
  culprit has middle priority, walk *its* path to find who delayed it.
* :func:`diagnose_load_imbalance` — §5.4: flow-size distributions per
  egress interface of a suspect switch (Fig 8's diagnosis latency).

Four more built on the same primitives, backing the scenario registry's
extended fault catalogue (§2.4's "many other problems" claim):

* :func:`diagnose_incast` — N-to-1 synchronized fan-in: the culprits
  found at the alerted switch all target the victim's own destination.
* :func:`diagnose_gray_failure` — silent packet drops, localized to the
  faulty hop via :func:`repro.analyzer.netdebug.localize_packet_drops`.
* :func:`diagnose_polarization` — ECMP hash polarization: the per-egress
  flow census at a multipath switch concentrates on one egress.
* :func:`diagnose_link_flap` — flap churn: flows behind a branch switch
  oscillate between egresses, and one egress has no stable users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.epoch import EpochRange
from ..core.pointer import PointerSnapshot
from ..directory import DirectorySet, LshDirectorySet, decode_directory_set
from ..hostd.triggers import VictimAlert
from ..rpc.fabric import Breakdown
from ..simnet.packet import FlowKey
from .analyzer import Analyzer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import DiagnosisSession

#: Fig 7's detection phase: the 1 ms trigger window bounds it.
DETECTION_S = 1e-3


@dataclass
class Culprit:
    """One contending flow implicated in a diagnosis."""

    flow: FlowKey
    host: str                     # the end-host whose records identified it
    switch: str                   # where it contended with the victim
    priority: int
    bytes: int
    shared_epochs: Optional[EpochRange] = None


@dataclass
class Verdict:
    """Outcome of a diagnosis, with the measured latency breakdown."""

    problem: str
    victim: Optional[FlowKey]
    culprits: list[Culprit] = field(default_factory=list)
    breakdown: Breakdown = field(default_factory=Breakdown)
    hosts_consulted: list[str] = field(default_factory=list)
    narrative: str = ""
    cascade_chain: list[FlowKey] = field(default_factory=list)
    imbalanced: bool = False
    distribution: dict[str, list[int]] = field(default_factory=dict)
    #: The network element the diagnosis points at, when there is one:
    #: a switch (gray failure), an egress switch (polarization, incast
    #: convergence point), or an "A-B" link (flap).
    suspect: Optional[str] = None
    #: Online-diagnosis state (:mod:`repro.analyzer.session`):
    #: ``complete`` | ``degraded`` | ``stale``.  Post-mortem diagnoses
    #: keep the default — with the whole run's evidence at rest, their
    #: answer is by construction complete.
    status: str = "complete"
    #: hosts that failed to answer during the session (evidence gaps);
    #: non-empty exactly when ``status == "degraded"``
    missing_hosts: list[str] = field(default_factory=list)
    #: evidence label: True when the switch pointers behind this verdict
    #: came from a lossy sketch backend (:mod:`repro.directory`) — the
    #: host lists consulted were *supersets* of the truth, so the
    #: conclusion stands but may have cost extra host queries
    approx: bool = False
    #: switches whose directory contents most resemble the suspect's
    #: over the diagnosis window (:func:`rank_co_suspects`), most
    #: similar first — empty when no suspect was localized
    co_suspects: list[str] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        return self.breakdown.total


def _stamp_approx(analyzer: Analyzer, verdict: Verdict) -> Verdict:
    """Label the verdict when sketch directories supplied its pointers."""
    verdict.approx = analyzer.directory_approx
    return verdict


def _overlap(a: Optional[EpochRange],
             b: Optional[EpochRange]) -> Optional[EpochRange]:
    if a is None or b is None or not a.intersects(b):
        return None
    return EpochRange(max(a.lo, b.lo), min(a.hi, b.hi))


# ---------------------------------------------------------------------------
# §5.1 too much traffic
# ---------------------------------------------------------------------------

def diagnose_contention(analyzer: Analyzer, alert: VictimAlert, *,
                        prune: bool = True) -> Verdict:
    """Who contended with the victim, and was priority involved?"""
    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    per_switch, ptr_bd = analyzer.locate_relevant_hosts(alert, prune=prune)
    bd = bd.merged(ptr_bd)

    culprits: list[Culprit] = []
    consulted: set[str] = set()
    diag_bd = Breakdown()
    for entry in per_switch:
        hosts = [h for h in entry.hosts if h != alert.flow.dst]
        if not hosts:
            continue
        consulted.update(hosts)
        found, q_bd = analyzer.contending_flows(hosts, entry.switch,
                                                entry.epochs, alert)
        diag_bd = diag_bd.merged(q_bd)
        for host, summary in found:
            shared = _overlap(summary.epochs_at(entry.switch), entry.epochs)
            if shared is None:
                continue
            culprits.append(Culprit(
                flow=summary.flow, host=host, switch=entry.switch,
                priority=summary.priority, bytes=summary.bytes,
                shared_epochs=shared))
    bd.add("diagnosis", diag_bd.total)

    victim_prio = _victim_priority(analyzer, alert)
    priority_based = any(c.priority > victim_prio for c in culprits)
    problem = ("priority-contention" if priority_based
               else "microburst-contention")
    narrative = (
        f"{len(culprits)} flow(s) contended with {alert.flow.pretty()}; "
        + ("high-priority traffic starved the victim"
           if priority_based else
           "equal-priority burst overflowed the queue (microburst)"))
    return _stamp_approx(analyzer, Verdict(
        problem=problem, victim=alert.flow, culprits=culprits,
        breakdown=bd, hosts_consulted=sorted(consulted),
        narrative=narrative))


def _victim_priority(analyzer: Analyzer, alert: VictimAlert) -> int:
    agent = analyzer.host_agents.get(alert.host)
    if agent is not None:
        rec = agent.store.get(alert.flow)
        if rec is not None:
            return rec.priority
    return 0


# ---------------------------------------------------------------------------
# §5.2 too many red lights
# ---------------------------------------------------------------------------

def diagnose_red_lights(analyzer: Analyzer,
                        alert: VictimAlert) -> Verdict:
    """Per-switch contention along the whole victim path.

    The §5.2 conclusion criterion: a culprit counts at a switch only if
    it shares at least one epochID with the victim there.
    """
    base = diagnose_contention(analyzer, alert)
    by_switch: dict[str, list[Culprit]] = {}
    for c in base.culprits:
        by_switch.setdefault(c.switch, []).append(c)
    multi = {sw: cs for sw, cs in by_switch.items() if cs}
    narrative = ("; ".join(
        f"at {sw}: " + ", ".join(c.flow.pretty() for c in cs)
        for sw, cs in sorted(multi.items()))
        or "no contention found on the path")
    return _stamp_approx(analyzer, Verdict(
        problem="too-many-red-lights", victim=alert.flow,
        culprits=base.culprits, breakdown=base.breakdown,
        hosts_consulted=base.hosts_consulted, narrative=narrative))


# ---------------------------------------------------------------------------
# §5.3 traffic cascades
# ---------------------------------------------------------------------------

def diagnose_cascade(analyzer: Analyzer, alert: VictimAlert, *,
                     max_depth: int = 4) -> Verdict:
    """Recursively walk culprit paths until the chain's head is found.

    §5.3: having found that middle-priority A-F collided with victim
    C-E, the analyzer "subsequently examines pointers from switches
    along the path of flow A-F in order to see whether or not the flow
    was affected by some other flows".
    """
    chain: list[FlowKey] = [alert.flow]
    culprits: list[Culprit] = []
    consulted: set[str] = set()
    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    current = alert
    current_prio = _victim_priority(analyzer, alert)
    for _ in range(max_depth):
        per_switch, ptr_bd = analyzer.locate_relevant_hosts(current)
        bd = bd.merged(ptr_bd)
        best: Optional[Culprit] = None
        stage_bd = Breakdown()
        for entry in per_switch:
            hosts = [h for h in entry.hosts if h != current.flow.dst]
            if not hosts:
                continue
            consulted.update(hosts)
            found, q_bd = analyzer.contending_flows(
                hosts, entry.switch, entry.epochs, current)
            stage_bd = stage_bd.merged(q_bd)
            for host, summary in found:
                shared = _overlap(summary.epochs_at(entry.switch),
                                  entry.epochs)
                if shared is None or summary.priority <= current_prio:
                    continue
                if summary.flow in chain:
                    continue
                cand = Culprit(flow=summary.flow, host=host,
                               switch=entry.switch,
                               priority=summary.priority,
                               bytes=summary.bytes, shared_epochs=shared)
                if best is None or cand.priority > best.priority:
                    best = cand
        bd.add("diagnosis", stage_bd.total)
        if best is None:
            break
        culprits.append(best)
        chain.append(best.flow)
        # climb: re-examine the culprit's own path via its host's record
        next_alert = _alert_for_flow(analyzer, best.flow, best.host,
                                     current.time)
        if next_alert is None:
            break
        current = next_alert
        current_prio = best.priority

    names = " <- ".join(f.pretty() for f in chain)
    return _stamp_approx(analyzer, Verdict(
        problem="traffic-cascade", victim=alert.flow,
        culprits=culprits, breakdown=bd,
        hosts_consulted=sorted(consulted), cascade_chain=chain,
        narrative=f"cascade chain: {names}"))


def _alert_for_flow(analyzer: Analyzer, flow: FlowKey, host: str,
                    t: float) -> Optional[VictimAlert]:
    """Synthesize an alert-shaped view of a non-victim flow's record."""
    agent = analyzer.host_agents.get(host)
    if agent is None:
        return None
    rec = agent.store.get(flow)
    if rec is None or not rec.switch_path:
        return None
    from ..hostd.triggers import alert_tuples_from_record
    return VictimAlert(flow=flow, host=host, time=t, kind="re-examination",
                       tuples=alert_tuples_from_record(rec))


# ---------------------------------------------------------------------------
# §5.4 load imbalance
# ---------------------------------------------------------------------------

def diagnose_load_imbalance(analyzer: Analyzer, switch: str, *,
                            epochs: EpochRange,
                            size_threshold: int = 1_000_000,
                            level: int = 1) -> Verdict:
    """Compare flow-size distributions across a switch's egress sides.

    Pulls the pointer covering the recent window (the paper fetches "the
    most recent 1 sec"), queries every implicated host for a per-egress
    flow-size distribution, and checks for a clean size separation.
    """
    bd = Breakdown()
    bd.add("pointer_retrieval", analyzer.rpc.pointer_pull_cost(1))
    hosts = analyzer.hosts_for(switch, epochs, level=level)
    results, q_bd = analyzer.consult_hosts(
        hosts,
        lambda agent: agent.query.flow_size_distribution(switch=switch,
                                                         epochs=epochs))
    bd.add("diagnosis", q_bd.total)

    merged: dict[str, list[int]] = {}
    for res in results.values():
        for egress, sizes in res.payload.items():
            merged.setdefault(egress, []).extend(sizes)

    imbalanced, narrative = _separation_verdict(merged, size_threshold)
    return _stamp_approx(analyzer, Verdict(
        problem="load-imbalance", victim=None, breakdown=bd,
        hosts_consulted=sorted(hosts), imbalanced=imbalanced,
        distribution=merged, narrative=narrative))


# ---------------------------------------------------------------------------
# incast (N-to-1 synchronized fan-in)
# ---------------------------------------------------------------------------

def diagnose_incast(analyzer: Analyzer, alert: VictimAlert, *,
                    min_fan_in: int = 3) -> Verdict:
    """Was the victim's collapse an N-to-1 synchronized fan-in?

    Unlike :func:`diagnose_contention`, the victim's *own destination*
    is consulted: in an incast every culprit flow terminates at the
    victim's destination, so that host holds all of their records.  The
    verdict is ``incast`` when, at some on-path switch, at least
    ``min_fan_in`` epoch-sharing culprits target the victim's
    destination; otherwise it degrades to the generic contention call.
    """
    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    per_switch, ptr_bd = analyzer.locate_relevant_hosts(alert)
    bd = bd.merged(ptr_bd)

    culprits: list[Culprit] = []
    consulted: set[str] = set()
    fan_in: dict[str, int] = {}
    diag_bd = Breakdown()
    for entry in per_switch:
        if not entry.hosts:
            continue
        consulted.update(entry.hosts)
        found, q_bd = analyzer.contending_flows(entry.hosts, entry.switch,
                                                entry.epochs, alert)
        diag_bd = diag_bd.merged(q_bd)
        for host, summary in found:
            shared = _overlap(summary.epochs_at(entry.switch), entry.epochs)
            if shared is None:
                continue
            culprits.append(Culprit(
                flow=summary.flow, host=host, switch=entry.switch,
                priority=summary.priority, bytes=summary.bytes,
                shared_epochs=shared))
            if summary.flow.dst == alert.flow.dst:
                fan_in[entry.switch] = fan_in.get(entry.switch, 0) + 1
    bd.add("diagnosis", diag_bd.total)

    if fan_in and max(fan_in.values()) >= min_fan_in:
        # Ties go to the latest on-path switch: the fan-in is visible at
        # every hop the culprits share, but the convergence point is the
        # last one before the destination.
        suspect = max(enumerate(alert.switch_path),
                      key=lambda iv: (fan_in.get(iv[1], 0), iv[0]))[1]
        n = fan_in[suspect]
        return _stamp_approx(analyzer, Verdict(
            problem="incast", victim=alert.flow, culprits=culprits,
            breakdown=bd, hosts_consulted=sorted(consulted),
            suspect=suspect,
            narrative=(f"{n} synchronized flows converged on "
                       f"{alert.flow.dst} at {suspect} "
                       f"(N-to-1 incast fan-in)")))
    # No fan-in: degrade to the §5.1 classification, reusing the
    # culprits already gathered rather than re-querying the hosts.
    victim_prio = _victim_priority(analyzer, alert)
    priority_based = any(c.priority > victim_prio for c in culprits)
    problem = ("priority-contention" if priority_based
               else "microburst-contention")
    narrative = (
        f"no incast fan-in found; {len(culprits)} flow(s) contended "
        f"with {alert.flow.pretty()}; "
        + ("high-priority traffic starved the victim"
           if priority_based else
           "equal-priority burst overflowed the queue (microburst)"))
    return _stamp_approx(analyzer, Verdict(
        problem=problem, victim=alert.flow, culprits=culprits,
        breakdown=bd, hosts_consulted=sorted(consulted),
        narrative=narrative))


# ---------------------------------------------------------------------------
# silent packet drops / gray failure
# ---------------------------------------------------------------------------

def diagnose_gray_failure(analyzer: Analyzer, flow: FlowKey, *,
                          silence_epochs: EpochRange,
                          path: Optional[list[str]] = None,
                          level: int = 1) -> Verdict:
    """Localize a silent (gray) drop of ``flow`` to one hop.

    ``silence_epochs`` is the window in which the destination stopped
    seeing the flow.  The trajectory defaults to the flow record at the
    destination host (captured while the flow was still healthy); the
    per-switch pointers over the silence window then form the spatial
    cut that :func:`~repro.analyzer.netdebug.localize_packet_drops`
    turns into a suspect hop.
    """
    from .netdebug import localize_packet_drops

    if path is None:
        agent = analyzer.host_agents.get(flow.dst)
        rec = agent.store.get(flow) if agent is not None else None
        path = list(rec.switch_path) if rec is not None else []
    loc = localize_packet_drops(analyzer, flow, path, silence_epochs,
                                level=level)
    if loc.localized:
        here, nxt = loc.suspect_hop
        suspect = nxt if nxt in analyzer.switch_agents else here
        upstream = ", ".join(loc.forwarding) if loc.forwarding else "no"
        narrative = (
            f"packets of {flow.pretty()} vanish between {here} and {nxt}; "
            f"pointers still name {flow.dst} at {upstream} upstream "
            f"switch(es), never at {', '.join(loc.silent)}")
        ranked = rank_co_suspects(analyzer, suspect, silence_epochs)
        return _stamp_approx(analyzer, Verdict(
            problem="gray-failure", victim=flow,
            breakdown=loc.breakdown, suspect=suspect,
            co_suspects=[c.switch for c in ranked],
            narrative=narrative))
    return _stamp_approx(analyzer, Verdict(
        problem="gray-failure", victim=flow,
        breakdown=loc.breakdown, suspect=None,
        narrative=(f"no spatial cut on {flow.pretty()}'s path "
                   f"in epochs {silence_epochs.lo}-"
                   f"{silence_epochs.hi}")))


def diagnose_gray_failure_online(analyzer: Analyzer, flow: FlowKey, *,
                                 silence_epochs: EpochRange,
                                 session: "DiagnosisSession"
                                 ) -> Verdict:
    """The incremental, simulated-time variant of gray-failure diagnosis.

    Run inside a bound :class:`~repro.analyzer.session.DiagnosisSession`
    (``with session:``), so every step below consumes simulated time and
    races whatever the network does next:

    1. the victim's trajectory is fetched from its destination host
       through the session (a crashed destination times out and the
       verdict degrades with the gap named, instead of erroring);
    2. the spatial cut is localized from the per-switch pointers at the
       best-effort hierarchy level (``level=None``) — the clock may
       rotate epochs out of level 1 while the pulls are in flight;
    3. one more **delta round** re-reads the destination for records
       updated while steps 1–2 ran, so evidence that arrived during the
       diagnosis (ingestion continues throughout) still reaches the
       verdict;
    4. the verdict is stamped ``complete | degraded | stale``.
    """
    from .netdebug import localize_packet_drops

    bd = Breakdown()
    bd.add("problem_detection", DETECTION_S)
    bd.add("alert_to_analyzer", analyzer.rpc.alert_cost())

    # step 1: trajectory from the destination's record, via the session
    results, q_bd = analyzer.consult_hosts(
        [flow.dst], lambda agent: agent.query.flow_details(flow),
        session=session)
    bd = bd.merged(q_bd)
    path: list[str] = []
    detail = results.get(flow.dst)
    if detail is not None and detail.payload is not None:
        path = list(detail.payload.switch_path)

    # step 2: spatial cut over the silence window
    loc = localize_packet_drops(analyzer, flow, path, silence_epochs,
                                level=None)
    bd = bd.merged(loc.breakdown)

    # step 3: catch evidence that landed while steps 1-2 consumed time
    if path:
        _, d_bd = session.delta_flows([flow.dst], path[0], silence_epochs)
        bd = bd.merged(d_bd)

    if loc.localized:
        here, nxt = loc.suspect_hop
        suspect = nxt if nxt in analyzer.switch_agents else here
        upstream = ", ".join(loc.forwarding) if loc.forwarding else "no"
        narrative = (
            f"packets of {flow.pretty()} vanish between {here} and {nxt}; "
            f"pointers still name {flow.dst} at {upstream} upstream "
            f"switch(es), never at {', '.join(loc.silent)}")
        ranked = rank_co_suspects(analyzer, suspect, silence_epochs)
        verdict = Verdict(problem="gray-failure", victim=flow,
                          breakdown=bd, suspect=suspect,
                          hosts_consulted=[flow.dst],
                          co_suspects=[c.switch for c in ranked],
                          narrative=narrative)
    else:
        verdict = Verdict(
            problem="gray-failure", victim=flow, breakdown=bd,
            suspect=None, hosts_consulted=[flow.dst],
            narrative=(f"no spatial cut on {flow.pretty()}'s path "
                       f"in epochs {silence_epochs.lo}-"
                       f"{silence_epochs.hi}"))
    return _stamp_approx(analyzer, session.stamp(verdict))


# ---------------------------------------------------------------------------
# ECMP hash polarization
# ---------------------------------------------------------------------------

def diagnose_polarization(analyzer: Analyzer, switch: str, *,
                          epochs: EpochRange,
                          skew_threshold: float = 0.8,
                          level: int = 1) -> Verdict:
    """Is the multipath split at ``switch`` polarized onto one egress?

    Pulls the switch's pointer, asks the implicated hosts for the
    per-egress flow census (the same §5.4 query the load-imbalance app
    uses), and flags polarization when the switch has ≥ 2 candidate
    switch egresses but one of them carries ≥ ``skew_threshold`` of the
    flows.  Unlike §5.4's size-split malfunction, the signature here is
    *count* concentration, not size separation.
    """
    bd = Breakdown()
    bd.add("pointer_retrieval", analyzer.rpc.pointer_pull_cost(1))
    hosts = analyzer.hosts_for(switch, epochs, level=level)
    results, q_bd = analyzer.consult_hosts(
        hosts,
        lambda agent: agent.query.flow_size_distribution(switch=switch,
                                                         epochs=epochs))
    bd.add("diagnosis", q_bd.total)

    merged: dict[str, list[int]] = {}
    for res in results.values():
        for egress, sizes in res.payload.items():
            merged.setdefault(egress, []).extend(sizes)

    peers = _switch_neighbors(analyzer, switch)
    counts = {e: len(sizes) for e, sizes in merged.items() if e in peers}
    total = sum(counts.values())
    verdict = Verdict(problem="ecmp-polarization", victim=None,
                      breakdown=bd, hosts_consulted=sorted(hosts),
                      distribution=merged)
    if len(peers) < 2 or total == 0:
        verdict.narrative = (f"{switch} has no multipath choice to "
                             f"polarize ({len(peers)} switch egress(es))")
        return _stamp_approx(analyzer, verdict)
    top = max(counts, key=lambda e: (counts[e], e))
    share = counts[top] / total
    idle = sorted(peers - set(counts))
    if share >= skew_threshold:
        verdict.imbalanced = True
        verdict.suspect = top
        verdict.narrative = (
            f"hash polarization at {switch}: {counts[top]}/{total} flows "
            f"({share:.0%}) exit via {top}"
            + (f"; {', '.join(idle)} idle" if idle else ""))
    else:
        verdict.narrative = (
            f"no polarization at {switch}: top egress {top} carries "
            f"{share:.0%} of {total} flows (threshold {skew_threshold:.0%})")
    return _stamp_approx(analyzer, verdict)


def _switch_neighbors(analyzer: Analyzer, switch: str) -> set[str]:
    """Names of switches physically adjacent to ``switch``.

    Deliberately ignores link liveness: the link-flap diagnosis must
    still see an egress whose link happens to be down at diagnosis time,
    or the flapped side could never be named.
    """
    net = analyzer.network
    sw = net.switches[switch]
    out = set()
    for link in net.links:
        if switch not in (link.a.name, link.b.name):
            continue
        peer = link.peer_of(sw).name
        if peer in net.switches:
            out.add(peer)
    return out


# ---------------------------------------------------------------------------
# link flap churn
# ---------------------------------------------------------------------------

def diagnose_link_flap(analyzer: Analyzer, branch_switch: str, *,
                       epochs: Optional[EpochRange] = None,
                       min_rerouted: int = 2,
                       churn_threshold: float = 0.6) -> Verdict:
    """Find a flapping egress link at a multipath branch switch.

    Telemetry signature of a flap: flows through ``branch_switch``
    accumulate epoch ranges at *both* egress switches (they were
    rerouted at least once).  The flapping egress is dominated by such
    churned flows — at least ``churn_threshold`` of its users also used
    the alternative — while the healthy egress keeps a stable majority
    of hash-assigned flows and is exonerated.  (Requiring *zero* stable
    users would be wrong: a TCP flow that stalls through every outage
    and retransmits after recovery never leaves the flapping side.)
    """
    bd = Breakdown()
    peers = _switch_neighbors(analyzer, branch_switch)
    if epochs is not None:
        # the pointer names exactly the hosts holding records for the
        # window under suspicion — consult only those
        bd.add("pointer_retrieval", analyzer.rpc.pointer_pull_cost(1))
        hosts = analyzer.hosts_for(branch_switch, epochs)
    else:
        hosts = sorted(analyzer.host_agents)   # full sweep, no pointer
    results, q_bd = analyzer.consult_hosts(
        hosts,
        lambda agent: agent.query.flows_matching(branch_switch, epochs))
    bd.add("diagnosis", q_bd.total)

    users: dict[str, int] = {e: 0 for e in peers}
    churned: dict[str, int] = {e: 0 for e in peers}
    rerouted: list[FlowKey] = []
    consulted = sorted(results)
    for host, res in results.items():
        for summary in res.payload:
            used = set()
            for e in peers:
                rng = summary.epochs_at(e)
                if rng is None:
                    continue
                # churn evidence must come from inside the window —
                # a detour during some *earlier* outage is not proof
                # the link flapped now
                if epochs is not None and not rng.intersects(epochs):
                    continue
                used.add(e)
            for e in used:
                users[e] += 1
                if len(used) >= 2:
                    churned[e] += 1
            if len(used) >= 2:
                rerouted.append(summary.flow)

    verdict = Verdict(problem="link-flap", victim=None, breakdown=bd,
                      hosts_consulted=consulted)
    if len(rerouted) < min_rerouted:
        verdict.narrative = (
            f"{len(rerouted)} flow(s) changed egress at {branch_switch} "
            f"(need {min_rerouted}); no flap inferred")
        return _stamp_approx(analyzer, verdict)
    fractions = {e: churned[e] / users[e] for e in peers if users[e]}
    candidates = [e for e, f in fractions.items()
                  if f >= churn_threshold]
    if len(candidates) != 1:
        who = (f"{len(candidates)} egresses exceed the churn threshold"
               if candidates else "no egress exceeds the churn threshold")
        verdict.narrative = (
            f"{len(rerouted)} flows oscillated at {branch_switch} but "
            f"{who}; flap not localized")
        return _stamp_approx(analyzer, verdict)
    flapped = candidates[0]
    verdict.suspect = f"{branch_switch}-{flapped}"
    others = ", ".join(sorted(e for e in peers if e != flapped))
    verdict.narrative = (
        f"link {branch_switch}-{flapped} flapped: {churned[flapped]} of "
        f"{users[flapped]} flows on it also detoured via {others}; "
        f"{len(rerouted)} flow(s) rerouted in total")
    return _stamp_approx(analyzer, verdict)


# ---------------------------------------------------------------------------
# directory similarity ("which switches saw the same hosts?")
# ---------------------------------------------------------------------------

@dataclass
class CoSuspect:
    """One switch ranked by directory similarity to a culprit switch."""

    switch: str
    #: Jaccard similarity of directory contents over the window —
    #: estimated from minhash signatures under the ``lsh`` backend,
    #: exact over decoded slot sets otherwise
    similarity: float
    #: LSH bands in full agreement (0 under non-``lsh`` backends); a
    #: positive count is the sketch's "probable near-duplicate" signal
    band_matches: int = 0


def rank_co_suspects(analyzer: Analyzer, suspect: str, epochs: EpochRange,
                     *, limit: int = 3,
                     min_similarity: float = 0.0) -> list[CoSuspect]:
    """Switches whose directories over ``epochs`` resemble ``suspect``'s.

    The similarity query the ``lsh`` backend exists for: "find the
    switches that saw (roughly) the same hosts as this culprit" — the
    co-suspect set for correlated faults (a shared linecard, a common
    upstream, a multi-switch gray failure).  Under ``lsh`` the ranking
    uses banded minhash signatures (band agreement as the candidate
    signal, signature Jaccard as the score) without decoding any
    membership bits; under ``exact``/``bloom`` it falls back to exact
    Jaccard over the decoded slot sets, so the query is available — just
    not sketch-accelerated — on every backend.

    Only switches with *some* overlap evidence survive: positive
    similarity above ``min_similarity``, or at least one matching LSH
    band.  Deterministic: ties break lexicographically.
    """
    agent = analyzer.switch_agents.get(suspect)
    if agent is None:
        return []
    ref = _merged_directory_set(
        agent.best_effort_snapshots(epochs.lo, epochs.hi)[0])
    if ref is None:
        return []
    ranked: list[CoSuspect] = []
    for name in sorted(analyzer.switch_agents):
        if name == suspect:
            continue
        other_agent = analyzer.switch_agents[name]
        other = _merged_directory_set(
            other_agent.best_effort_snapshots(epochs.lo, epochs.hi)[0])
        if other is None:
            continue
        if (isinstance(ref, LshDirectorySet)
                and isinstance(other, LshDirectorySet)):
            bands = ref.band_matches(other)
            sim = ref.jaccard(other)
        else:
            a, b = set(ref.iter_slots()), set(other.iter_slots())
            union = a | b
            sim = len(a & b) / len(union) if union else 0.0
            bands = 0
        if sim > min_similarity or bands > 0:
            ranked.append(CoSuspect(switch=name, similarity=sim,
                                    band_matches=bands))
    ranked.sort(key=lambda c: (-c.similarity, -c.band_matches, c.switch))
    return ranked[:limit]


def _merged_directory_set(
        snaps: Sequence[PointerSnapshot]) -> Optional[DirectorySet]:
    """Decode + union pushed/live snapshots into one directory set.

    Returns ``None`` for an empty window.  All snapshots in a
    deployment share one backend and geometry, so pairwise
    ``union_into`` is always legal here.
    """
    merged: Optional[DirectorySet] = None
    for snap in snaps:
        ds = decode_directory_set(snap.backend, snap.n_slots, snap.bits,
                                  bits=snap.bits_budget,
                                  hashes=snap.hashes)
        if merged is None:
            merged = ds
        else:
            ds.union_into(merged)
    return merged


def _separation_verdict(dist: dict[str, list[int]],
                        threshold: int) -> tuple[bool, str]:
    if len(dist) < 2:
        return False, "traffic uses fewer than two egress interfaces"
    small = [e for e, sizes in dist.items()
             if sizes and max(sizes) < threshold]
    large = [e for e, sizes in dist.items()
             if sizes and min(sizes) >= threshold]
    if small and large:
        return True, (
            f"clean separation: flows < {threshold} B exit via "
            f"{sorted(small)}, flows >= {threshold} B via {sorted(large)}")
    return False, "flow sizes mix across egress interfaces"
