"""Fixture: registers a fault, but the package never imports it."""

from .base import Fault, register_fault


@register_fault
class OrphanFault(Fault):
    spec = "orphan"
