"""Scale topology: fat-tree-for-hosts generator and fast route install.

``compute_routes`` was rewritten from an all-pairs × all-links scan to
BFS-from-switches + per-switch incident links; the reference
implementation below re-states the old semantics so the rewrite stays
behaviorally pinned (including ECMP candidate order, which the
load-imbalance and polarization scenarios depend on).
"""

import networkx as nx
import pytest

from repro.simnet.topology import (TopologyError, build_fat_tree,
                                   build_fat_tree_for_hosts,
                                   build_leaf_spine, build_linear,
                                   build_star)


def reference_routes(net) -> dict[tuple[str, str], list[int]]:
    """The pre-rewrite compute_routes semantics, as ECMP candidate
    link-id lists per (switch, dst)."""
    g = net.live_graph()
    dist = dict(nx.all_pairs_shortest_path_length(g))
    out: dict[tuple[str, str], list[int]] = {}
    for sw_name, sw in net.switches.items():
        for dst in net.hosts:
            candidates = []
            d_here = dist[sw_name].get(dst)
            if d_here is None:
                continue
            for link in net.links:
                if not link.up:
                    continue
                if sw_name not in (link.a.name, link.b.name):
                    continue
                peer = link.peer_of(sw)
                if dist[peer.name].get(dst) == d_here - 1:
                    candidates.append(link.link_id)
            if candidates:
                out[(sw_name, dst)] = candidates
    return out


def installed_routes(net) -> dict[tuple[str, str], list[int]]:
    out = {}
    for sw_name, sw in net.switches.items():
        for dst in net.hosts:
            ifaces = sw.routes_for(dst)
            if ifaces:
                out[(sw_name, dst)] = [iface.link.link_id
                                       for iface in ifaces]
    return out


class TestComputeRoutesEquivalence:
    @pytest.mark.parametrize("build", [
        lambda: build_star(5),
        lambda: build_linear(4, hosts_per_switch=3),
        lambda: build_leaf_spine(4, 2, hosts_per_leaf=3),
        lambda: build_fat_tree(4),
    ])
    def test_matches_reference_incl_candidate_order(self, build):
        net = build()
        assert installed_routes(net) == reference_routes(net)

    def test_matches_reference_after_link_down(self):
        net = build_leaf_spine(4, 2, hosts_per_leaf=2)
        net.set_link_state("leaf0", "spine0", up=False)
        assert installed_routes(net) == reference_routes(net)

    def test_matches_reference_on_partition(self):
        net = build_linear(3, hosts_per_switch=1)
        net.set_link_state("S1", "S2", up=False)
        routes = installed_routes(net)
        assert routes == reference_routes(net)
        # S1 lost every path to the hosts beyond the cut
        assert ("S1", "h2_0") not in routes
        assert ("S1", "h1_0") in routes

    def test_matches_reference_after_reconvergence(self):
        net = build_leaf_spine(4, 2, hosts_per_leaf=2)
        net.set_link_state("leaf0", "spine0", up=False)
        net.set_link_state("leaf0", "spine0", up=True)
        assert installed_routes(net) == reference_routes(net)


class TestFatTreeForHosts:
    @pytest.mark.parametrize("n", [1, 7, 64, 100, 256, 1024])
    def test_exact_host_count(self, n):
        net = build_fat_tree_for_hosts(n)
        assert len(net.hosts) == n

    def test_switch_fabric_stays_bounded(self):
        small = build_fat_tree_for_hosts(256)
        large = build_fat_tree_for_hosts(4096)
        # pods saturate first, then hosts-per-edge grows: the switching
        # fabric is the same shape at both populations
        assert len(large.switches) == len(small.switches)

    def test_all_pairs_reachable_in_sample(self):
        net = build_fat_tree_for_hosts(96)
        names = net.host_names
        for src, dst in zip(names[:4], reversed(names[-4:])):
            assert nx.has_path(net.graph(), src, dst)
            sw = net.switches[next(
                n for n in net.graph().neighbors(src)
                if n in net.switches)]
            assert sw.routes_for(dst)

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            build_fat_tree_for_hosts(0)
        with pytest.raises(TopologyError):
            build_fat_tree_for_hosts(8, k=3)
        with pytest.raises(TopologyError):
            build_fat_tree_for_hosts(8, max_pods=0)


class TestFatTreeExtensions:
    def test_n_pods_override(self):
        net = build_fat_tree(4, n_pods=2)
        pods = {name.split("_")[0] for name in net.switches
                if name.startswith("edge")}
        assert pods == {"edge0", "edge1"}

    def test_total_hosts_trims_the_last_edges(self):
        net = build_fat_tree(4, n_pods=2, total_hosts=5)
        assert len(net.hosts) == 5

    def test_classic_shape_unchanged(self):
        net = build_fat_tree(4)
        assert len(net.hosts) == 16
        assert len(net.switches) == 20
