"""Non-strict fixture: a declared wall-clock measurement site."""

import time


def measure() -> float:
    return time.perf_counter()  # reprolint: allow[wall-clock]


def measure_wrapped() -> float:
    # pragma on the statement's first line blesses the wrapped call
    return (  # reprolint: allow[wall-clock]
        time.perf_counter()
    )
