"""Fixture stand-in for the fault registry surface."""


class Fault:
    pass


def register_fault(cls: type) -> type:
    return cls
