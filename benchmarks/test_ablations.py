"""Ablations of SwitchPointer's design choices (DESIGN.md §5).

Not paper figures — these quantify the tradeoffs the paper argues
qualitatively:

* the §4.1.2 strawman (collision-free-by-overprovisioning hash table)
  vs the MPHF, in memory;
* epoch size α vs directory precision (hosts per pointer → search
  radius → diagnosis fan-out), the §3 tradeoff;
* the §4.3 search-radius pruning, in hosts consulted.
"""

import pytest

from repro import SwitchPointerDeployment
from repro.core.epoch import EpochRange
from repro.core.mphf import MinimalPerfectHash
from repro.simnet.packet import make_udp
from repro.simnet.topology import build_linear

from benchmarks.reporting import emit


def strawman_buckets_for_collision_target(m: int, target_fraction: float
                                          ) -> int:
    """§4.1.2: expected collisions m − (n − n(1 − 1/n)^m); find the
    bucket count n meeting the target by doubling + bisection."""
    def expected_collisions(n: float) -> float:
        return m - (n - n * (1 - 1 / n) ** m)

    target = target_fraction * m
    lo, hi = float(m), float(m)
    while expected_collisions(hi) > target:
        hi *= 2
    for _ in range(60):
        mid = (lo + hi) / 2
        if expected_collisions(mid) > target:
            lo = mid
        else:
            hi = mid
    return int(hi)


@pytest.mark.benchmark(group="ablations")
def test_ablation_mphf_vs_hash_table_strawman(benchmark):
    """The paper's 100K-key example: ~50M buckets for 0.1% collisions,
    500x overprovisioning — vs 1 bit/key + a few bits/key of MPHF."""
    m = 100_000

    def run():
        buckets = strawman_buckets_for_collision_target(m, 0.001)
        keys = [f"h{i}" for i in range(2000)]
        mphf = MinimalPerfectHash.build(keys)
        return buckets, mphf.bits_per_key()

    buckets, bits_per_key = benchmark.pedantic(run, rounds=1,
                                               iterations=1)
    strawman_bits = buckets          # 1 bit per bucket
    mphf_bits = m * (1 + bits_per_key)  # pointer bit + aux state
    emit("ablation_mphf_vs_strawman", [
        f"strawman buckets for 0.1% collisions over {m} keys: "
        f"{buckets:,} (paper: ~50 million, ~500x keys)",
        f"strawman pointer-set bits: {strawman_bits:,}",
        f"MPHF pointer-set bits (1/key) + aux ({bits_per_key:.2f}/key): "
        f"{int(mphf_bits):,}",
        f"memory ratio strawman/MPHF: {strawman_bits / mphf_bits:.0f}x",
    ])
    assert 400 * m <= buckets <= 600 * m  # the paper's '500x larger'
    assert strawman_bits / mphf_bits > 50


@pytest.mark.benchmark(group="ablations")
def test_ablation_epoch_size_vs_search_radius(benchmark):
    """§3: larger epochs → more destinations per pointer → more hosts
    the analyzer must touch per diagnosis."""
    n_pairs = 24

    def hosts_per_pointer(alpha_ms: int) -> float:
        net = build_linear(2, n_pairs)
        deploy = SwitchPointerDeployment(net, alpha_ms=alpha_ms, k=2,
                                         epsilon_ms=1, delta_ms=2)
        # one flow per ms, rotating over destinations
        for i in range(60):
            dst = f"h2_{i % n_pairs}"
            src = f"h1_{i % n_pairs}"
            net.sim.schedule_at(i / 1000.0,
                                lambda s=src, d=dst: net.hosts[s].send(
                                    make_udp(s, d, 1, 9, 300)))
        net.run()
        store = deploy.datapaths["S1"].store
        last_epoch = deploy.datapaths["S1"].clock.epoch_of(0.060)
        sizes = []
        for e in range(last_epoch + 1):
            snap = store.snapshot(1, e)
            if snap is not None:
                sizes.append(len(snap.slots()))
        return sum(sizes) / len(sizes) if sizes else 0.0

    def run():
        return {a: hosts_per_pointer(a) for a in (5, 10, 20, 40)}

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_epoch_size", [
        "alpha_ms  mean hosts per level-1 pointer",
        *(f"  {a:6d}  {v:6.2f}" for a, v in sizes.items()),
        "(the §3 tradeoff: larger epochs blur the directory, widening "
        "the analyzer's search radius)"])
    values = [sizes[a] for a in (5, 10, 20, 40)]
    assert values == sorted(values)
    assert values[-1] > 2 * values[0]


@pytest.mark.benchmark(group="ablations")
def test_ablation_search_radius_pruning(benchmark):
    """§4.3: topology pruning removes hosts whose paths share no
    segment with the victim."""
    from repro.hostd.triggers import SwitchEpochTuple, VictimAlert
    from repro.simnet.packet import FlowKey, PROTO_UDP

    def run():
        net = build_linear(3, 8)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        # victim's path: S1-S2-S3 to h3_0
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 400))
        # trunk sharers: S1->S2 traffic to h2_*
        for i in range(4):
            net.hosts["h1_1"].send(
                make_udp("h1_1", f"h2_{i}", 10 + i, 9, 400))
        # local S2 traffic to other h2_* — crosses S2 but exits on host
        # ports the victim never uses
        for i in range(4, 8):
            net.hosts["h2_3"].send(
                make_udp("h2_3", f"h2_{i}", 20 + i, 9, 400))
        net.run()
        alert = VictimAlert(
            flow=FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP), host="h3_0",
            time=0.001, kind="throughput-drop",
            tuples=[SwitchEpochTuple(switch="S2",
                                     epochs=EpochRange(0, 0))])
        with_prune, _ = deploy.analyzer.locate_relevant_hosts(
            alert, prune=True)
        without, _ = deploy.analyzer.locate_relevant_hosts(
            alert, prune=False)
        return (len(with_prune[0].hosts), len(with_prune[0].pruned),
                len(without[0].hosts))

    kept, pruned, unpruned = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    emit("ablation_pruning", [
        f"hosts in S2 pointer without pruning: {unpruned}",
        f"with pruning: {kept} kept, {pruned} dropped",
        "(each dropped host is one connection initiation saved per "
        "diagnosis)"])
    assert kept + pruned == unpruned
    assert pruned >= 4          # all the local-only destinations dropped
    assert kept < unpruned
