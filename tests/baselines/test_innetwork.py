"""Unit tests for the in-network baselines (the §2 gap demonstrations)."""

import pytest

from repro.baselines.innetwork import PortCounterMonitor, SampledNetFlow
from repro.simnet.packet import PRIO_HIGH
from repro.simnet.topology import build_linear
from repro.simnet.traffic import UdpCbrSource, UdpSink


def dumbbell(n=3):
    return build_linear(2, n)


class TestSampledNetFlow:
    def test_samples_subset(self):
        net = dumbbell()
        sampler = SampledNetFlow(net.switches["S1"], sample_rate=10)
        UdpSink(net.hosts["h2_0"], 7)
        UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7, dport=7,
                     rate_bps=1e9, duration=0.010)
        net.run()
        assert sampler.packets_seen > 500
        assert 0 < len(sampler.samples) < sampler.packets_seen

    def test_misses_microburst_at_typical_rates(self):
        """§2.1: a ~1 ms burst is invisible at 1-in-1000 sampling with
        high probability — the motivating failure of Sampled NetFlow."""
        net = dumbbell()
        sampler = SampledNetFlow(net.switches["S1"], sample_rate=1000,
                                 seed=7)
        UdpSink(net.hosts["h2_0"], 7)
        # ~84 packets in the burst; P(miss) = (1-1/1000)^84 ~ 0.92
        burst = UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7,
                             dport=7, rate_bps=1e9, start=0.005,
                             duration=0.001, priority=PRIO_HIGH)
        net.run()
        missed = sampler.missed_flows({burst.flow}, 0.005, 0.007)
        assert burst.flow in missed

    def test_catches_sustained_flow(self):
        net = dumbbell()
        sampler = SampledNetFlow(net.switches["S1"], sample_rate=100,
                                 seed=3)
        UdpSink(net.hosts["h2_0"], 7)
        flow = UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7,
                            dport=7, rate_bps=1e9, duration=0.050)
        net.run()
        assert flow.flow in sampler.flows_observed_during(0.0, 0.050)

    def test_invalid_rate(self):
        net = dumbbell()
        with pytest.raises(ValueError):
            SampledNetFlow(net.switches["S1"], sample_rate=0)


class TestPortCounterMonitor:
    def test_port_series_counts_bytes(self):
        net = dumbbell()
        mon = PortCounterMonitor(net.switches["S1"], window=0.001)
        UdpSink(net.hosts["h2_0"], 7)
        UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7, dport=7,
                     rate_bps=1e9, duration=0.005)
        net.run()
        series = mon.port_series("S1->S2")
        assert series, "trunk port must have counters"
        assert max(g for _, g in series) > 0.5  # near line rate

    def test_cannot_distinguish_contention_kinds(self):
        """§2.1: counters see 'busy', never 'priority vs microburst'."""
        net = dumbbell()
        mon = PortCounterMonitor(net.switches["S1"], window=0.001)
        UdpSink(net.hosts["h2_0"], 7)
        UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7, dport=7,
                     rate_bps=1e9, start=0.002, duration=0.002,
                     priority=PRIO_HIGH)
        net.run()
        assert mon.classify_contention("S1->S2", 0.002,
                                       0.004) == "unknown-contention"

    def test_idle_port_reports_no_contention(self):
        net = dumbbell()
        mon = PortCounterMonitor(net.switches["S1"], window=0.001)
        net.run()
        assert mon.classify_contention("S1->S2", 0.0,
                                       0.001) == "no-contention"

    def test_invalid_window(self):
        net = dumbbell()
        with pytest.raises(ValueError):
            PortCounterMonitor(net.switches["S1"], window=0)
