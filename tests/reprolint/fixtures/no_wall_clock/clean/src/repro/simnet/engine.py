"""Strict-zone fixture: simulated time only."""


class Sim:
    now = 0.0


def tick(sim: Sim) -> float:
    return sim.now
