"""End-host model.

A :class:`Host` terminates one link (its NIC) and demultiplexes arriving
packets to bound handlers by ``(protocol, destination port)`` — the role
sockets play on a real server.  Two extension points matter to
SwitchPointer:

* ``sniffers`` run on *every* received packet before socket delivery;
  the end-host telemetry collector (:mod:`repro.hostd`) attaches here,
  mirroring PathDump's position on the host datapath.
* ``send`` stamps ``created_at`` so latency and inter-arrival metrics
  have a consistent origin.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import Simulator
from .link import Interface
from .packet import Packet

#: Socket handler: called with (packet, arrival_time).
SocketHandler = Callable[[Packet, float], None]
#: Sniffer: called with (host, packet, arrival_time).
Sniffer = Callable[["Host", Packet, float], None]


class Host:
    """A server attached to the network by a single NIC."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.nic: Optional[Interface] = None
        self._sockets: dict[tuple[int, int], SocketHandler] = {}
        self.sniffers: list[Sniffer] = []
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.undeliverable = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, iface: Interface) -> None:
        if iface.owner is not self:
            raise ValueError("interface is not owned by this host")
        if self.nic is not None:
            raise ValueError(f"host {self.name} already has a NIC")
        self.nic = iface

    def bind(self, proto: int, port: int, handler: SocketHandler) -> None:
        """Register ``handler`` for packets to (proto, port)."""
        key = (proto, port)
        if key in self._sockets:
            raise ValueError(f"port {key} already bound on {self.name}")
        self._sockets[key] = handler

    def unbind(self, proto: int, port: int) -> None:
        self._sockets.pop((proto, port), None)

    # -- datapath ------------------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Transmit ``pkt`` out the NIC; False if the NIC queue dropped it."""
        if self.nic is None:
            raise RuntimeError(f"host {self.name} has no NIC")
        pkt.created_at = self.sim.now
        self.tx_packets += 1
        self.tx_bytes += pkt.size
        return self.nic.send(pkt)

    def receive(self, pkt: Packet, iface: Interface) -> None:
        now = self.sim.now
        self.rx_packets += 1
        self.rx_bytes += pkt.size
        for sniffer in self.sniffers:
            sniffer(self, pkt, now)
        handler = self._sockets.get((pkt.flow.proto, pkt.flow.dport))
        if handler is None:
            self.undeliverable += 1
            return
        handler(pkt, now)

    def __repr__(self) -> str:
        return f"Host({self.name})"
