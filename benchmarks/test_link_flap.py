"""Link flap — localization vs churn intensity.

The S1—SPA trunk flaps with increasing frequency (shorter up dwells →
more cycles in the same run).  The analyzer must pin the flap on
S1-SPA at every intensity, and the dataplane damage (blackhole drops,
TCP retransmission timeouts) should grow with the churn.
"""

import pytest

from repro.scenarios import LinkFlapScenario

from benchmarks.reporting import emit

#: (down_for, up_for) dwell pairs, most gentle first.
DWELLS = [(0.004, 0.016), (0.006, 0.010), (0.008, 0.006)]


def run_sweep():
    rows = {}
    for down_for, up_for in DWELLS:
        rows[(down_for, up_for)] = LinkFlapScenario(
            n_flows=8, down_for=down_for, up_for=up_for).execute()
    return rows


@pytest.mark.benchmark(group="link_flap")
def test_link_flap_localization(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["down_ms  up_ms  flaps  suspect  down_drops  tcp_timeouts"]
    data = {}
    for (down_for, up_for), res in rows.items():
        v = res.verdict("link-flap")
        m = res.measurements
        lines.append(f"  {down_for * 1e3:5.0f}  {up_for * 1e3:5.0f}  "
                     f"{m['flaps']:5d}  {str(v.suspect):7s}  "
                     f"{m['down_drops']:10d}  {m['tcp_timeouts']:12d}")
        data[f"{down_for * 1e3:.0f}ms_down_{up_for * 1e3:.0f}ms_up"] = {
            "flaps": m["flaps"], "suspect": v.suspect,
            "down_drops": m["down_drops"],
            "tcp_timeouts": m["tcp_timeouts"]}
    lines.append("(expected: suspect S1-SPA at every churn intensity)")
    emit("link_flap", lines, data=data)

    for key, row in data.items():
        assert row["suspect"] == "S1-SPA", key
        assert row["down_drops"] > 0, key
    drops = [row["down_drops"] for row in data.values()]
    assert drops[-1] > drops[0], "more churn must strand more packets"
