"""Unit tests for the extended debugging apps (§2.4 use cases)."""

import pytest

from repro import SwitchPointerDeployment
from repro.analyzer.netdebug import (check_path_conformance,
                                     localize_packet_drops)
from repro.core.epoch import EpochRange
from repro.simnet.packet import FlowKey, PROTO_UDP, make_udp
from repro.simnet.topology import build_linear


def blackhole_after(net, switch_name: str) -> None:
    """Make a switch drop everything toward far destinations."""
    net.switches[switch_name].clear_routes()


class TestDropLocalization:
    def run_blackhole(self, fail_switch):
        net = build_linear(4, 1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        src, dst = "h1_0", "h4_0"
        # healthy phase: epochs 0-1
        for t in (0.001, 0.011):
            net.sim.schedule_at(t, lambda: net.hosts[src].send(
                make_udp(src, dst, 1, 9, 400)))
        # fault at 20 ms, then more traffic in epochs 2-4
        net.sim.schedule_at(0.020, lambda: blackhole_after(net,
                                                           fail_switch))
        for t in (0.025, 0.035, 0.045):
            net.sim.schedule_at(t, lambda: net.hosts[src].send(
                make_udp(src, dst, 1, 9, 400)))
        net.run()
        flow = FlowKey(src, dst, 1, 9, PROTO_UDP)
        return deploy, flow

    def test_cut_found_at_failed_switch(self):
        deploy, flow = self.run_blackhole("S3")
        loc = localize_packet_drops(
            deploy.analyzer, flow, ["S1", "S2", "S3", "S4"],
            EpochRange(2, 4))
        assert loc.localized
        # S3 dropped: S1, S2 kept forwarding; S3's pointer has the bit
        # only if it forwarded — routes cleared, so it did not
        assert loc.suspect_hop == ("S2", "S3")
        assert "S1" in loc.forwarding and "S2" in loc.forwarding
        assert "S3" in loc.silent and "S4" in loc.silent

    def test_cut_at_first_hop(self):
        deploy, flow = self.run_blackhole("S1")
        loc = localize_packet_drops(
            deploy.analyzer, flow, ["S1", "S2", "S3", "S4"],
            EpochRange(2, 4))
        assert loc.localized
        assert loc.suspect_hop == ("h1_0", "S1")
        assert loc.forwarding == []

    def test_healthy_window_not_localized(self):
        deploy, flow = self.run_blackhole("S3")
        loc = localize_packet_drops(
            deploy.analyzer, flow, ["S1", "S2", "S3", "S4"],
            EpochRange(0, 1))
        assert not loc.localized
        assert loc.silent == []

    def test_breakdown_charges_pointer_pulls(self):
        deploy, flow = self.run_blackhole("S3")
        loc = localize_packet_drops(
            deploy.analyzer, flow, ["S1", "S2", "S3", "S4"],
            EpochRange(2, 4))
        per = deploy.analyzer.rpc.model.pointer_pull_s
        assert loc.breakdown.parts["pointer_retrieval"] == \
            pytest.approx(4 * per)


class TestPathConformance:
    def test_all_conformant_on_clean_network(self):
        net = build_linear(3, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 400))
        net.hosts["h2_0"].send(make_udp("h2_0", "h3_1", 2, 9, 400))
        net.run()
        report = check_path_conformance(deploy.analyzer)
        assert report.flows_checked == 2
        assert report.conformant

    def test_off_policy_pin_detected(self):
        net = build_linear(3, 1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 400))
        net.run()
        flow = FlowKey("h1_0", "h3_0", 1, 9, PROTO_UDP)
        # policy says this flow must avoid S2 (impossible here) —
        # conformance must flag it
        report = check_path_conformance(
            deploy.analyzer,
            expected_paths={flow: ["S1", "S9", "S3"]})
        assert not report.conformant
        assert report.violations[0].kind == "off-policy"

    def test_loop_detected_from_forged_record(self):
        """A record whose trajectory repeats a switch is flagged."""
        net = build_linear(3, 1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h3_0", 1, 9, 400))
        net.run()
        agent = deploy.host_agents["h3_0"]
        rec = next(iter(agent.store))
        rec.switch_path = ["S1", "S2", "S1", "S2", "S3"]  # loop
        report = check_path_conformance(deploy.analyzer)
        kinds = {v.kind for v in report.violations}
        assert "loop" in kinds

    def test_non_shortest_flagged(self):
        net = build_linear(3, 1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.run()
        agent = deploy.host_agents["h2_0"]
        rec = next(iter(agent.store))
        rec.switch_path = ["S1", "S3", "S2"]  # detour, loop-free
        report = check_path_conformance(deploy.analyzer)
        kinds = {v.kind for v in report.violations}
        assert "non-shortest" in kinds

    def test_scoped_to_named_hosts(self):
        net = build_linear(2, 2)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         epsilon_ms=1, delta_ms=2)
        net.hosts["h1_0"].send(make_udp("h1_0", "h2_0", 1, 9, 400))
        net.hosts["h1_1"].send(make_udp("h1_1", "h2_1", 2, 9, 400))
        net.run()
        report = check_path_conformance(deploy.analyzer,
                                        hosts=["h2_0"])
        assert report.flows_checked == 1
