"""Concrete fault behaviors: partial deployment, agent crash, link
outage — inject and heal, against a live deployment."""

import pytest

from repro.deployment import SwitchPointerDeployment
from repro.faults import FAULTS, FaultContext, FaultError, FaultPlan
from repro.simnet.packet import PRIO_LOW
from repro.simnet.topology import build_leaf_spine, build_linear
from repro.simnet.traffic import UdpCbrSource, UdpSink


def _deployed_linear(n_switches=4, hosts_per_switch=1):
    net = build_linear(n_switches, hosts_per_switch=hosts_per_switch)
    deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
    return net, deploy


class TestPartialDeployment:
    def test_strips_and_restores_instrumentation(self):
        net, deploy = _deployed_linear()
        plan = FaultPlan()
        fault = plan.add_named("partial-deployment", frac=0.5,
                               spare="S1", start=0.001, stop=0.005)
        plan.schedule(FaultContext(net, deploy))
        net.run(until=0.002)
        assert len(fault.removed) == 2
        assert "S1" not in fault.removed
        for name in fault.removed:
            assert name not in deploy.datapaths
            assert name not in deploy.switch_agents
            assert not deploy.analyzer.is_instrumented(name)
        assert deploy.uninstrumented_switches == sorted(fault.removed)
        net.run(until=0.006)
        assert deploy.uninstrumented_switches == []
        assert set(deploy.datapaths) == set(net.switches)

    def test_stripped_switch_records_no_pointers(self):
        net, deploy = _deployed_linear()
        deploy.uninstrument_switch("S2")
        UdpSink(net.hosts["h4_0"], 7)
        UdpCbrSource(net.sim, net.hosts["h1_0"], "h4_0", sport=7,
                     dport=7, rate_bps=1e6, packet_size=500,
                     priority=PRIO_LOW, start=0.0, duration=0.02)
        net.run(until=0.03)
        # instrumented switches processed packets; S2 forwarded but
        # observed nothing
        assert deploy.datapaths["S1"].packets_processed > 0
        assert net.switches["S2"].forwarded > 0

    def test_analyzer_falls_back_to_all_hosts(self):
        from repro.core.epoch import EpochRange
        net, deploy = _deployed_linear()
        deploy.uninstrument_switch("S3")
        hosts = deploy.analyzer.hosts_for("S3", EpochRange(0, 5))
        assert hosts == sorted(net.hosts)

    def test_analyzer_still_raises_for_nonexistent_switch(self):
        # the host-only fallback is for *uninstrumented* switches; a
        # typo'd name must not come back as a plausible all-hosts list
        from repro.core.epoch import EpochRange
        _net, deploy = _deployed_linear()
        with pytest.raises(KeyError):
            deploy.analyzer.hosts_for("S99", EpochRange(0, 5))

    def test_clock_skew_heals_across_concurrent_stripping(self):
        # a partial-deployment fault removes switches from the
        # deployment between the skew fault's inject and heal; their
        # clocks must still be restored on heal
        net, deploy = _deployed_linear()
        clocks_before = {n: dp.clock.skew_s
                         for n, dp in deploy.datapaths.items()}
        plan = FaultPlan()
        plan.add_named("clock-skew", skew_ms=3.0, start=0.001,
                       stop=0.010)
        plan.add_named("partial-deployment", frac=0.5, spare="S1",
                       start=0.002)
        plan.schedule(FaultContext(net, deploy))
        net.run(until=0.012)
        stripped = deploy.uninstrumented_switches
        assert stripped                      # the composition happened
        for name, (dp, _agent) in deploy._stripped.items():
            assert dp.clock.skew_s == clocks_before[name]
        for name, dp in deploy.datapaths.items():
            assert dp.clock.skew_s == clocks_before[name]

    def test_unknown_spare_rejected(self):
        net, deploy = _deployed_linear()
        fault = FAULTS.create("partial-deployment", frac=0.5,
                              spare="S9")
        with pytest.raises(FaultError, match="unknown switch"):
            fault.inject(FaultContext(net, deploy))

    def test_bad_frac_rejected(self):
        with pytest.raises(FaultError, match="frac"):
            FAULTS.create("partial-deployment", frac=1.5)

    def test_double_uninstrument_rejected(self):
        _net, deploy = _deployed_linear()
        deploy.uninstrument_switch("S2")
        with pytest.raises(ValueError, match="already"):
            deploy.uninstrument_switch("S2")


class TestAgentCrash:
    def _traffic(self, net, duration=0.03):
        UdpSink(net.hosts["h2_0"], 7)
        UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0", sport=7,
                     dport=7, rate_bps=2e6, packet_size=500,
                     priority=PRIO_LOW, start=0.0, duration=duration)

    def test_crash_loses_records_and_stops_sniffing(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        self._traffic(net)
        plan = FaultPlan()
        fault = plan.add_named("agent-crash", host="h2_0", start=0.015)
        plan.schedule(FaultContext(net, deploy))
        net.run(until=0.035)
        agent = deploy.host_agents["h2_0"]
        assert fault.records_lost > 0
        assert not agent.alive
        assert len(agent.store) == 0    # nothing sniffed since the crash

    def test_restart_resumes_with_empty_table(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        self._traffic(net, duration=0.04)
        plan = FaultPlan()
        plan.add_named("agent-crash", host="h2_0", start=0.015,
                       stop=0.020)
        plan.schedule(FaultContext(net, deploy))
        net.run(until=0.045)
        agent = deploy.host_agents["h2_0"]
        assert agent.alive
        # post-restart traffic repopulated the table
        assert len(agent.store) == 1

    def test_shard_crash_loses_only_that_shard(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2,
                                         record_shards=4)
        # several flows so shards are populated
        for i in range(8):
            UdpSink(net.hosts["h2_0"], 100 + i)
            UdpCbrSource(net.sim, net.hosts["h1_0"], "h2_0",
                         sport=100 + i, dport=100 + i, rate_bps=1e6,
                         packet_size=500, priority=PRIO_LOW, start=0.0,
                         duration=0.01)
        net.run(until=0.015)
        agent = deploy.host_agents["h2_0"]
        store = agent.store
        populated = [i for i, shard in enumerate(store.shards)
                     if len(shard)][0]
        before = len(store)
        lost_expected = len(store.shards[populated])
        fault = FAULTS.create("agent-crash", host="h2_0",
                              shard=populated)
        fault.inject(FaultContext(net, deploy))
        assert fault.records_lost == lost_expected
        assert len(store) == before - lost_expected
        assert agent.alive                   # the agent itself survives

    def test_shard_crash_on_flat_store_rejected_at_schedule(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        plan = FaultPlan()
        plan.add_named("agent-crash", host="h2_0", shard=0, start=0.001)
        with pytest.raises(FaultError, match="flat record store"):
            plan.schedule(FaultContext(net, deploy))

    def test_crash_is_idempotent(self):
        net = build_linear(2, hosts_per_switch=1)
        deploy = SwitchPointerDeployment(net, alpha_ms=10, k=2)
        agent = deploy.host_agents["h2_0"]
        agent.crash()
        assert agent.crash() == 0
        agent.restart()
        agent.restart()                      # no double re-attach
        assert len(agent.host.sniffers) == len(agent._sniffers)


class TestLinkDown:
    def test_outage_reroutes_and_heal_restores(self):
        net = build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=1)
        plan = FaultPlan()
        plan.add_named("link-down", a="leaf0", b="spine0",
                       start=0.005, stop=0.020, reconverge_delay=0.0)
        plan.schedule(FaultContext(net))
        net.run(until=0.010)
        link = net.link_between("leaf0", "spine0")
        assert not link.up
        # forwarding at leaf0 has converged onto spine1 only
        routes = net.switches["leaf0"].routes_for("h1_0")
        assert len(routes) == 1
        net.run(until=0.025)
        assert link.up
        assert len(net.switches["leaf0"].routes_for("h1_0")) == 2
