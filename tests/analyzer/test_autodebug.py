"""Tests for the automated debugging pipeline."""

import pytest

from repro.analyzer.autodebug import AutoDebugger
from repro.core.epoch import EpochRange
from repro.hostd.triggers import SwitchEpochTuple, VictimAlert
from repro.scenarios import run_cascades_scenario, run_contention_scenario
from repro.simnet.packet import FlowKey, PROTO_TCP


def fake_alert(t, flow=None, kind="throughput-drop"):
    flow = flow or FlowKey("a", "b", 1, 2, PROTO_TCP)
    return VictimAlert(flow=flow, host=flow.dst, time=t, kind=kind,
                       tuples=[SwitchEpochTuple(switch="S1",
                                                epochs=EpochRange(0, 1))])


class FakeAnalyzer:
    def __init__(self):
        self.alerts = []

    def ingest_alert(self, alert):
        self.alerts.append(alert)


class TestDeduplication:
    def test_alert_storm_folds_into_one_incident(self):
        auto = AutoDebugger(FakeAnalyzer(), debounce_s=0.020)
        for i in range(5):
            auto.ingest(fake_alert(0.010 + i * 0.005))
        assert len(auto.incidents) == 1
        assert len(auto.incidents[0].alerts) == 5

    def test_gap_beyond_debounce_opens_new_incident(self):
        auto = AutoDebugger(FakeAnalyzer(), debounce_s=0.020)
        auto.ingest(fake_alert(0.010))
        auto.ingest(fake_alert(0.100))
        assert len(auto.incidents) == 2

    def test_different_flows_are_different_incidents(self):
        auto = AutoDebugger(FakeAnalyzer(), debounce_s=1.0)
        auto.ingest(fake_alert(0.010))
        auto.ingest(fake_alert(
            0.011, flow=FlowKey("c", "d", 3, 4, PROTO_TCP)))
        assert len(auto.incidents) == 2

    def test_raw_queue_still_fed(self):
        analyzer = FakeAnalyzer()
        auto = AutoDebugger(analyzer)
        auto.ingest(fake_alert(0.010))
        assert len(analyzer.alerts) == 1

    def test_incident_ids_monotone(self):
        auto = AutoDebugger(FakeAnalyzer(), debounce_s=0.001)
        a = auto.ingest(fake_alert(0.010))
        b = auto.ingest(fake_alert(0.500))
        assert b.incident_id == a.incident_id + 1


class TestDispatch:
    @pytest.fixture(scope="class")
    def contention(self):
        return run_contention_scenario(4, discipline="priority")

    def test_contention_incident_diagnosed(self, contention):
        auto = AutoDebugger(contention.deployment.analyzer)
        for alert in contention.alerts:
            auto.ingest(alert)
        incidents = auto.diagnose_all()
        assert incidents
        first = incidents[0]
        assert first.verdict is not None
        assert first.verdict.problem == "priority-contention"

    def test_multi_switch_culprits_escalate_to_red_lights(self,
                                                          contention):
        auto = AutoDebugger(contention.deployment.analyzer,
                            cascade_priorities=False)
        auto.ingest(contention.alerts[0])
        auto.diagnose_all()
        # dumbbell: culprits appear at both S1 and S2 pointer pulls
        assert auto.incidents[0].escalated_to in (None, "red-lights")

    def test_cascade_escalation_end_to_end(self):
        res = run_cascades_scenario(cascaded=True)
        auto = AutoDebugger(res.deployment.analyzer)
        for alert in res.alerts:
            auto.ingest(alert)
        auto.diagnose_all()
        escalations = {i.escalated_to for i in auto.incidents}
        assert "cascade" in escalations
        cascade_incident = next(i for i in auto.incidents
                                if i.escalated_to == "cascade")
        assert len(cascade_incident.verdict.cascade_chain) == 3

    def test_diagnose_all_idempotent(self, contention):
        auto = AutoDebugger(contention.deployment.analyzer)
        auto.ingest(contention.alerts[0])
        auto.diagnose_all()
        verdict = auto.incidents[0].verdict
        auto.diagnose_all()
        assert auto.incidents[0].verdict is verdict


class TestReporting:
    def test_empty_report(self):
        assert AutoDebugger(FakeAnalyzer()).report() == "no incidents"

    def test_render_contains_essentials(self):
        res = run_contention_scenario(2, discipline="priority")
        auto = AutoDebugger(res.deployment.analyzer)
        auto.ingest(res.alerts[0])
        auto.diagnose_all()
        text = auto.report()
        assert "incident #1" in text
        assert "verdict: priority-contention" in text
        assert "culprit" in text
