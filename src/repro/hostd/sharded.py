"""Sharded end-host record storage for thousand-host scale sweeps.

:class:`ShardedRecordStore` splits one host's flow-record table into
``n_shards`` :class:`~repro.hostd.records.FlowRecordStore` shards keyed
by the flow's *source host* (a stable CRC of the name, so placement is
reproducible across processes — sweep workers must agree with the parent
run).  Each shard keeps the existing per-switch inverted index; queries
merge shard results back into global record-creation order, and top-k
selection merges per-shard heaps instead of sorting the union.

Why shard at all in a single-process simulator: the flat store's
per-switch sorted-bucket rebuilds and index maintenance walk whole
buckets, O(records at the switch on the host).  At sweep scale
(thousands of hosts × thousands of records) those walks dominate;
shards bound them to the records in one shard's bucket, and top-k
selection merges per-shard heaps instead of seq-sorting the union.
(Eviction victim *selection* stays global — the memory bound is a
whole-host property — but drops are applied shard-locally.)  The
shared sequence counter keeps every query result byte-identical to the
flat store's (the equivalence the property suite checks).

Invariants mirrored from the flat store:

* the global memory bound (``max_records``) is enforced across shards —
  victims are the globally stalest records, wherever they live;
* all shards append to the *same* spill file, and
  :meth:`ShardedRecordStore.load_from_disk` replays it with the same
  supersede semantics (later spill of a flow keeps the earlier seq);
* iteration and every query return records in global creation order.
"""

from __future__ import annotations

import heapq
import json
import zlib
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..core.epoch import EpochRange
from ..simnet.packet import FlowKey
from .records import FlowRecord, FlowRecordStore, SeqCounter, _record_seq, _staleness

DEFAULT_SHARDS = 8


def shard_of(flow: FlowKey, n_shards: int) -> int:
    """Stable shard placement: CRC32 of the flow's source host name."""
    return zlib.crc32(flow.src.encode("utf-8")) % n_shards


class ShardedRecordStore:
    """Per-host record table sharded by flow source, flat-store-equivalent.

    Drop-in for :class:`FlowRecordStore` everywhere the host agent and
    query engine touch it: same ingest entry points, same query methods,
    same spill/reload semantics, same counters.
    """

    def __init__(
        self,
        host_name: str,
        spill_path: Optional[Path] = None,
        max_records: Optional[int] = None,
        n_shards: int = DEFAULT_SHARDS,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.host_name = host_name
        self.spill_path = Path(spill_path) if spill_path else None
        self.max_records = max_records
        self.n_shards = n_shards
        self._seq = SeqCounter()
        # shards are unbounded: the *global* bound below picks victims
        self.shards = tuple(
            FlowRecordStore(
                f"{host_name}/shard{i}",
                spill_path=self.spill_path,
                max_records=None,
                seq_counter=self._seq,
            )
            for i in range(n_shards)
        )
        self._count = 0
        self._deferring = False
        #: Read-side hook, same contract as
        #: :attr:`FlowRecordStore.before_read` (set on the parent store
        #: only; shards are internal and never read directly).
        self.before_read: Optional[Callable[[], object]] = None
        self.peak_records = 0
        self._spilled_direct = 0
        #: decoded packets folded into the table (ingest throughput)
        self.ingested = 0

    # -- ingest ----------------------------------------------------------------

    def _shard_for(self, flow: FlowKey) -> FlowRecordStore:
        return self.shards[shard_of(flow, self.n_shards)]

    def record_for(self, flow: FlowKey) -> FlowRecord:
        shard = self._shard_for(flow)
        before = len(shard._records)
        rec = shard.record_for(flow)
        if len(shard._records) != before:
            self._count += 1
            if self._count > self.peak_records:
                self.peak_records = self._count
            if (
                self.max_records is not None
                and not self._deferring
                and self._count > self.max_records
            ):
                self._evict()
        return rec

    def ingest(
        self,
        flow: FlowKey,
        *,
        nbytes: int,
        t: float,
        priority: int,
        switch_path: list[str],
        ranges: dict[str, EpochRange],
        observed_epoch: Optional[int],
    ) -> FlowRecord:
        """One decoded packet → record update (decoder entry point)."""
        self.ingested += 1
        rec = self.record_for(flow)
        rec._update_seq = self.ingested
        rec.observe(
            nbytes=nbytes,
            t=t,
            priority=priority,
            switch_path=switch_path,
            ranges=ranges,
            observed_epoch=observed_epoch,
        )
        return rec

    def begin_batch(self) -> None:
        """Defer the global eviction check until :meth:`end_batch`."""
        self._deferring = True

    def end_batch(self) -> None:
        self._deferring = False
        if self.max_records is not None and self._count > self.max_records:
            self._evict()

    # -- eviction --------------------------------------------------------------

    def _evict(self, *, spill: bool = True) -> None:
        """Drop the globally stalest records until under the bound."""
        assert self.max_records is not None
        excess = self._count - self.max_records
        if excess <= 0:
            return
        victims = heapq.nsmallest(
            excess,
            (rec for shard in self.shards for rec in shard._records.values()),
            key=_staleness,
        )
        per_shard: dict[int, list[FlowRecord]] = {}
        for rec in victims:
            per_shard.setdefault(shard_of(rec.flow, self.n_shards), []).append(rec)
        for idx, shard_victims in per_shard.items():
            self.shards[idx]._drop_records(shard_victims, spill=spill)
        self._count -= len(victims)

    # -- lookup / iteration ----------------------------------------------------

    def drop_all(self) -> int:
        """Lose every in-memory record in every shard (crash loss)."""
        lost = 0
        for i in range(self.n_shards):
            lost += self.drop_shard(i)
        return lost

    def drop_shard(self, shard: int) -> int:
        """Lose one shard's records (a backing-partition failure).

        The shard object itself survives — post-crash traffic hashing
        to it repopulates an empty table — so queries keep working,
        just without the lost evidence.  Returns how many records died.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        lost = self.shards[shard].drop_all()
        self._count -= lost
        return lost

    def _notify_read(self) -> None:
        if self.before_read is not None:
            self.before_read()

    def get(self, flow: FlowKey) -> Optional[FlowRecord]:
        self._notify_read()
        return self._shard_for(flow).get(flow)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[FlowRecord]:
        """All records, in global creation order (merged by seq)."""
        return heapq.merge(
            *(iter(shard._records.values()) for shard in self.shards),
            key=_record_seq,
        )

    @property
    def spilled(self) -> int:
        return self._spilled_direct + sum(s.spilled for s in self.shards)

    @property
    def evicted(self) -> int:
        return sum(s.evicted for s in self.shards)

    # -- the §3 header filter --------------------------------------------------

    def flows_through(
        self, switch: str, epochs: Optional[EpochRange] = None
    ) -> list[FlowRecord]:
        """Records whose path crossed ``switch`` (in ``epochs``, if given)."""
        return self.scan_through(switch, epochs)[0]

    def scan_through(
        self,
        switch: str,
        epochs: Optional[EpochRange] = None,
        *,
        since_seq: Optional[int] = None,
    ) -> tuple[list[FlowRecord], int]:
        """Per-shard indexed scans, merged back into creation order.

        ``since_seq`` is the delta-query watermark, measured against
        the *parent* store's ``ingested`` counter (shards share the
        update stamps the parent writes at ingest time).
        """
        self._notify_read()
        scanned = 0
        per_shard: list[list[FlowRecord]] = []
        for shard in self.shards:
            matches, cost = shard.scan_through(switch, epochs, since_seq=since_seq)
            scanned += cost
            if matches:
                per_shard.append(matches)
        if not per_shard:
            return [], scanned
        if len(per_shard) == 1:
            return per_shard[0], scanned
        return list(heapq.merge(*per_shard, key=_record_seq)), scanned

    def topk_through(
        self,
        k: int,
        key: Callable[[FlowRecord], object],
        switch: str,
        epochs: Optional[EpochRange] = None,
    ) -> tuple[list[FlowRecord], int]:
        """Merged top-k across shards: per-shard heaps, then a k-way final.

        Equivalent to ``nsmallest(k, flows_through(...))`` because ``key``
        totally orders records (ties broken by flow), but never builds or
        seq-sorts the union — the winners of each shard are enough.
        """
        self._notify_read()
        scanned = 0
        candidates: list[FlowRecord] = []
        for shard in self.shards:
            matches, cost = shard.scan_through(switch, epochs)
            scanned += cost
            candidates.extend(heapq.nsmallest(k, matches, key=key))
        return heapq.nsmallest(k, candidates, key=key), scanned

    def linear_flows_through(
        self, switch: str, epochs: Optional[EpochRange] = None
    ) -> list[FlowRecord]:
        """Reference O(N) scan (equivalence oracle, not the query path)."""
        out = []
        for rec in self:
            rng = rec.epochs_at(switch)
            if rng is None:
                continue
            if epochs is not None and not rng.intersects(epochs):
                continue
            out.append(rec)
        return out

    # -- MongoDB-substitute spill ----------------------------------------------

    def flush_to_disk(self) -> int:
        """Append all in-memory records (creation order) to the spill file."""
        if self.spill_path is None:
            raise RuntimeError("no spill path configured")
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("a", encoding="utf-8") as fh:
            for rec in self:
                fh.write(json.dumps(rec.to_json()) + "\n")
                self._spilled_direct += 1
        return self.spilled

    @classmethod
    def load_from_disk(
        cls,
        host_name: str,
        spill_path: Path,
        *,
        max_records: Optional[int] = None,
        n_shards: int = DEFAULT_SHARDS,
    ) -> "ShardedRecordStore":
        """Rebuild a sharded store from a (flat or sharded) spill file.

        Replays lines in file order with the flat store's supersede
        semantics — a later spill of a flow keeps the earlier one's
        position — then applies the global memory bound without
        re-appending to the file being read, exactly like
        :meth:`FlowRecordStore.load_from_disk`.
        """
        store = cls(
            host_name,
            spill_path=spill_path,
            max_records=max_records,
            n_shards=n_shards,
        )
        with Path(spill_path).open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = FlowRecord.from_json(json.loads(line))
                if store._shard_for(rec.flow)._adopt_record(rec):
                    store._count += 1
        store.peak_records = max(store.peak_records, store._count)
        if max_records is not None:
            store._evict(spill=False)
        return store
