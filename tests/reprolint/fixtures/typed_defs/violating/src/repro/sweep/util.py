"""Fixture: typed-core functions with annotation gaps."""


def scale(value, factor: float) -> float:
    return value * factor


def total(values):
    out = 0.0
    for v in values:
        out += v
    return out


class Accumulator:
    def __init__(self, start):
        self.value = start
