#!/usr/bin/env python3
"""The paper's two hard cases: "too many red lights" and traffic cascades.

Both require correlating telemetry *across switches* (and, for cascades,
across flows that never themselves misbehave) — exactly what pure
end-host or pure in-network tools cannot do (§2.2, §2.3).

Run:  python examples/red_lights_and_cascades.py
"""

from repro.analyzer import diagnose_cascade, diagnose_red_lights
from repro.scenarios import run_cascades_scenario, run_red_lights_scenario


def ascii_series(series, t_hi, width=40):
    rows = []
    for t, gbps in series:
        if t > t_hi:
            break
        bar = "#" * int(gbps * width)
        rows.append(f"  {t * 1e3:6.2f} ms {gbps:5.2f} Gbps {bar}")
    return rows


def red_lights() -> None:
    print("=" * 64)
    print("TOO MANY RED LIGHTS (Fig 1b / Fig 3 / §5.2)")
    print("=" * 64)
    res = run_red_lights_scenario()
    print("\nvictim A->F throughput at S1 egress:")
    print("\n".join(ascii_series(res.tput_at_s1.series(), 0.008)))
    print("\nvictim A->F throughput at S2 egress "
          "(note the deeper, later dip — degradation accumulates):")
    print("\n".join(ascii_series(res.tput_at_s2.series(), 0.008)))

    alert = res.alerts[0]
    print(f"\ntrigger fired at {alert.time * 1e3:.1f} ms; alert covers "
          f"switches {alert.switch_path}")
    verdict = diagnose_red_lights(res.deployment.analyzer, alert)
    print(f"diagnosis ({verdict.total_time_s * 1e3:.0f} ms): "
          f"{verdict.narrative}")


def cascades() -> None:
    print()
    print("=" * 64)
    print("TRAFFIC CASCADES (Fig 1c / Fig 4 / §5.3)")
    print("=" * 64)
    base = run_cascades_scenario(cascaded=False)
    casc = run_cascades_scenario(cascaded=True)
    print("\nC-E (2 MB, low priority TCP) completion:")
    print(f"  without cascade: {base.ce_completed_at * 1e3:.1f} ms")
    print(f"  with cascade:    {casc.ce_completed_at * 1e3:.1f} ms")

    alert = casc.alerts[0]
    verdict = diagnose_cascade(casc.deployment.analyzer, alert)
    print(f"\nrecursive diagnosis ({verdict.total_time_s * 1e3:.0f} ms):")
    print(f"  {verdict.narrative}")
    print("  (read right to left: B-D delayed A-F, which then delayed "
          "C-E — note that A-F and B-D never triggered any alert "
          "themselves)")
    for c in verdict.culprits:
        print(f"  hop: {c.flow.pretty()} implicated at {c.switch} via "
              f"records on {c.host}")


if __name__ == "__main__":
    red_lights()
    cascades()
