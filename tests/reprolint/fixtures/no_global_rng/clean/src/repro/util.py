"""Fixture: every draw comes from a seeded stream."""

import random


def pick(n: int, seed: int) -> int:
    return random.Random(seed).randint(0, n)
