"""The seeded run stream: ambient randomness with a reproducible spine.

Every "ambient" random draw in the system — the background-workload
seed a scenario mints in ``launch_background``, the switch mask a
``partial-deployment`` fault samples — comes from one process-wide
seeded :class:`random.Random` instance, never from the module-level
``random`` functions.  The distinction is what makes a sweep point
replayable: ``sweep`` workers call :func:`seed_run` with the point's
recorded seed before the scenario builds, and ``cli run --seed`` does
the same, so a point reproduces bit-for-bit from its report entry.

Module-level ``random.<fn>()`` calls would silently share (and
reseed) interpreter-global state with anything else in the process —
a third-party library, a test harness — and break that contract.  The
``no-global-rng`` rule of ``tools/reprolint`` rejects them statically;
route new ambient draws through :func:`run_stream`, or give the
component its own ``random.Random`` / per-purpose ``_stream`` (see
:mod:`repro.simnet.workload`) when it owns a seed knob.
"""

from __future__ import annotations

import random

#: Seed a fresh process starts from when nothing calls seed_run() —
#: fixed, so two un-seeded CLI runs of the same scenario draw the same
#: ambient stream (determinism by default, not by accident).
DEFAULT_SEED = 0xD5EED

_RUN_STREAM = random.Random(DEFAULT_SEED)


def seed_run(seed: int) -> None:
    """Reset the run stream — the sweep-worker / ``--seed`` replay hook."""
    _RUN_STREAM.seed(seed)


def run_stream() -> random.Random:
    """The process-wide seeded stream ambient draws come from."""
    return _RUN_STREAM
