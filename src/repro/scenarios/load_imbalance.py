"""Fig 8 / §5.4: load imbalance (size-split forwarding malfunction)."""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer.apps import Verdict, diagnose_load_imbalance
from ..core.epoch import EpochRange
from ..deployment import SwitchPointerDeployment
from ..simnet.packet import PRIO_LOW, FlowKey
from ..simnet.topology import Network
from ..simnet.traffic import UdpCbrSource, UdpSink
from .base import Knob, Scenario, ScenarioSpec, register
from .common import GBPS, build_diamond


@dataclass
class LoadImbalanceResult:
    """Output of one Fig 8 run (n servers with relevant flows)."""

    n_servers: int
    deployment: SwitchPointerDeployment
    network: Network
    suspect_switch: str
    flow_sizes: dict[FlowKey, int]
    small_egress: str
    large_egress: str
    last_epoch: int


def build_load_imbalance_network(n_servers: int) -> Network:
    """Senders behind S1; S1 reaches S2 via two spines (two egresses).

    Trunk links are fat (100 Gbps) on purpose: the §5.4 experiment is
    about the *forwarding split*, not congestion — at 96 concurrent
    flows the aggregate must not saturate the spines, or drops would
    blur the received-size separation the diagnosis looks for.
    """
    return build_diamond(n_servers, trunk_bps=100 * GBPS,
                         host_bps=10 * GBPS)


@register
class LoadImbalanceScenario(Scenario):
    """§5.4: a malfunctioning switch splits flows by size across egresses.

    ``n_servers`` flows (alternating small/large), each to a distinct
    receiver — the Fig 8 x-axis is exactly the number of servers holding
    relevant flow records.
    """

    spec = ScenarioSpec(
        name="load-imbalance",
        summary="a misconfigured switch routes small and large flows "
                "out different egresses",
        paper_ref="Fig 8; §5.4 'load imbalance'",
        expected_diagnosis="load-imbalance (imbalanced=True)",
        knobs={
            "n_servers": Knob(8, "sender/receiver pairs (≥ 2)"),
            "small_bytes": Knob(500_000, "small flow size (bytes)"),
            "large_bytes": Knob(2_000_000, "large flow size (bytes)"),
            "size_threshold": Knob(1_000_000,
                                   "malfunction split point (bytes)"),
            "alpha_ms": Knob(10, "epoch duration α (ms)"),
            "k": Knob(3, "pointer hierarchy depth"),
        },
        aliases=("fig8",),
        smoke_knobs={"n_servers": 4},
    )

    def build(self) -> None:
        p = self.p
        n = p["n_servers"]
        if n < 2:
            raise ValueError(
                "need at least two servers for two size classes")
        net = build_load_imbalance_network(n)
        deploy = SwitchPointerDeployment(net, alpha_ms=p["alpha_ms"],
                                         k=p["k"])
        self.network, self.deployment = net, deploy
        s1 = net.switches["S1"]

        self.flow_sizes: dict[FlowKey, int] = {}
        for i in range(n):
            UdpSink(net.hosts[f"rx{i}"], 7000)
            nbytes = (p["small_bytes"] if i % 2 == 0
                      else p["large_bytes"])
            rate = 2 * GBPS
            duration = nbytes * 8 / rate
            src = UdpCbrSource(net.sim, net.hosts[f"tx{i}"], f"rx{i}",
                               sport=7000, dport=7000, rate_bps=rate,
                               packet_size=1500, priority=PRIO_LOW,
                               start=0.0, duration=duration)
            self.flow_sizes[src.flow] = nbytes

        # The malfunction: flows under the threshold exit via spine A,
        # the rest via spine B (the paper's misconfigured interface split).
        iface_a = net.link_between("S1", "SPA").iface_of(s1)
        iface_b = net.link_between("S1", "SPB").iface_of(s1)
        threshold = p["size_threshold"]
        flow_sizes = self.flow_sizes

        def malfunction(pkt, candidates):
            if iface_a not in candidates or iface_b not in candidates:
                return None
            size = flow_sizes.get(pkt.flow)
            if size is None:
                return None
            return iface_a if size < threshold else iface_b

        s1.forwarding_override = malfunction

    def run(self) -> None:
        self.network.run(until=0.050)

    def collect(self) -> dict:
        net, deploy = self.network, self.deployment
        last_epoch = deploy.datapaths["S1"].clock.epoch_of(net.sim.now)
        self.payload = LoadImbalanceResult(
            n_servers=self.p["n_servers"], deployment=deploy, network=net,
            suspect_switch="S1", flow_sizes=self.flow_sizes,
            small_egress="SPA", large_egress="SPB", last_epoch=last_epoch)
        s1 = net.switches["S1"]
        spa = net.link_between("S1", "SPA").iface_of(s1)
        spb = net.link_between("S1", "SPB").iface_of(s1)
        return {
            "spa_tx_bytes": spa.tx_bytes,
            "spb_tx_bytes": spb.tx_bytes,
            "last_epoch": last_epoch,
        }

    def diagnose(self) -> list[Verdict]:
        res = self.payload
        return [diagnose_load_imbalance(
            self.deployment.analyzer, res.suspect_switch,
            epochs=EpochRange(0, res.last_epoch),
            size_threshold=self.p["size_threshold"])]


def run_load_imbalance_scenario(n_servers: int, *,
                                small_bytes: int = 500_000,
                                large_bytes: int = 2_000_000,
                                size_threshold: int = 1_000_000,
                                alpha_ms: int = 10,
                                k: int = 3) -> LoadImbalanceResult:
    """§5.4 run (functional entry point kept for examples/tests)."""
    sc = LoadImbalanceScenario(
        n_servers=n_servers, small_bytes=small_bytes,
        large_bytes=large_bytes, size_threshold=size_threshold,
        alpha_ms=alpha_ms, k=k)
    sc.build()
    sc.run()
    sc.collect()
    return sc.payload
