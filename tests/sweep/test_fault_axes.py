"""Fault-axis sweeps and explicit nightly points.

Covers the acceptance bar directly: a partial-deployment sweep point at
deploy_frac < 1.0 must land in a schema-valid SweepReport, and the
combined top-end point rides the incast-scale nightly grid as an
explicit extra point rather than a full cross product.
"""

import pytest

from repro.sweep import (SWEEPS, Sweep, SweepError, SweepSpec,
                         validate_report)


class TestFaultAxisRegistry:
    def test_fault_axis_sweeps_registered(self):
        for name in ("partial-deployment", "clock-skew", "multi-fault"):
            assert name in SWEEPS

    def test_partial_deployment_binds_deploy_frac(self):
        spec = SWEEPS.get("partial-deployment")
        assert spec.axes["deploy"] == "deploy_frac"
        assert any(v < 1.0 for v in spec.nightly_grid["deploy"])

    def test_clock_skew_binds_skew_ms(self):
        spec = SWEEPS.get("clock-skew")
        assert spec.axes["skew_ms"] == "skew_ms"

    def test_multi_fault_axis_varies_fault_count(self):
        spec = SWEEPS.get("multi-fault")
        counts = {v.count("+") + 1
                  for v in spec.default_grid["faults"]}
        assert len(counts) > 1     # one- and two-fault points


class TestPartialDeploymentSweep:
    def test_deploy_lt_one_point_in_schema_valid_report(self):
        spec = SWEEPS.get("partial-deployment")
        sweep = Sweep(spec, {"deploy": [1.0, 0.75]}, workers=1)
        report = sweep.run()
        doc = report.to_json()
        assert validate_report(doc) == []
        partial = next(p for p in doc["points"]
                       if p["params"]["deploy"] == 0.75)
        # the point reports its diagnosis accuracy and the mask it drew
        assert partial["diagnosis_ok"] is True
        assert partial["knobs"]["deploy_frac"] == 0.75
        assert partial["measurements"]["uninstrumented_switches"]
        assert report.all_ok


class TestMultiFaultSweep:
    def test_two_fault_point_counts_only_full_attribution(self):
        spec = SWEEPS.get("multi-fault")
        sweep = Sweep(spec,
                      {"faults": ["silent-drop+ecmp-polarization"]},
                      workers=1)
        report = sweep.run()
        point = report.points[0]
        assert point.diagnosis_ok
        assert "multi-fault" in point.problems
        assert "gray-failure" in point.problems
        assert "ecmp-polarization" in point.problems


class TestNightlyPoints:
    def test_extra_points_append_after_the_grid(self):
        spec = SWEEPS.get("incast-scale")
        assert spec.nightly_points == (
            {"hosts": 4096, "flows": 2000},
            {"hosts": 65536, "flows": 100000, "backend": "columnar"},
        )
        sweep = Sweep(spec, {"hosts": [64], "flows": [200]},
                      workers=1,
                      extra_points=[{"hosts": 128, "flows": 300}])
        assert sweep.params == [{"hosts": 64, "flows": 200},
                                {"hosts": 128, "flows": 300}]

    def test_extra_point_axes_resolve_to_knobs(self):
        spec = SWEEPS.get("incast-scale")
        sweep = Sweep(spec, {"hosts": [64]}, workers=1,
                      extra_points=[{"hosts": 128, "flows": 300}])
        knobs = sweep.payloads[1][1]
        assert knobs["hosts"] == 128 and knobs["bg_flows"] == 300

    def test_budget_note_declared_for_the_top_end(self):
        spec = SWEEPS.get("incast-scale")
        assert spec.budget_note and "4096" in spec.budget_note
        assert "65536" in spec.budget_note and "100000" in spec.budget_note

    def test_registration_rejects_undeclared_point_axis(self):
        with pytest.raises(SweepError, match="nightly_points"):
            SWEEPS.register(SweepSpec(
                scenario="incast", name="bad-points",
                summary="s", expect_problem="incast",
                axes={"hosts": "hosts"},
                default_grid={"hosts": (64,)},
                nightly_grid={"hosts": (64,)},
                nightly_points=({"flows": 10},),
            ))

    def test_extra_point_knob_clash_with_pinned_knob(self):
        spec = SWEEPS.get("incast-scale")
        with pytest.raises(Exception, match="override swept axis"):
            Sweep(spec, {"hosts": [64]}, workers=1,
                  extra_knobs={"bg_flows": 5},
                  extra_points=[{"flows": 300}])
