"""Unit tests for the synthetic workload generator."""

import pytest

from repro.simnet.topology import build_leaf_spine
from repro.simnet.workload import (FlowPlanner, WorkloadGenerator,
                                   WorkloadSpec)


def fabric():
    return build_leaf_spine(n_leaves=2, n_spines=2, hosts_per_leaf=4,
                            rate_bps=10e9)


class TestSpecValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_rate_per_s=0)

    def test_rejects_infinite_mean_tail(self):
        with pytest.raises(ValueError):
            WorkloadSpec(pareto_shape=0.9)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(min_flow_bytes=100, max_flow_bytes=50)


class TestGeneration:
    def test_deterministic_under_seed(self):
        net1, net2 = fabric(), fabric()
        spec = WorkloadSpec(duration_s=0.02, seed=7)
        flows1 = WorkloadGenerator(net1, spec).schedule()
        flows2 = WorkloadGenerator(net2, spec).schedule()
        assert [(f.flow, f.size_bytes, f.start) for f in flows1] == \
            [(f.flow, f.size_bytes, f.start) for f in flows2]

    def test_different_seed_differs(self):
        spec_a = WorkloadSpec(duration_s=0.02, seed=1)
        spec_b = WorkloadSpec(duration_s=0.02, seed=2)
        fa = WorkloadGenerator(fabric(), spec_a).schedule()
        fb = WorkloadGenerator(fabric(), spec_b).schedule()
        assert [f.size_bytes for f in fa] != [f.size_bytes for f in fb]

    def test_arrival_count_near_rate(self):
        spec = WorkloadSpec(arrival_rate_per_s=5000, duration_s=0.1,
                            seed=3)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert 350 < len(flows) < 650  # Poisson(500) +- ~5 sigma

    def test_sizes_within_bounds(self):
        spec = WorkloadSpec(duration_s=0.05, min_flow_bytes=2000,
                            max_flow_bytes=50_000, seed=5)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert flows
        for f in flows:
            assert 2000 <= f.size_bytes <= 50_000

    def test_no_self_flows(self):
        spec = WorkloadSpec(duration_s=0.05, seed=6)
        flows = WorkloadGenerator(fabric(), spec).schedule()
        assert all(f.flow.src != f.flow.dst for f in flows)

    def test_sender_receiver_scoping(self):
        net = fabric()
        spec = WorkloadSpec(duration_s=0.05, seed=8)
        gen = WorkloadGenerator(net, spec, senders=["h0_0", "h0_1"],
                                receivers=["h1_0"])
        flows = gen.schedule()
        assert {f.flow.src for f in flows} <= {"h0_0", "h0_1"}
        assert {f.flow.dst for f in flows} == {"h1_0"}

    def test_traffic_actually_delivered(self):
        net = fabric()
        spec = WorkloadSpec(arrival_rate_per_s=500, duration_s=0.02,
                            mean_flow_bytes=10_000, seed=9)
        gen = WorkloadGenerator(net, spec)
        flows = gen.schedule()
        net.run(until=0.2)
        delivered = sum(h.rx_packets for h in net.hosts.values())
        assert delivered >= len(flows)  # every flow landed >= 1 packet


class TestFixedPopulation:
    """The n_flows mode behind the sweep flows= axis."""

    def test_exact_population_size(self):
        spec = WorkloadSpec(n_flows=250, seed=4)
        plan = FlowPlanner(spec, ["a", "b", "c"], ["a", "b", "c"]).plan()
        assert len(plan) == 250

    def test_starts_within_spread_window(self):
        spec = WorkloadSpec(n_flows=100, spread_s=0.02, seed=5)
        plan = FlowPlanner(spec, ["a", "b"], ["a", "b"]).plan(t0=0.5)
        assert all(0.5 <= p.start <= 0.52 for p in plan)

    def test_zero_spread_starts_together(self):
        spec = WorkloadSpec(n_flows=40, spread_s=0.0, seed=6)
        plan = FlowPlanner(spec, ["a", "b"], ["a", "b"]).plan(t0=0.1)
        assert {p.start for p in plan} == {0.1}

    def test_zipf_mix_skews_toward_low_ranks(self):
        hosts = [f"h{i}" for i in range(12)]
        spec = WorkloadSpec(n_flows=3000, mix="zipf", zipf_s=1.1, seed=7)
        plan = FlowPlanner(spec, hosts, hosts).plan()
        srcs = [p.flow.src for p in plan]
        assert srcs.count("h0") > 4 * srcs.count("h11")

    def test_unique_ports_per_flow(self):
        spec = WorkloadSpec(n_flows=50, seed=8)
        plan = FlowPlanner(spec, ["a", "b"], ["a", "b"]).plan()
        assert len({p.flow.sport for p in plan}) == 50

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            WorkloadSpec(mix="bimodal")

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=-1)

    def test_sole_self_pair_rejected(self):
        with pytest.raises(ValueError):
            FlowPlanner(WorkloadSpec(n_flows=1), ["a"], ["a"])


class TestBatchedLaunch:
    """The single-emitter materialization path (BackgroundTraffic)."""

    def launch(self, n=120, **kw):
        net = fabric()
        spec = WorkloadSpec(n_flows=n, spread_s=0.01,
                            mean_flow_bytes=4000, min_flow_bytes=300,
                            max_flow_bytes=20_000, packet_size=1000,
                            flow_rate_bps=2e7, seed=10, **kw)
        gen = WorkloadGenerator(net, spec)
        return net, gen, gen.launch()

    def test_every_flow_delivers_at_least_one_packet(self):
        net, gen, bg = self.launch()
        net.run(until=0.2)
        assert bg.n_flows == 120
        assert bg.packets_sent >= 120
        assert bg.delivered >= 120
        # nothing left pending once every flow drained
        assert not bg._heap

    def test_flows_match_the_plan(self):
        net, gen, bg = self.launch()
        assert [f.flow for f in gen.flows] == [p.flow for p in bg.plans]
        assert gen.size_percentiles()[50] > 0

    def test_stop_halts_emission(self):
        net, gen, bg = self.launch()
        net.run(until=0.001)
        sent_at_stop = bg.packets_sent
        bg.stop()
        net.run(until=0.2)
        assert bg.packets_sent == sent_at_stop

    def test_naive_schedule_carries_same_population(self):
        """schedule() (one source per flow) and launch() (one emitter)
        materialize the same planned flows."""
        net1 = fabric()
        net2 = fabric()
        spec = WorkloadSpec(n_flows=60, spread_s=0.005, seed=11)
        naive = WorkloadGenerator(net1, spec).schedule()
        batched = WorkloadGenerator(net2, spec)
        batched.launch()
        assert [(f.flow, f.size_bytes, f.start) for f in naive] == \
            [(f.flow, f.size_bytes, f.start) for f in batched.flows]


class TestHeavyTail:
    def test_elephants_carry_most_bytes(self):
        spec = WorkloadSpec(arrival_rate_per_s=20_000, duration_s=0.05,
                            mean_flow_bytes=100_000, pareto_shape=1.2,
                            seed=11)
        gen = WorkloadGenerator(fabric(), spec)
        gen.schedule()
        p = gen.size_percentiles((50, 99))
        assert p[99] > 10 * p[50]  # heavy tail
        assert gen.elephant_byte_share(500_000) > 0.3

    def test_percentiles_empty(self):
        gen = WorkloadGenerator(fabric(), WorkloadSpec(seed=1))
        assert gen.size_percentiles() == {50: 0, 90: 0, 99: 0}
