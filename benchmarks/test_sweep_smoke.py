"""Sweep-smoke benchmark: the CI regression-gate anchor for sweeps.

Runs the incast scale sweep at its two smallest populations (inline,
one worker, fixed seed) and persists the resulting ``SweepReport`` to
``results/sweep_smoke.json``.  ``tools/check_bench_regression.py``
compares the per-point wall times in that document against the
committed baseline in ``benchmarks/baselines/sweep_smoke.json`` and
fails CI on a >30% regression — this file is what keeps the sweep
runner's point overhead honest, while the nightly scheduled run covers
the thousand-host end of the grid.
"""

import pytest

from repro.sweep import SWEEPS, Sweep, validate_report

from benchmarks.reporting import emit

GRID = {"hosts": [64, 128]}
BASE_SEED = 1729


def run_sweep():
    spec = SWEEPS.get("incast")
    sweep = Sweep(
        spec,
        {axis: list(vals) for axis, vals in GRID.items()},
        workers=1,
        base_seed=BASE_SEED,
        extra_knobs={"duration": 0.02, "burst_start": 0.008},
    )
    return sweep.run()


@pytest.mark.benchmark(group="sweep")
def test_sweep_smoke(benchmark):
    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    doc = report.to_json()
    assert validate_report(doc) == [], validate_report(doc)

    grid_str = ",".join(str(h) for h in GRID["hosts"])
    lines = [f"scenario: {report.scenario}   grid: hosts={grid_str}"]
    for point in report.points:
        lines.append(
            f"  hosts={point.params['hosts']:5d}  "
            f"wall={point.wall_time_s * 1e3:7.1f} ms  "
            f"peak_records={point.peak_records}  "
            f"ok={point.ok}"
        )
    lines.append(f"total wall: {report.wall_time_s * 1e3:.1f} ms")
    emit("sweep_smoke", lines, data=doc)

    assert report.all_ok, [(p.index, p.error or p.problems) for p in report.points]
