"""In-network baselines (§2's "limitations of existing techniques").

Two classic switch-resident approaches, built to *demonstrate the gap*
SwitchPointer closes:

* :class:`SampledNetFlow` — per-switch packet sampling with per-flow
  counters (Sampled NetFlow).  §2.1: "packet sampling based techniques
  would miss microbursts due to undersampling".  A 1 ms burst at 1/1000
  sampling contributes ~0-2 samples; :meth:`flows_observed_during`
  makes the miss measurable.
* :class:`PortCounterMonitor` — per-port byte counters (SNMP-style).
  §2.1: "switch counter based techniques would not be able to
  differentiate between the priority-based and microburst-based flow
  contention" — the counters see the same aggregate dip either way, and
  :meth:`classify_contention` can only answer "unknown-contention".
"""

from __future__ import annotations

import random
from typing import Optional

from ..simnet.device import Switch
from ..simnet.link import Interface
from ..simnet.packet import FlowKey, Packet


class SampledNetFlow:
    """1-in-N packet sampling at a switch, with per-flow counters."""

    def __init__(self, switch: Switch, sample_rate: int = 1000, *,
                 seed: int = 1):
        if sample_rate < 1:
            raise ValueError("sample rate must be >= 1")
        self.switch = switch
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self.samples: list[tuple[float, FlowKey, int]] = []
        self.flow_packets: dict[FlowKey, int] = {}
        self.packets_seen = 0
        switch.pipeline.append(self._hook)

    def _hook(self, sw: Switch, pkt: Packet, in_iface: Optional[Interface],
              out_iface: Interface) -> None:
        self.packets_seen += 1
        if self._rng.randrange(self.sample_rate) == 0:
            t = sw.sim.now
            self.samples.append((t, pkt.flow, pkt.size))
            self.flow_packets[pkt.flow] = (
                self.flow_packets.get(pkt.flow, 0) + 1)

    def flows_observed_during(self, t_lo: float,
                              t_hi: float) -> set[FlowKey]:
        """Flows with ≥ 1 sample inside the window — what NetFlow *saw*."""
        return {flow for t, flow, _ in self.samples if t_lo <= t <= t_hi}

    def missed_flows(self, actual: set[FlowKey], t_lo: float,
                     t_hi: float) -> set[FlowKey]:
        """Ground-truth flows invisible to the sampler in the window."""
        return actual - self.flows_observed_during(t_lo, t_hi)


class PortCounterMonitor:
    """Per-egress-port byte counters sampled in fixed windows."""

    def __init__(self, switch: Switch, window: float = 0.001):
        if window <= 0:
            raise ValueError("window must be positive")
        self.switch = switch
        self.window = window
        # iface name -> window index -> bytes
        self._bins: dict[str, dict[int, int]] = {}
        switch.pipeline.append(self._hook)

    def _hook(self, sw: Switch, pkt: Packet, in_iface: Optional[Interface],
              out_iface: Interface) -> None:
        idx = int(sw.sim.now / self.window)
        bins = self._bins.setdefault(out_iface.name, {})
        bins[idx] = bins.get(idx, 0) + pkt.size

    def port_series(self, iface_name: str) -> list[tuple[float, float]]:
        """(window start, Gbps) series for one egress interface."""
        bins = self._bins.get(iface_name, {})
        if not bins:
            return []
        out = []
        for idx in range(0, max(bins) + 1):
            gbps = bins.get(idx, 0) * 8 / self.window / 1e9
            out.append((idx * self.window, gbps))
        return out

    def classify_contention(self, iface_name: str, t_lo: float,
                            t_hi: float) -> str:
        """What can aggregate counters conclude about a contention event?

        They can see *that* the port was busy, but carry no flow
        identity or priority — so priority-based vs microburst-based
        contention is indistinguishable (§2.1).  The honest answer is
        always ``"unknown-contention"`` (or ``"no-contention"`` when the
        port was idle).
        """
        lo, hi = int(t_lo / self.window), int(t_hi / self.window)
        bins = self._bins.get(iface_name, {})
        busy = any(bins.get(i, 0) > 0 for i in range(lo, hi + 1))
        return "unknown-contention" if busy else "no-contention"
