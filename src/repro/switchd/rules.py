"""OpenFlow rule-table model for telemetry embedding (§4.1.3).

The commodity design pays for embedding with flow rules:

* **linkID rules** — one per switch port (the rule matches the egress
  port and pushes the outer VLAN tag); grows linearly with port count.
* **epochID rule** — exactly one, rewritten every epoch to carry the
  new epochID in the inner tag.

The paper's Pica8 switch sustains a rule update every ~15 ms, which
lower-bounds α on commodity hardware; :data:`COMMODITY_MIN_ALPHA_MS`
encodes that limit and :class:`RuleTable` enforces/accounts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fastest observed flow-rule update on the paper's commodity OpenFlow
#: switch — the floor for α when VLAN embedding is used (§4.1.3).
COMMODITY_MIN_ALPHA_MS = 15.0


class RuleModelError(Exception):
    """Raised when a configuration violates the commodity-switch model."""


@dataclass
class FlowRule:
    """A single OpenFlow-style rule (match → action summary)."""

    match: str
    action: str
    updates: int = 0


@dataclass
class RuleTable:
    """Embedding rules of one SwitchPointer switch."""

    switch_name: str
    port_count: int
    alpha_ms: float
    enforce_commodity_limit: bool = True
    link_rules: list[FlowRule] = field(default_factory=list)
    epoch_rule: FlowRule = field(default=None)  # type: ignore[assignment]
    epoch_updates: int = 0

    def __post_init__(self) -> None:
        if self.port_count < 1:
            raise RuleModelError("switch needs at least one port")
        if (self.enforce_commodity_limit
                and self.alpha_ms < COMMODITY_MIN_ALPHA_MS):
            raise RuleModelError(
                f"alpha={self.alpha_ms} ms below the commodity rule-update "
                f"floor of {COMMODITY_MIN_ALPHA_MS} ms; use INT mode or a "
                f"larger epoch")
        self.link_rules = [
            FlowRule(match=f"egress_port={p}",
                     action=f"push_vlan(link_id_of_port_{p})")
            for p in range(self.port_count)]
        self.epoch_rule = FlowRule(match="*",
                                   action="push_vlan(epoch_id=0)")

    @property
    def total_rules(self) -> int:
        """Rules consumed: ports (linkID) + 1 (epochID)."""
        return len(self.link_rules) + 1

    def advance_epoch(self, new_epoch: int) -> None:
        """Model the per-epoch rewrite of the epochID rule."""
        self.epoch_rule.action = f"push_vlan(epoch_id={new_epoch})"
        self.epoch_rule.updates += 1
        self.epoch_updates += 1

    def updates_per_second(self) -> float:
        """Sustained rule-update rate this table demands of the switch."""
        return 1000.0 / self.alpha_ms
