"""Sketch-based switch directories: approximate pointer-set backends.

See :mod:`repro.directory.registry` for the contract.  Importing this
package registers every backend (the registry-coverage lint rule holds
the imports below to the modules that call ``register_directory``).
"""

from .registry import (
    DirectoryError,
    DirectoryFactory,
    DirectorySet,
    available_directories,
    decode_directory_set,
    default_directory_backend,
    directory_markdown,
    directory_memory_notes,
    directory_summaries,
    make_directory_set,
    register_directory,
    resolve_directory,
    set_default_directory_backend,
    use_directory_backend,
)
from . import exact  # noqa: F401  (registers the exact backend)
from . import bloom  # noqa: F401  (registers the bloom backend)
from . import lsh  # noqa: F401  (registers the lsh backend)
from .bloom import BloomDirectorySet
from .lsh import SIG_ROWS, LshDirectorySet

__all__ = [
    "BloomDirectorySet",
    "DirectoryError",
    "DirectoryFactory",
    "DirectorySet",
    "LshDirectorySet",
    "SIG_ROWS",
    "available_directories",
    "decode_directory_set",
    "default_directory_backend",
    "directory_markdown",
    "directory_memory_notes",
    "directory_summaries",
    "make_directory_set",
    "register_directory",
    "resolve_directory",
    "set_default_directory_backend",
    "use_directory_backend",
]
