#!/usr/bin/env python3
"""Load-imbalance diagnosis + the PathDump comparison (§5.4, Fig 8/12).

A malfunctioning switch splits flows by size across two egress
interfaces.  SwitchPointer's analyzer pulls the switch's pointer, learns
*which* servers hold relevant records, and queries only those; PathDump
must query every server in the network.  The latency gap is Fig 12.

Run:  python examples/load_imbalance_vs_pathdump.py
"""

from repro.analyzer import diagnose_load_imbalance
from repro.baselines import PathDumpAnalyzer
from repro.core.epoch import EpochRange
from repro.scenarios import run_load_imbalance_scenario


def main() -> None:
    n_servers = 16
    res = run_load_imbalance_scenario(n_servers)
    epochs = EpochRange(0, res.last_epoch)

    print(f"scenario: {n_servers} flows through suspect switch "
          f"{res.suspect_switch}; flows < 1 MB forced out via "
          f"{res.small_egress}, >= 1 MB via {res.large_egress}")

    # --- SwitchPointer: directory-guided diagnosis --------------------
    verdict = diagnose_load_imbalance(
        res.deployment.analyzer, res.suspect_switch, epochs=epochs)
    print(f"\nSwitchPointer verdict: imbalanced={verdict.imbalanced}")
    print(f"  {verdict.narrative}")
    for egress, sizes in sorted(verdict.distribution.items()):
        print(f"  egress {egress}: {len(sizes)} flows, "
              f"sizes {min(sizes)}-{max(sizes)} B")
    print(f"  servers consulted: {len(verdict.hosts_consulted)} "
          f"(only those in the pointer)")
    print(f"  diagnosis time: {verdict.total_time_s * 1e3:.1f} ms")

    # --- PathDump: no directory, ask everyone --------------------------
    pd = PathDumpAnalyzer(res.deployment.host_agents)
    dist, bd = pd.flow_size_distribution(switch=res.suspect_switch,
                                         epochs=epochs)
    print("\nPathDump (same query, no directory):")
    print(f"  servers contacted: {len(pd.all_servers)} (all of them)")
    print(f"  response time: {bd.total * 1e3:.1f} ms")
    speedup = bd.total / verdict.total_time_s
    print(f"\nSwitchPointer consulted "
          f"{len(verdict.hosts_consulted)}/{len(pd.all_servers)} servers "
          f"and answered {speedup:.1f}x faster")


if __name__ == "__main__":
    main()
