"""Links, interfaces, and the transmission model.

A :class:`Link` joins two nodes with a full-duplex channel: each direction
has its own :class:`Interface` (output queue + serializer).  The
transmission model is store-and-forward:

* a packet occupies the transmitter for ``size * 8 / rate`` seconds
  (serialization delay), then
* arrives at the peer after ``propagation_delay`` more seconds.

Only one packet serializes at a time per direction; everything else waits
in the interface's output queue.  That queue is where all of the paper's
§2 contention effects materialize.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Protocol, runtime_checkable

from .engine import Simulator
from .packet import Packet
from .queues import DropTailFIFO, PacketQueue

_link_ids = itertools.count(0)


@runtime_checkable
class Node(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, pkt: Packet, iface: "Interface") -> None:
        """Handle a packet arriving on ``iface``."""


class Interface:
    """One direction of a link: output queue + transmitter at a node.

    Attributes
    ----------
    owner:
        The node this interface belongs to (packets leave ``owner``).
    peer_node:
        The node at the far end (packets arrive there).
    link:
        The parent :class:`Link`.
    queue:
        The output queue; replaceable before traffic starts to select a
        discipline (FIFO vs strict priority).
    """

    def __init__(self, sim: Simulator, owner: Node, link: "Link",
                 queue: Optional[PacketQueue] = None):
        self.sim = sim
        self.owner = owner
        self.link = link
        self.peer_node: Optional[Node] = None  # set by Link
        self.peer_iface: Optional["Interface"] = None  # set by Link
        self.queue: PacketQueue = queue if queue is not None else DropTailFIFO()
        self.busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        #: Packets dropped because the parent link was administratively or
        #: physically down at enqueue time (the link-flap blackhole window).
        self.dropped_link_down = 0
        #: Optional taps called with each packet as it begins serialization;
        #: used by per-switch throughput probes (Fig 3 measures the same
        #: flow's throughput *at S1* and *at S2*).
        self.tx_taps: list[Callable[[Packet, float], None]] = []

    @property
    def name(self) -> str:
        return f"{self.owner.name}->{self.peer_node.name if self.peer_node else '?'}"

    def send(self, pkt: Packet) -> bool:
        """Queue ``pkt`` for transmission; returns False if tail-dropped
        or if the link is down (the packet vanishes, as on a dead wire)."""
        if not self.link.up:
            self.dropped_link_down += 1
            return False
        if not self.queue.enqueue(pkt):
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        pkt = self.queue.dequeue()
        if pkt is None:
            self.busy = False
            return
        self.busy = True
        size = pkt.size
        tx_time = size * 8 / self.link.rate_bps
        if self.tx_taps:
            for tap in self.tx_taps:
                tap(pkt, self.sim.now)
        self.tx_packets += 1
        self.tx_bytes += size
        # never cancelled → fire-and-forget fast-path events
        self.sim.call_after(tx_time, self._finish_tx, pkt)

    def _finish_tx(self, pkt: Packet) -> None:
        # Deliver after propagation; free the transmitter immediately.
        self.sim.call_after(self.link.propagation_delay, self._deliver, pkt)
        self._start_next()

    def _deliver(self, pkt: Packet) -> None:
        assert self.peer_node is not None and self.peer_iface is not None
        self.peer_node.receive(pkt, self.peer_iface)


class Link:
    """Full-duplex point-to-point link between two nodes.

    Parameters
    ----------
    rate_bps:
        Line rate in bits per second (paper testbeds: 1 and 10 Gbps).
    propagation_delay:
        One-way propagation in seconds (datacenter scale: a few µs).
    queue_factory:
        Zero-argument callable producing the output queue for each
        direction; defaults to :class:`DropTailFIFO`.
    """

    def __init__(self, sim: Simulator, a: Node, b: Node, *,
                 rate_bps: float = 1e9, propagation_delay: float = 2e-6,
                 queue_factory: Optional[Callable[[], PacketQueue]] = None):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        #: Process-global identity (debugging, cache keys).
        self.link_id = next(_link_ids)
        #: Per-network wire identifier assigned by Network.connect —
        #: this is what fits a 12-bit VLAN tag, NOT link_id (which
        #: grows without bound across networks in one process).
        self.vlan_id: Optional[int] = None
        #: Liveness: a down link silently drops every packet offered to
        #: either direction.  Packets already serializing or propagating
        #: still arrive — a flap loses what is sent *during* the outage.
        self.up = True
        qf = queue_factory if queue_factory is not None else DropTailFIFO
        self.iface_a = Interface(sim, a, self, qf())
        self.iface_b = Interface(sim, b, self, qf())
        self.iface_a.peer_node = b
        self.iface_a.peer_iface = self.iface_b
        self.iface_b.peer_node = a
        self.iface_b.peer_iface = self.iface_a
        self.a = a
        self.b = b

    def set_down(self) -> None:
        """Take the link down.  Idempotent."""
        self.up = False

    def set_up(self) -> None:
        """Bring the link back up.  Idempotent."""
        self.up = True

    @property
    def down_drops(self) -> int:
        """Packets lost to outages, both directions combined."""
        return self.iface_a.dropped_link_down + self.iface_b.dropped_link_down

    def iface_of(self, node: Node) -> Interface:
        """The outgoing interface at ``node``."""
        if node is self.a:
            return self.iface_a
        if node is self.b:
            return self.iface_b
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def peer_of(self, node: Node) -> Node:
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.name} is not an endpoint of this link")

    @property
    def endpoints(self) -> tuple[str, str]:
        return (self.a.name, self.b.name)

    def __repr__(self) -> str:
        gbps = self.rate_bps / 1e9
        return f"Link({self.a.name}<->{self.b.name}, {gbps:g}Gbps)"


def reset_link_ids() -> None:
    """Reset the global link-id counter (test isolation)."""
    global _link_ids
    _link_ids = itertools.count(0)
