"""Machine-readable study results: :class:`ExperimentReport` + schema.

One experiment produces one *artifact directory* (see
:mod:`repro.experiment.runner`): a manifest, one JSON document per
``(point, rep)`` run, and a final ``report.json`` aggregating the runs
into per-point curves.  This module owns the report side: the
deterministic per-run record, the per-point aggregate (mean/min/max
accuracy and timing across repetitions), and the hand-rolled structural
validator (no third-party schema dependency, same idiom as
``repro.sweep.report``).

**Determinism contract.**  Everything in the report derives from the
run seeds alone — diagnosis outcomes, simulated time, record counts —
and nothing derives from the host (wall-clock timings stay in the
per-run artifact files, which keep the full
:class:`~repro.sweep.report.PointResult` payload).  That is what makes
the resumability guarantee byte-exact: a study interrupted after K of N
runs and re-invoked produces the same ``report.json``, byte for byte,
as an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

SCHEMA = "switchpointer.experiment-report/v2"
RUN_SCHEMA = "switchpointer.experiment-run/v1"
MANIFEST_SCHEMA = "switchpointer.experiment-manifest/v1"

#: required per-run fields → allowed JSON types
_RUN_FIELDS: dict[str, tuple[type, ...]] = {
    "point": (int,),
    "rep": (int,),
    "params": (dict,),
    "seed": (int,),
    "ok": (bool,),
    "diagnosis_ok": (bool,),
    "problems": (list,),
    "suspects": (list,),
    "sim_time_s": (int, float),
    "diagnosis_latency_sim_s": (int, float),
    "freshness": (int,),
    "flow_count": (int,),
    "peak_records": (int,),
    "pending_faults": (int,),
    "error": (str, type(None)),
}

#: required per-point aggregate fields → allowed JSON types
_POINT_FIELDS: dict[str, tuple[type, ...]] = {
    "point": (int,),
    "params": (dict,),
    "knobs": (dict,),
    "reps": (int,),
    "accuracy": (dict,),
    "sim_time_s": (dict,),
    "diagnosis_latency_sim_s": (dict,),
    "freshness": (dict,),
    "errors": (int,),
    "pending_faults": (int,),
    "peak_records": (int,),
}

_TOP_FIELDS: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "experiment": (str,),
    "sweep": (str,),
    "scenario": (str,),
    "expect_problem": (str,),
    "base_seed": (int,),
    "reps": (int,),
    "grid": (dict,),
    "runs": (list,),
    "points": (list,),
    "summary": (dict,),
}

#: the mean/min/max triple every aggregate statistic carries
_STAT_KEYS = ("mean", "min", "max")


def _count_pending(result: dict[str, Any]) -> int:
    """Pending faults in one run's recorded fault plan.

    A fault scheduled past the run window surfaces as ``[pending]`` in
    the scenario's ``fault_plan`` measurement (one describe() line per
    composed fault); counting it here is what keeps such faults from
    silently vanishing out of a study's aggregates.
    """
    lines = result.get("measurements", {}).get("fault_plan", [])
    return sum(1 for line in lines if str(line).endswith("[pending]"))


@dataclass
class RunRecord:
    """The deterministic (seed-derived) subset of one run's outcome."""

    point: int
    rep: int
    params: dict[str, Any]
    seed: int
    diagnosis_ok: bool = False
    problems: list[str] = field(default_factory=list)
    suspects: list[str] = field(default_factory=list)
    sim_time_s: float = 0.0
    diagnosis_latency_sim_s: float = 0.0
    freshness: int = 0
    flow_count: int = 0
    peak_records: int = 0
    pending_faults: int = 0
    #: sketch-directory false-positive rate over the run's pointer
    #: queries (0.0 for the exact backend and pre-directory artifacts;
    #: optional in the schema so older committed reports stay valid)
    directory_fpr: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.diagnosis_ok

    @classmethod
    def from_artifact(cls, doc: dict[str, Any]) -> "RunRecord":
        """Extract the record from one persisted run document.

        The artifact keeps the full ``PointResult`` payload (wall-clock
        timings included); only the seed-determined fields cross into
        the report.
        """
        result = doc["result"]
        return cls(
            point=doc["point"],
            rep=doc["rep"],
            params=dict(doc["params"]),
            seed=doc["seed"],
            diagnosis_ok=result["diagnosis_ok"],
            problems=list(result["problems"]),
            suspects=list(result["suspects"]),
            sim_time_s=result["sim_time_s"],
            # absent from pre-v3 sweep payloads (offline-only diagnosis)
            diagnosis_latency_sim_s=result.get(
                "diagnosis_latency_sim_s", 0.0),
            freshness=result.get("freshness", 0),
            flow_count=result["flow_count"],
            peak_records=result["peak_records"],
            pending_faults=_count_pending(result),
            directory_fpr=result.get("measurements", {}).get(
                "directory_fpr", 0.0),
            error=result["error"],
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "rep": self.rep,
            "params": dict(self.params),
            "seed": self.seed,
            "ok": self.ok,
            "diagnosis_ok": self.diagnosis_ok,
            "problems": list(self.problems),
            "suspects": list(self.suspects),
            "sim_time_s": round(self.sim_time_s, 9),
            "diagnosis_latency_sim_s": round(self.diagnosis_latency_sim_s, 9),
            "freshness": self.freshness,
            "flow_count": self.flow_count,
            "peak_records": self.peak_records,
            "pending_faults": self.pending_faults,
            "directory_fpr": round(self.directory_fpr, 6),
            "error": self.error,
        }


def _stats(values: list[float], digits: int) -> dict[str, float]:
    return {
        "mean": round(sum(values) / len(values), digits),
        "min": round(min(values), digits),
        "max": round(max(values), digits),
    }


@dataclass
class PointAggregate:
    """One grid point's statistics across its repetitions."""

    point: int
    params: dict[str, Any]
    knobs: dict[str, Any]
    reps: int
    accuracy: dict[str, float]
    sim_time_s: dict[str, float]
    diagnosis_latency_sim_s: dict[str, float]
    freshness: dict[str, float]
    directory_fpr: dict[str, float]
    errors: int
    pending_faults: int
    peak_records: int

    @classmethod
    def from_runs(
        cls, runs: list[RunRecord], knobs: dict[str, Any]
    ) -> "PointAggregate":
        return cls(
            point=runs[0].point,
            params=dict(runs[0].params),
            knobs=dict(knobs),
            reps=len(runs),
            accuracy=_stats([1.0 if r.ok else 0.0 for r in runs], 6),
            sim_time_s=_stats([r.sim_time_s for r in runs], 9),
            diagnosis_latency_sim_s=_stats(
                [r.diagnosis_latency_sim_s for r in runs], 9
            ),
            freshness=_stats([float(r.freshness) for r in runs], 6),
            directory_fpr=_stats([r.directory_fpr for r in runs], 6),
            errors=sum(1 for r in runs if r.error is not None),
            pending_faults=sum(r.pending_faults for r in runs),
            peak_records=max(r.peak_records for r in runs),
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "params": dict(self.params),
            "knobs": dict(self.knobs),
            "reps": self.reps,
            "accuracy": dict(self.accuracy),
            "sim_time_s": dict(self.sim_time_s),
            "diagnosis_latency_sim_s": dict(self.diagnosis_latency_sim_s),
            "freshness": dict(self.freshness),
            "directory_fpr": dict(self.directory_fpr),
            "errors": self.errors,
            "pending_faults": self.pending_faults,
            "peak_records": self.peak_records,
        }


@dataclass
class ExperimentReport:
    """Everything one study produced, JSON-serializable."""

    experiment: str
    sweep: str
    scenario: str
    expect_problem: str
    base_seed: int
    reps: int
    grid: dict[str, list[Any]]
    runs: list[RunRecord] = field(default_factory=list)
    points: list[PointAggregate] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        oks = sum(1 for r in self.runs if r.ok)
        return {
            "runs": len(self.runs),
            "ok_runs": oks,
            "errors": sum(1 for r in self.runs if r.error is not None),
            "pending_faults": sum(r.pending_faults for r in self.runs),
            "points": len(self.points),
            "mean_accuracy": (
                round(oks / len(self.runs), 6) if self.runs else 0.0
            ),
        }

    @property
    def error_free(self) -> bool:
        """No run raised.  *Not* "every run diagnosed correctly" — a
        degradation study's stressed points are expected to misdiagnose;
        only exceptions make a study invalid."""
        return all(r.error is None for r in self.runs)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "experiment": self.experiment,
            "sweep": self.sweep,
            "scenario": self.scenario,
            "expect_problem": self.expect_problem,
            "base_seed": self.base_seed,
            "reps": self.reps,
            "grid": {axis: list(vals) for axis, vals in self.grid.items()},
            "runs": [r.to_json() for r in self.runs],
            "points": [p.to_json() for p in self.points],
            "summary": self.summary(),
        }


def aggregate_runs(
    *,
    experiment: str,
    sweep: str,
    scenario: str,
    expect_problem: str,
    base_seed: int,
    reps: int,
    grid: dict[str, list[Any]],
    artifacts: list[dict[str, Any]],
) -> ExperimentReport:
    """Fold the persisted run documents into one report.

    Order-independent: records sort by ``(point, rep)``, so the report
    is identical however the runs completed (workers, resume order).
    """
    records = sorted(
        (RunRecord.from_artifact(doc) for doc in artifacts),
        key=lambda r: (r.point, r.rep),
    )
    by_point: dict[int, list[RunRecord]] = {}
    for record in records:
        by_point.setdefault(record.point, []).append(record)
    knobs_by_point = {
        doc["point"]: doc["result"]["knobs"] for doc in artifacts
    }
    points = [
        PointAggregate.from_runs(by_point[point], knobs_by_point[point])
        for point in sorted(by_point)
    ]
    return ExperimentReport(
        experiment=experiment,
        sweep=sweep,
        scenario=scenario,
        expect_problem=expect_problem,
        base_seed=base_seed,
        reps=reps,
        grid=grid,
        runs=records,
        points=points,
    )


def _type_name(types: tuple[type, ...]) -> str:
    return "/".join("null" if t is type(None) else t.__name__ for t in types)


def _bad_type(value: Any, types: tuple[type, ...]) -> bool:
    # bool is an int subclass in Python but not in the JSON-schema sense
    if isinstance(value, bool) and bool not in types:
        return True
    return not isinstance(value, types)


def _check_stats(owner: str, name: str, value: Any) -> list[str]:
    if not isinstance(value, dict):
        return [f"{owner}.{name} must be a mean/min/max object"]
    errors = []
    for key in _STAT_KEYS:
        if key not in value:
            errors.append(f"{owner}.{name} missing {key!r}")
        elif _bad_type(value[key], (int, float)):
            errors.append(f"{owner}.{name}.{key} must be int/float")
    for key in value:
        if key not in _STAT_KEYS:
            errors.append(f"{owner}.{name} has unknown stat {key!r}")
    return errors


def validate_experiment_report(doc: Any) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    errors = []
    for name, types in _TOP_FIELDS.items():
        if name not in doc:
            errors.append(f"missing field {name!r}")
        elif _bad_type(doc[name], types):
            errors.append(f"field {name!r} must be {_type_name(types)}")
    for name in doc:
        # a typo in a hand-edited report must not pass silently
        if name not in _TOP_FIELDS:
            errors.append(
                f"unknown top-level field {name!r} "
                f"(allowed: {', '.join(sorted(_TOP_FIELDS))})"
            )
    if errors:
        return errors
    if doc["schema"] != SCHEMA:
        return [f"unknown schema {doc['schema']!r} (expected {SCHEMA!r})"]
    for axis, values in doc["grid"].items():
        if not isinstance(values, list) or not values:
            errors.append(f"grid axis {axis!r} must be a non-empty list")
    for i, run in enumerate(doc["runs"]):
        if not isinstance(run, dict):
            errors.append(f"runs[{i}] must be an object")
            continue
        for name, types in _RUN_FIELDS.items():
            if name not in run:
                errors.append(f"runs[{i}] missing field {name!r}")
            elif _bad_type(run[name], types):
                errors.append(f"runs[{i}].{name} must be {_type_name(types)}")
    for i, point in enumerate(doc["points"]):
        if not isinstance(point, dict):
            errors.append(f"points[{i}] must be an object")
            continue
        for name, types in _POINT_FIELDS.items():
            if name not in point:
                errors.append(f"points[{i}] missing field {name!r}")
            elif _bad_type(point[name], types):
                errors.append(
                    f"points[{i}].{name} must be {_type_name(types)}"
                )
        # directory_fpr is optional (absent from pre-directory reports)
        # but must be a well-formed stat triple when present
        for stat in ("accuracy", "sim_time_s",
                     "diagnosis_latency_sim_s", "freshness",
                     "directory_fpr"):
            if isinstance(point.get(stat), dict):
                errors.extend(_check_stats(f"points[{i}]", stat, point[stat]))
    summary = doc["summary"]
    if isinstance(summary.get("runs"), int):
        if summary["runs"] != len(doc["runs"]):
            errors.append("summary.runs disagrees with len(runs)")
    else:
        errors.append("summary.runs must be int")
    if isinstance(summary.get("points"), int):
        if summary["points"] != len(doc["points"]):
            errors.append("summary.points disagrees with len(points)")
    else:
        errors.append("summary.points must be int")
    return errors
