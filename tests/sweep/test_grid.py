"""Grid parsing, expansion, and per-point seed stability."""

import pytest

from repro.sweep import (
    GridError,
    expand_grid,
    parse_axis,
    parse_grid,
    point_seed,
)


class TestParsing:
    def test_single_axis(self):
        assert parse_axis("hosts=64,256,1024") == (
            "hosts",
            [64, 256, 1024],
        )

    def test_value_coercion(self):
        axis, values = parse_axis("mixed=true,2,2.5,leaf-spine")
        assert values == [True, 2, 2.5, "leaf-spine"]
        assert axis == "mixed"

    def test_grid_preserves_axis_order(self):
        grid = parse_grid(["b=1,2", "a=3"])
        assert list(grid) == ["b", "a"]

    def test_missing_equals_rejected(self):
        with pytest.raises(GridError):
            parse_axis("hosts")

    def test_empty_values_rejected(self):
        with pytest.raises(GridError):
            parse_axis("hosts=")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(GridError):
            parse_grid(["hosts=1", "hosts=2"])


class TestExpansion:
    def test_cartesian_row_major_last_axis_fastest(self):
        grid = {"hosts": [64, 128], "alpha_ms": [5, 10]}
        assert expand_grid(grid) == [
            {"hosts": 64, "alpha_ms": 5},
            {"hosts": 64, "alpha_ms": 10},
            {"hosts": 128, "alpha_ms": 5},
            {"hosts": 128, "alpha_ms": 10},
        ]

    def test_empty_grid(self):
        assert expand_grid({}) == []


class TestSeeds:
    def test_stable_and_distinct(self):
        seeds = [point_seed(1729, i) for i in range(16)]
        assert seeds == [point_seed(1729, i) for i in range(16)]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_everything(self):
        assert point_seed(1, 0) != point_seed(2, 0)
