"""The ``lsh`` directory backend: bloom membership + minhash signatures.

Membership queries reuse the bloom filter unchanged (same superset
contract, same saturation behavior), and each set additionally carries
a fixed-width **minhash signature** — one 64-bit row per independent
hash, the row holding the minimum hash over the slots inserted so far.
Signatures union by elementwise minimum (idempotent and commutative,
so level coalescing and control-plane merging keep them meaningful)
and support the similarity machinery of TCAM-LSH-style lookup:

* ``jaccard(other)`` — the fraction of matching rows estimates the
  Jaccard similarity of the two slot sets;
* ``band_matches(other)`` — rows grouped into bands of
  ``directory_hashes`` rows; a fully-matching band flags the pair as
  similarity candidates (the banding trick: near-duplicates collide in
  some band with high probability).

The analyzer's "find switches whose directories look like this
culprit's" query (:func:`repro.analyzer.apps.rank_co_suspects`) ranks
candidates by these signatures when the deployment runs this backend.
"""

from __future__ import annotations

from .bloom import BloomDirectorySet
from .hashing import row_hashes
from .registry import DirectoryError, DirectorySet, register_directory

#: signature width: 16 independent minhash rows per set
SIG_ROWS = 16
#: bits modeled per signature row (64-bit hashes, serialized verbatim)
SIG_ROW_BITS = 64
#: an empty set's row value (no slot has hashed below it yet)
EMPTY_ROW = (1 << 64) - 1


class LshDirectorySet(BloomDirectorySet):
    """Bloom membership plus a banded minhash signature."""

    backend_name = "lsh"

    __slots__ = ("_sig",)

    def __init__(self, n_slots: int, bits: int, hashes: int):
        super().__init__(n_slots, bits, hashes)
        self._sig = [EMPTY_ROW] * SIG_ROWS

    def set_slot(self, slot: int) -> None:
        super().set_slot(slot)
        sig = self._sig
        for row, h in enumerate(row_hashes(slot, SIG_ROWS)):
            if h < sig[row]:
                sig[row] = h

    def clear(self) -> None:
        super().clear()
        self._sig = [EMPTY_ROW] * SIG_ROWS

    def union_into(self, other: "DirectorySet") -> None:
        super().union_into(other)
        assert isinstance(other, LshDirectorySet)
        other._sig = [
            min(mine, theirs)
            for mine, theirs in zip(self._sig, other._sig)
        ]

    def to_bytes(self) -> bytes:
        sig = b"".join(row.to_bytes(8, "big") for row in self._sig)
        return bytes(self._bits) + sig

    def load(self, blob: bytes) -> None:
        filter_len = (self.m_bits + 7) // 8
        if len(blob) != filter_len + 8 * SIG_ROWS:
            raise DirectoryError(
                f"payload is {len(blob)} bytes, lsh set needs "
                f"{filter_len + 8 * SIG_ROWS}"
            )
        super().load(blob[:filter_len])
        self._sig = [
            int.from_bytes(blob[filter_len + 8 * row:
                                filter_len + 8 * (row + 1)], "big")
            for row in range(SIG_ROWS)
        ]

    @property
    def size_bits(self) -> int:
        return self.m_bits + SIG_ROWS * SIG_ROW_BITS

    # -- similarity queries --------------------------------------------------

    @property
    def signature(self) -> tuple[int, ...]:
        return tuple(self._sig)

    @property
    def is_empty_signature(self) -> bool:
        return all(row == EMPTY_ROW for row in self._sig)

    def jaccard(self, other: "LshDirectorySet") -> float:
        """Estimated Jaccard similarity: fraction of matching rows."""
        if self.is_empty_signature and other.is_empty_signature:
            return 0.0
        matches = sum(
            1 for a, b in zip(self._sig, other._sig) if a == b
        )
        return matches / SIG_ROWS

    def band_matches(self, other: "LshDirectorySet") -> int:
        """Fully-matching bands of ``k_hashes`` rows (LSH candidacy)."""
        band = max(1, min(self.k_hashes, SIG_ROWS))
        count = 0
        for start in range(0, SIG_ROWS - band + 1, band):
            if self._sig[start:start + band] == other._sig[
                start:start + band
            ]:
                count += 1
        return count


@register_directory(
    "lsh",
    summary="bloom membership + banded minhash signatures for "
    "similarity-ranked co-suspect queries",
    memory_note="bloom budget plus a fixed 16x64-bit signature "
    "(`directory_bits + 1024` bits per set)",
)
def _lsh_factory(n_slots: int, bits: int, hashes: int) -> DirectorySet:
    return LshDirectorySet(n_slots, bits, hashes)
