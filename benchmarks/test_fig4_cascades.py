"""Fig 4 — traffic cascades: with vs without the chain of delays.

Paper: B→D (high, UDP, 10 ms) and A→F (middle, UDP, 10 ms) share S1;
C→E (low, TCP, 2 MB) enters at S2.  Without contention at S1 (B→D on a
different path) A→F drains on time and C→E runs clean; with contention
A→F is delayed and collides with C→E at S2 (Fig 4(b)).

Shape checks: the cascade delays A→F's delivery tail and C→E's
completion; without the cascade C→E's throughput during its first
milliseconds is strictly higher.
"""

import pytest

from repro.scenarios import run_cascades_scenario

from benchmarks.reporting import emit, fmt_series


@pytest.mark.benchmark(group="fig4")
def test_fig4_cascades(benchmark):
    def run_both():
        return (run_cascades_scenario(cascaded=False),
                run_cascades_scenario(cascaded=True))

    base, casc = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = []
    for label, res in (("WITHOUT cascade (Fig 4a)", base),
                       ("WITH cascade (Fig 4b)", casc)):
        lines.append(f"--- {label} ---")
        lines.append("flow B-D throughput (first 25 ms):")
        lines += fmt_series([(t, g) for t, g in res.tput_bd.series()
                             if t <= 0.025], every=2)
        lines.append("flow A-F throughput (first 25 ms):")
        lines += fmt_series([(t, g) for t, g in res.tput_af.series()
                             if t <= 0.025], every=2)
        lines.append("flow C-E throughput (first 40 ms):")
        lines += fmt_series([(t, g) for t, g in res.tput_ce.series()
                             if t <= 0.040], every=4)
        done = res.ce_completed_at
        lines.append(f"C-E (2 MB TCP) completed at: "
                     f"{done * 1000:.1f} ms" if done else
                     "C-E did not complete")
        lines.append("")
    emit("fig4_cascades", lines)

    assert base.ce_completed_at is not None
    assert casc.ce_completed_at is not None
    # the cascade visibly delays the low-priority victim
    assert casc.ce_completed_at > base.ce_completed_at + 0.004
    # A-F's delivery stretches out when it loses at S1
    af_tail_base = max(t for t, g in base.tput_af.series() if g > 0)
    af_tail_casc = max(t for t, g in casc.tput_af.series() if g > 0)
    assert af_tail_casc > af_tail_base + 0.004
    # early C-E throughput is higher without the cascade
    def early_rate(res):
        xs = [g for t, g in res.tput_ce.series()
              if 0.013 <= t <= 0.020]
        return sum(xs) / len(xs)
    assert early_rate(base) > early_rate(casc)
