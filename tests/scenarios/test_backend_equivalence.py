"""Scenario-level backend equivalence (the columnar acceptance bar).

The record-store backend is a pure performance knob: switching every
host agent onto the array-backed :class:`ColumnarRecordStore` must not
change a single diagnosis.  Each registered scenario runs twice at its
smoke knobs with the same seeds — once on the historical object-based
default, once under ``use_backend("columnar")`` — and the verdicts
(including culprits, suspects, narratives and the RPC latency
breakdowns, which charge per record scanned) and the fault-plan
statuses must be identical.
"""

import pytest

from repro.hostd.backends import use_backend
from repro.scenarios import REGISTRY, run_scenario


@pytest.mark.parametrize("name", REGISTRY.names())
def test_columnar_backend_reproduces_reference_diagnosis(name):
    spec = REGISTRY.get(name).spec
    ref = run_scenario(name, **spec.smoke_knobs)
    with use_backend("columnar"):
        col = run_scenario(name, **spec.smoke_knobs)
    assert col.verdicts == ref.verdicts
    assert (col.measurements.get("fault_plan")
            == ref.measurements.get("fault_plan"))
    # the diagnosis cost model must agree too, not just the answer
    assert col.sim_time == ref.sim_time
    for cv, rv in zip(col.verdicts, ref.verdicts):
        assert cv.breakdown.parts == rv.breakdown.parts
        assert cv.status == rv.status
