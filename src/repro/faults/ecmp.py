"""ECMP polarization fault: install a port-blind hash on one switch.

Extracted from the polarization scenario's inline injector.  The buggy
hash ignores the L4 ports, so every connection of a host pair lands on
the same next hop — multipath utilization collapses to 1/n while the
other egresses idle.
"""

from __future__ import annotations

from typing import Any

from ..simnet.device import Switch, _flow_hash
from ..simnet.packet import FlowKey
from .base import Fault, FaultContext, FaultError, FaultParam, FaultSpec, register_fault


def port_blind_hash(flow: FlowKey) -> int:
    """The classic polarization bug: hash blind to sport/dport."""
    return _flow_hash(FlowKey(flow.src, flow.dst, 0, 0, flow.proto))


@register_fault
class EcmpPolarizationFault(Fault):
    """Replace one switch's ECMP hash with the port-blind variant.

    Saves whatever hash was installed (another fault's, or the healthy
    default of ``None``) and restores it on heal — but only while its
    own hash is still the installed one, so healing does not clobber a
    hash some other fault stacked on top in the meantime.  (Two
    *overlapping* polarization faults on one switch install the same
    function and cannot be told apart; the first heal restores the
    healthy hash — they are the same bug twice, not two bugs.)
    """

    spec = FaultSpec(
        name="ecmp-polarization",
        summary="a port-blind ECMP hash collapses a switch's multipath "
        "split onto one egress",
        degrades="load balance: per-pair connections stop spreading, one "
        "egress carries ~all flows while siblings idle",
        diagnosed_by="diagnose_polarization (per-egress flow census)",
        params={
            "switch": FaultParam("", "the switch whose hash goes port-blind"),
        },
    )

    def __init__(self, **params: Any):
        super().__init__(**params)
        self._saved: Any = None

    def _switch(self, ctx: FaultContext) -> Switch:
        name = self.p["switch"]
        try:
            return ctx.network.switches[name]
        except KeyError:
            raise FaultError(
                f"ecmp-polarization: unknown switch {name!r}; known: "
                f"{', '.join(ctx.network.switch_names)}"
            ) from None

    def schedule(self, ctx: FaultContext) -> None:
        self._switch(ctx)
        super().schedule(ctx)

    def inject(self, ctx: FaultContext) -> None:
        sw = self._switch(ctx)
        self._saved = sw.ecmp_hash
        sw.ecmp_hash = port_blind_hash

    def heal(self, ctx: FaultContext) -> None:
        sw = self._switch(ctx)
        if sw.ecmp_hash is port_blind_hash:
            sw.ecmp_hash = self._saved

    def expected_egress(self, ctx: FaultContext, flow: FlowKey) -> str:
        """Which next-hop switch the polarized hash sends ``flow`` to.

        Ground truth for tests and the multi-fault scenario: resolves
        the buggy hash against the switch's current candidate order.
        """
        sw = self._switch(ctx)
        candidates = sw.routes_for(flow.dst)
        iface = candidates[port_blind_hash(flow) % len(candidates)]
        return iface.link.peer_of(sw).name
