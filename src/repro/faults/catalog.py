"""Render the fault catalogue from the registry metadata.

``docs/FAULTS.md`` is generated from the same :class:`FaultSpec`
objects the CLI ``faults list`` command prints — one source of truth.
Refresh the checked-in page with::

    python tools/gen_fault_docs.py

A tier-1 test asserts the file matches this renderer's output, so a
registry change without a regenerated page fails CI.
"""

from __future__ import annotations

from .base import FAULTS, FaultSpec

_PREAMBLE = """\
# Fault catalog

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_fault_docs.py -->

Every fault is a registered plugin implementing the four-verb protocol
(schedule → inject → heal → describe) described in
[ARCHITECTURE.md](ARCHITECTURE.md#the-fault-layer-reprofaults).
Scenarios compose faults through a `FaultPlan` — N faults, independent
schedules, one simulation — instead of open-coding injector callbacks;
the `multi-fault` scenario ([SCENARIOS.md](SCENARIOS.md)) composes any
two of the diagnosable ones and checks the analyzer attributes each
independently.

List the registered faults with

```sh
python -m repro.cli faults list
```

Every fault accepts the shared scheduling params `start` (seconds at
which it injects, default 0.0) and `stop` (seconds at which it heals,
default never) on top of the params tabled below.
"""


def _spec_markdown(spec: FaultSpec) -> str:
    lines = [f"## `{spec.name}`", "", spec.summary, ""]
    lines.append(f"- **Degrades:** {spec.degrades}")
    lines.append(f"- **Diagnosed by:** {spec.diagnosed_by}")
    if spec.params:
        lines.append("")
        lines.append("| param | default | description |")
        lines.append("|---|---|---|")
        for name, param in spec.params.items():
            lines.append(f"| `{name}` | `{param.default!r}` | {param.help} |")
    return "\n".join(lines) + "\n"


def faults_markdown() -> str:
    """The full ``docs/FAULTS.md`` body."""
    sections = [_PREAMBLE]
    sections.extend(_spec_markdown(spec) for spec in FAULTS.specs())
    return "\n".join(sections)
