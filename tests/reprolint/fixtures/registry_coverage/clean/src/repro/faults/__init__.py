"""Fixture aggregator importing every registering module."""

from .base import Fault, register_fault
from .orphan import OrphanFault

__all__ = ["Fault", "OrphanFault", "register_fault"]
